"""The checking daemon: sockets in front of the campaign engine.

One single-threaded :mod:`selectors` loop multiplexes three duties:

* **accepting and reading clients** -- newline-delimited JSON requests
  (:mod:`repro.server.protocol`) on a Unix-domain socket (default) or
  TCP;
* **advancing campaigns** -- between socket polls the loop gives the
  engine one ``step()`` (one work-unit slice of one job), so network
  responsiveness and checking progress interleave without threads;
* **streaming events** -- the engine's event log is broadcast to every
  connection watching the relevant job; a watcher that arrives late is
  caught up from the log (``from_seq``) before going live.

Because the engine is deterministic and the daemon adds no time sources
of its own (the selector timeout only paces the loop; virtual time comes
from the engine's clock), a scripted session -- submit, watch, pause,
restart, resume -- produces byte-identical event payloads every run.

Graceful shutdown (the ``shutdown`` op or :meth:`ReproServer.stop`)
pauses every running job at its unit boundary and spools it, so a
restarted daemon resumes exactly where this one stopped.
"""

from __future__ import annotations

import os
import selectors
import socket
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.server.engine import CampaignEngine, EngineConfig, ServerError
from repro.server.protocol import (
    PROTOCOL_VERSION,
    JobEvent,
    ProtocolError,
    SubmitRequest,
    decode_line,
    encode_line,
)

#: selector timeout while campaigns are runnable (poll fast, step often)
BUSY_POLL = 0.0
#: selector timeout while idle (block briefly; requests wake us)
IDLE_POLL = 0.2

#: refuse absurd lines before json sees them (a client bug, not a campaign)
MAX_LINE_BYTES = 16 * 1024 * 1024


class _Connection:
    """Per-client buffers and watch subscriptions."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.inbox = bytearray()
        self.outbox = bytearray()
        #: job ids this client watches ("*" = every job)
        self.watches: Set[str] = set()


class ReproServer:
    """Serve a :class:`CampaignEngine` over JSON-lines sockets."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: Optional[str] = None, port: int = 0,
                 engine: Optional[CampaignEngine] = None,
                 config: Optional[EngineConfig] = None):
        if socket_path is None and host is None:
            raise ValueError("need a unix socket path or a TCP host")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.engine = engine if engine is not None \
            else CampaignEngine(config)
        self.engine.subscribe(self._broadcast)
        self._selector = selectors.DefaultSelector()
        self._listener: Optional[socket.socket] = None
        self._connections: Dict[socket.socket, _Connection] = {}
        self._stopping = False
        self._running = False

    # ---------------------------------------------------------------- setup --
    def start(self) -> None:
        """Bind and listen; idempotent."""
        if self._listener is not None:
            return
        if self.socket_path is not None:
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)  # stale socket from a crash
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.socket_path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            self.port = listener.getsockname()[1]
        listener.listen(16)
        listener.setblocking(False)
        self._listener = listener
        self._selector.register(listener, selectors.EVENT_READ, "accept")

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return self.socket_path
        return f"{self.host}:{self.port}"

    # ----------------------------------------------------------------- loop --
    def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) lands."""
        self.start()
        self._running = True
        try:
            while not self._stopping:
                self.poll(BUSY_POLL if self.engine.busy else IDLE_POLL)
            # drain goodbyes so the shutdown response reaches its client
            for _ in range(10):
                if not any(conn.outbox
                           for conn in self._connections.values()):
                    break
                self.poll(0.05)
        finally:
            self._running = False
            self.stop()

    def poll(self, timeout: float = IDLE_POLL) -> None:
        """One loop iteration: sockets, then one engine step."""
        self.start()
        for key, _events in self._selector.select(timeout):
            if key.data == "accept":
                self._accept()
            else:
                self._service(key.fileobj)
        if not self._stopping:
            self.engine.step()
        self._flush_all()

    def stop(self) -> None:
        """Pause running jobs into the spool and tear the sockets down."""
        self._stopping = True
        self.engine.shutdown()
        for sock in list(self._connections):
            self._drop(sock)
        if self._listener is not None:
            try:
                self._selector.unregister(self._listener)
            except KeyError:
                pass
            self._listener.close()
            self._listener = None
            if self.socket_path is not None \
                    and os.path.exists(self.socket_path):
                os.unlink(self.socket_path)

    # -------------------------------------------------------------- sockets --
    def _accept(self) -> None:
        try:
            sock, _addr = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        self._connections[sock] = _Connection(sock)
        self._selector.register(sock, selectors.EVENT_READ, "client")

    def _drop(self, sock: socket.socket) -> None:
        self._connections.pop(sock, None)
        try:
            self._selector.unregister(sock)
        except KeyError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _service(self, sock: socket.socket) -> None:
        conn = self._connections.get(sock)
        if conn is None:
            return
        try:
            chunk = sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self._drop(sock)
            return
        if not chunk:
            self._drop(sock)
            return
        conn.inbox.extend(chunk)
        if len(conn.inbox) > MAX_LINE_BYTES:
            self._drop(sock)
            return
        while b"\n" in conn.inbox:
            line, _, rest = bytes(conn.inbox).partition(b"\n")
            conn.inbox = bytearray(rest)
            if line.strip():
                self._handle_line(conn, line)

    def _flush_all(self) -> None:
        for sock, conn in list(self._connections.items()):
            if not conn.outbox:
                continue
            try:
                sent = sock.send(bytes(conn.outbox))
                del conn.outbox[:sent]
            except BlockingIOError:
                continue
            except OSError:
                self._drop(sock)

    # ------------------------------------------------------------- requests --
    def _handle_line(self, conn: _Connection, line: bytes) -> None:
        try:
            request = decode_line(line)
        except ProtocolError as error:
            conn.outbox.extend(encode_line(
                {"id": None, "ok": False, "error": str(error)}))
            return
        request_id = request.get("id")
        try:
            payload = self._dispatch(conn, request)
            response = {"id": request_id, "ok": True}
            response.update(payload)
        except (ServerError, ProtocolError, KeyError, ValueError) as error:
            response = {"id": request_id, "ok": False,
                        "error": f"{type(error).__name__}: {error}"}
        conn.outbox.extend(encode_line(response))

    def _dispatch(self, conn: _Connection,
                  request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        engine = self.engine
        if op == "ping":
            return {"pong": True, "version": PROTOCOL_VERSION,
                    "vtime": engine.clock.now, "jobs": len(engine.jobs)}
        if op == "submit":
            descriptor = engine.submit(SubmitRequest.from_dict(request))
            return {"job": descriptor.to_dict()}
        if op == "jobs":
            return {"jobs": [descriptor.to_dict()
                             for descriptor in engine.list_jobs()]}
        if op == "job":
            return {"job": engine.job(request["job_id"]).to_dict()}
        if op == "result":
            return {"result": engine.result(request["job_id"]).to_dict()}
        if op == "watch":
            return self._watch(conn, request)
        if op == "pause":
            return {"job": engine.pause(request["job_id"]).to_dict()}
        if op == "resume":
            return {"job": engine.resume(request["job_id"]).to_dict()}
        if op == "cancel":
            return {"job": engine.cancel(request["job_id"]).to_dict()}
        if op == "shutdown":
            self._stopping = True
            return {"stopping": True}
        raise ProtocolError(f"unknown op {op!r}")

    def _watch(self, conn: _Connection,
               request: Dict[str, Any]) -> Dict[str, Any]:
        job_id = request.get("job_id", "*")
        state = None
        if job_id != "*":
            state = self.engine.job(job_id).state  # raises UnknownJob
        from_seq = int(request.get("from_seq", 0))
        replayed = self.engine.events_for(
            None if job_id == "*" else job_id, from_seq)
        # subscribe *before* queuing the replay: both land in this
        # outbox in order, and nothing can emit between (single thread)
        conn.watches.add(job_id)
        for event in replayed:
            conn.outbox.extend(encode_line({"event": event.to_dict()}))
        # the job's state rides along so a client watching an already
        # finished job (or one whose events predate from_seq) can stop
        # instead of waiting for a terminal event that will never come
        return {"watching": job_id, "replayed": len(replayed),
                "state": state}

    # --------------------------------------------------------------- events --
    def _broadcast(self, event: JobEvent) -> None:
        line = None
        for conn in self._connections.values():
            if "*" in conn.watches or event.job_id in conn.watches:
                if line is None:
                    line = encode_line({"event": event.to_dict()})
                conn.outbox.extend(line)


def serve(socket_path: Optional[str] = None, host: Optional[str] = None,
          port: int = 0, config: Optional[EngineConfig] = None,
          engine: Optional[CampaignEngine] = None) -> ReproServer:
    """Build, bind, and return a server (caller runs ``serve_forever``)."""
    server = ReproServer(socket_path=socket_path, host=host, port=port,
                         engine=engine, config=config)
    server.start()
    return server
