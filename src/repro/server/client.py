"""Client library for the checking daemon.

:class:`ReproClient` is a blocking, synchronous wrapper over the
JSON-lines protocol: one socket, request ids for correlation, and a
small event buffer so pushed events arriving while a response is awaited
are never lost -- they are yielded by the next :meth:`watch` iteration.

Typical session::

    with ReproClient(socket_path=".repro.sock") as client:
        job = client.submit(spec, tenant="ci", priority=5)
        for event in client.watch(job["job_id"]):
            print(event["kind"], event["payload"])
        result = client.result(job["job_id"])

The CLI verbs (``repro submit``, ``repro watch``, ...) are thin shells
around this class, and the test-suite drives a threaded daemon with it.
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

from repro.dist.spec import CheckSpec
from repro.server.protocol import (
    TERMINAL_EVENTS,
    ProtocolError,
    decode_line,
    encode_line,
)


class ServerUnavailable(ConnectionError):
    """The daemon is not listening where we were told to look."""


class RequestFailed(RuntimeError):
    """The daemon answered ``ok: false``; the message is its error."""


class ReproClient:
    """One connection to a campaign daemon."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: Optional[str] = None, port: int = 0,
                 timeout: Optional[float] = 30.0):
        if socket_path is None and host is None:
            raise ValueError("need a unix socket path or a TCP host")
        try:
            if socket_path is not None:
                self._sock = socket.socket(socket.AF_UNIX,
                                           socket.SOCK_STREAM)
                self._sock.settimeout(timeout)
                self._sock.connect(socket_path)
            else:
                self._sock = socket.create_connection((host, port),
                                                      timeout=timeout)
        except OSError as error:
            raise ServerUnavailable(
                f"no daemon at {socket_path or f'{host}:{port}'}: {error}"
            ) from None
        self._buffer = bytearray()
        #: events pushed while awaiting a response, in arrival order
        self._events: Deque[Dict[str, Any]] = deque()
        self._next_id = 0

    # -------------------------------------------------------------- plumbing --
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _read_document(self) -> Dict[str, Any]:
        """Next wire document (response or event), blocking."""
        while b"\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServerUnavailable("daemon closed the connection")
            self._buffer.extend(chunk)
        line, _, rest = bytes(self._buffer).partition(b"\n")
        self._buffer = bytearray(rest)
        return decode_line(line)

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one request; return its payload (events are buffered)."""
        self._next_id += 1
        request_id = self._next_id
        document = {"id": request_id, "op": op}
        document.update(params)
        self._sock.sendall(encode_line(document))
        while True:
            reply = self._read_document()
            if "event" in reply:
                self._events.append(reply["event"])
                continue
            if reply.get("id") != request_id:
                raise ProtocolError(
                    f"response id {reply.get('id')!r} does not match "
                    f"request id {request_id}")
            if not reply.get("ok"):
                raise RequestFailed(reply.get("error", "unknown error"))
            return reply

    # ----------------------------------------------------------------- verbs --
    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def submit(self, spec: Any, tenant: str = "default", priority: int = 0,
               workers: int = 1) -> Dict[str, Any]:
        """Submit a campaign; returns the job descriptor document."""
        spec_document = (spec.to_dict() if isinstance(spec, CheckSpec)
                         else dict(spec))
        return self.request("submit", spec=spec_document, tenant=tenant,
                            priority=priority, workers=workers)["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self.request("jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self.request("job", job_id=job_id)["job"]

    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished job's full DistResult document."""
        return self.request("result", job_id=job_id)["result"]

    def pause(self, job_id: str) -> Dict[str, Any]:
        return self.request("pause", job_id=job_id)["job"]

    def resume(self, job_id: str) -> Dict[str, Any]:
        return self.request("resume", job_id=job_id)["job"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("cancel", job_id=job_id)["job"]

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    def watch(self, job_id: str = "*", from_seq: int = 0,
              follow: bool = True) -> Iterator[Dict[str, Any]]:
        """Yield the job's events; stops after its terminal event.

        Watching ``"*"`` streams every job and never terminates on its
        own (pass ``follow=False`` to stop once the buffered replay is
        exhausted).  A job that was already finished when the watch
        started yields its replayed events and returns -- the watch
        response carries the job's state, so there is no race against a
        terminal event the replay filter skipped.
        """
        reply = self.request("watch", job_id=job_id, from_seq=from_seq)
        already_over = reply.get("state") in ("done", "failed", "cancelled")
        while True:
            while self._events:
                event = self._events.popleft()
                yield event
                if job_id != "*" and event.get("job_id") == job_id \
                        and event.get("kind") in TERMINAL_EVENTS:
                    return
            if not follow or (job_id != "*" and already_over):
                return
            reply = self._read_document()
            if "event" in reply:
                self._events.append(reply["event"])

    def wait(self, job_id: str, from_seq: int = 0) -> Dict[str, Any]:
        """Block until the job ends; returns its final descriptor."""
        for _event in self.watch(job_id, from_seq=from_seq):
            pass
        return self.job(job_id)
