"""repro.server -- campaign-as-a-service.

A persistent checking daemon that queues, schedules, and streams
:class:`~repro.dist.spec.CheckSpec` campaigns to many concurrent
clients:

* :mod:`repro.server.protocol` -- the JSON-lines wire shapes;
* :mod:`repro.server.engine` -- the deterministic scheduling core
  (priority queue, bounded slots, tenant budgets, pause/resume spool);
* :mod:`repro.server.daemon` -- the selectors loop serving it;
* :mod:`repro.server.client` -- the blocking client library the CLI
  verbs (``repro serve/submit/jobs/watch/pause/resume/cancel``) wrap.

See ``docs/server.md`` for the protocol and job lifecycle.
"""

from repro.server.client import ReproClient, RequestFailed, ServerUnavailable
from repro.server.daemon import ReproServer, serve
from repro.server.engine import (
    BudgetExceeded,
    CampaignEngine,
    EngineConfig,
    InvalidTransition,
    ServerError,
    UnknownJob,
)
from repro.server.protocol import (
    PROTOCOL_VERSION,
    JobDescriptor,
    JobEvent,
    SubmitRequest,
)

__all__ = [
    "PROTOCOL_VERSION",
    "BudgetExceeded",
    "CampaignEngine",
    "EngineConfig",
    "InvalidTransition",
    "JobDescriptor",
    "JobEvent",
    "ReproClient",
    "ReproServer",
    "RequestFailed",
    "ServerError",
    "ServerUnavailable",
    "SubmitRequest",
    "UnknownJob",
    "serve",
]
