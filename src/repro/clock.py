"""Virtual time for the whole simulation.

The paper's evaluation is dominated by *where time goes*: RAM-disk vs.
HDD/SSD latency (Figure 2), unmount/remount costs (the remount ablation),
VM-snapshot latency (LightVM's 30 ms / 20 ms), and swap penalties in the
two-week run (Figure 3).  Rather than measuring host wall-clock -- which
would reflect Python's speed, not the modelled system's -- every simulated
component charges its costs to a shared :class:`SimClock`.  Benchmarks then
report ``operations / simulated seconds``, which reproduces the paper's
*shape* deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimClock:
    """A monotonically advancing virtual clock with per-category accounting.

    Components call :meth:`charge` with a category label so benchmarks can
    break down where simulated time went (I/O vs. mount churn vs. swap).
    """

    now: float = 0.0
    by_category: dict = field(default_factory=dict)

    def charge(self, seconds: float, category: str = "other") -> None:
        """Advance the clock by ``seconds`` attributed to ``category``."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self.now += seconds
        try:  # hot path: the category almost always exists already
            self.by_category[category] += seconds
        except KeyError:
            self.by_category[category] = seconds

    def elapsed_since(self, start: float) -> float:
        return self.now - start

    def snapshot(self) -> dict:
        """Return a copy of the accounting breakdown (for reports)."""
        return dict(self.by_category)

    def reset(self) -> None:
        self.now = 0.0
        self.by_category.clear()


# Calibrated cost constants (seconds).  These are tuned so the simulated
# ops/s land in the same regime the paper reports (a few hundred ops/s for
# kernel fs pairs on RAM disks; ~1,300+ ops/s for VeriFS pairs) and so the
# relative factors (HDD 20x, SSD 18x slower than RAM; VeriFS ~5.8x faster
# than Ext2-vs-Ext4) reproduce.  See EXPERIMENTS.md for the calibration.
class Cost:
    """Latency constants charged by the simulated components."""

    # Block device access latency per request (seek/queue) + per-byte cost.
    # SSD/HDD access costs model the synchronous, barrier-heavy access
    # pattern of remount-per-operation checking (each request waits for
    # durability), not datasheet best-case latency; they are calibrated
    # so the end-to-end slowdowns land on the paper's measured 18x/20x.
    RAM_ACCESS = 200e-9
    RAM_PER_BYTE = 0.05e-9
    SSD_ACCESS = 1.05e-3
    SSD_PER_BYTE = 1.0e-9
    HDD_ACCESS = 1.2e-3
    HDD_PER_BYTE = 30e-9
    MTD_ACCESS = 2e-6
    MTD_PER_BYTE = 0.5e-9
    MTD_ERASE = 1e-3

    # VFS / syscall dispatch overhead.
    SYSCALL = 1.2e-6
    # One FUSE request/response round trip through /dev/fuse.
    FUSE_ROUNDTRIP = 6.2e-6

    # Mount-table churn: the fixed part of mount and unmount plus a
    # size-dependent part (journal recovery scans, allocation-group
    # initialisation -- why big-device mounts cost more).
    MOUNT_FIXED = 250e-6
    UMOUNT_FIXED = 200e-6
    MOUNT_PER_BYTE = 0.85e-9

    # Copying the *live content* of a device into/out of the checker's
    # state store and comparing it (Spin c_track-ing the mmap'd backing
    # device).  Charged per used byte: untouched zero pages are never
    # faulted in.  VeriFS avoids this entirely -- its ioctls snapshot
    # in-process memory -- which is the paper's stated reason (ii) for
    # the VeriFS pair's 5.8x advantage.
    STATE_TRACK_FIXED = 600e-6
    STATE_TRACK_PER_BYTE = 14e-9

    # VeriFS checkpoint/restore ioctls: in-memory copies, cheap.
    IOCTL_CHECKPOINT = 35e-6
    IOCTL_RESTORE = 40e-6

    # Copy-on-write chunk-table checkpoints: the grab itself is O(1)
    # (freeze the table, bump refcounts -- the mmap/fork trick), so the
    # fixed part is small; the per-byte part applies only to chunks
    # dirtied since the parent checkpoint.  Kept just above the VeriFS
    # ioctl costs so the in-process strategies keep their edge.
    COW_SNAPSHOT_FIXED = 40e-6
    COW_RESTORE_FIXED = 45e-6

    # The VFS-level checkpoint API of the paper's future work: copies
    # driver in-memory state without any mount churn; cheaper than a
    # remount cycle, dearer than VeriFS's in-process ioctls.
    VFS_CHECKPOINT = 180e-6
    VFS_RESTORE = 220e-6

    # LightVM figures quoted in section 5 of the paper.
    VM_CHECKPOINT = 30e-3
    VM_RESTORE = 20e-3

    # CRIU-style process snapshot of a user-space server.
    PROCESS_CHECKPOINT = 4e-3
    PROCESS_RESTORE = 3e-3

    # Offline fsck oracle sweeps (repro.analysis.fsck): a fixed per-image
    # part (superblock/bitmap parsing) plus a per-byte scan cost, in the
    # regime of e2fsck streaming a RAM-backed image.  The oracle divides
    # the total by its worker count -- the pFSCK observation that the
    # passes parallelize across images.
    FSCK_FIXED = 400e-6
    FSCK_PER_BYTE = 2e-9

    # Memory-system penalties for the Figure 3 model.  Touching a stored
    # state costs a fixed part plus a per-byte transfer part (RAM at
    # ~50 GB/s, swap at ~400 MB/s) -- large concrete states make swap
    # dominate, which is exactly the paper's Ext4-vs-XFS story.
    RAM_STATE_TOUCH = 1e-6
    SWAP_STATE_TOUCH = 100e-6
    RAM_TOUCH_PER_BYTE = 2e-11
    SWAP_TOUCH_PER_BYTE = 2.5e-9
    HASH_RESIZE_PER_STATE = 600e-6
