"""Fault injection: power-cut semantics for simulated devices.

Wraps a block device so that after a chosen number of write requests the
"power fails": every later write is silently dropped (the data never
reached the medium), while reads keep working so a post-mortem remount
can inspect exactly what survived.

This is the substrate for crash-consistency checking (the related-work
lineage of eXplode and B3): sweep the cut point across a workload's
writes and assert that recovery invariants hold at every single point.
"""

from __future__ import annotations

from typing import Optional

from repro.storage.device import BlockDevice


class PowerCutMTD:
    """Power-cut wrapper for MTD flash devices.

    Write and erase requests count toward the cut budget; after the cut
    both are silently dropped (an interrupted erase leaves the block as
    it was -- a simplification; real NOR flash can tear an erase, which
    JFFS2 tolerates by treating non-0xFF-prefixed space as dirty).
    """

    def __init__(self, inner, cut_after_writes: Optional[int] = None):
        self.inner = inner
        self.cut_after_writes = cut_after_writes
        self.writes_seen = 0
        self.writes_dropped = 0
        self.powered = True

    # -- proxied attributes -----------------------------------------------
    @property
    def size_bytes(self) -> int:
        return self.inner.size_bytes

    @property
    def erase_block_size(self) -> int:
        return self.inner.erase_block_size

    @property
    def erase_block_count(self) -> int:
        return self.inner.erase_block_count

    @property
    def clock(self):
        return self.inner.clock

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def stats(self):
        return self.inner.stats

    @property
    def wear(self):
        return self.inner.wear

    def cut(self) -> None:
        self.powered = False

    def restore_power(self) -> None:
        self.powered = True

    def _alive(self) -> bool:
        if self.cut_after_writes is not None and \
                self.writes_seen > self.cut_after_writes:
            self.powered = False
        return self.powered

    # -- flash operations -----------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        return self.inner.read(offset, length)

    def write(self, offset: int, data: bytes) -> None:
        self.writes_seen += 1
        if not self._alive():
            self.writes_dropped += 1
            return
        self.inner.write(offset, data)

    def erase_block(self, block_index: int) -> None:
        self.writes_seen += 1
        if not self._alive():
            self.writes_dropped += 1
            return
        self.inner.erase_block(block_index)

    def is_block_erased(self, block_index: int) -> bool:
        return self.inner.is_block_erased(block_index)

    @property
    def dirty_bytes_since_snapshot(self) -> int:
        return self.inner.dirty_bytes_since_snapshot

    def snapshot_chunks(self):
        return self.inner.snapshot_chunks()

    def restore_snapshot(self, snapshot) -> int:
        return self.inner.restore_snapshot(snapshot)

    def snapshot_image(self) -> bytes:
        return self.inner.snapshot_image()

    def restore_image(self, image: bytes) -> None:
        self.inner.restore_image(image)


class PowerCutDevice(BlockDevice):
    """A block device whose power can be cut mid-workload.

    ``cut_after_writes=N`` drops every write request after the first N.
    ``cut()`` cuts immediately.  ``writes_seen`` counts write requests,
    so a sweep harness can first run the workload uncut to learn the
    total, then re-run with each cut point.
    """

    def __init__(self, inner: BlockDevice,
                 cut_after_writes: Optional[int] = None):
        # Deliberately not calling super().__init__: this is a proxy.
        self.inner = inner
        self.cut_after_writes = cut_after_writes
        self.writes_seen = 0
        self.writes_dropped = 0
        self.powered = True

    # -- proxied attributes ------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return self.inner.size_bytes

    @property
    def sector_size(self) -> int:
        return self.inner.sector_size

    @property
    def clock(self):
        return self.inner.clock

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def stats(self):
        return self.inner.stats

    def cut(self) -> None:
        """Cut the power now: all subsequent writes are lost."""
        self.powered = False

    def restore_power(self) -> None:
        self.powered = True

    def _check_cut(self) -> bool:
        """Called after writes_seen was incremented for the current write:
        the first ``cut_after_writes`` requests pass, later ones drop."""
        if self.cut_after_writes is not None and \
                self.writes_seen > self.cut_after_writes:
            self.powered = False
        return self.powered

    # -- I/O -----------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        return self.inner.read(offset, length)

    def write(self, offset: int, data: bytes) -> None:
        self.writes_seen += 1
        if not self._check_cut():
            self.writes_dropped += 1
            return  # the medium never saw it
        self.inner.write(offset, data)

    def read_block(self, block_index: int, block_size: int) -> bytes:
        return self.inner.read_block(block_index, block_size)

    def write_block(self, block_index: int, block_size: int, data: bytes) -> None:
        self.writes_seen += 1
        if not self._check_cut():
            self.writes_dropped += 1
            return
        self.inner.write_block(block_index, block_size, data)

    # -- snapshots -------------------------------------------------------------
    @property
    def dirty_bytes_since_snapshot(self) -> int:
        return self.inner.dirty_bytes_since_snapshot

    def snapshot_chunks(self):
        return self.inner.snapshot_chunks()

    def restore_snapshot(self, snapshot) -> int:
        return self.inner.restore_snapshot(snapshot)

    def snapshot_image(self) -> bytes:
        return self.inner.snapshot_image()

    def restore_image(self, image: bytes) -> None:
        self.inner.restore_image(image)
