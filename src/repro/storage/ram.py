"""RAM block devices (the paper's patched ``brd2`` driver).

Linux's stock ``brd`` driver requires every RAM disk to share one size;
the authors patched it ("renamed brd2") to allow per-device sizes because
XFS needs a 16 MB minimum while ext2/ext4 run on 256 KB devices.  The
:class:`RamDiskRegistry` models the patched driver: a module-like factory
that hands out independently sized RAM disks.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.clock import Cost, SimClock
from repro.storage.device import BlockDevice


class RAMBlockDevice(BlockDevice):
    """A RAM-backed block device with near-zero access latency."""

    cost_category = "ram-io"
    access_cost = Cost.RAM_ACCESS
    per_byte_cost = Cost.RAM_PER_BYTE


class RamDiskRegistry:
    """The ``brd2`` module: creates RAM disks of *different* sizes.

    The stock-driver restriction is modelled too: constructing the registry
    with ``uniform_size`` set emulates unpatched ``brd``, which rejects
    requests for a different size -- the behaviour that forced the authors
    to patch the driver.
    """

    def __init__(self, clock: Optional[SimClock] = None, uniform_size: Optional[int] = None):
        self.clock = clock if clock is not None else SimClock()
        self.uniform_size = uniform_size
        self._devices: Dict[str, RAMBlockDevice] = {}

    def create(self, name: str, size_bytes: int, sector_size: int = 512) -> RAMBlockDevice:
        """Create and register a RAM disk named ``name``."""
        if name in self._devices:
            raise ValueError(f"RAM disk {name!r} already exists")
        if self.uniform_size is not None and size_bytes != self.uniform_size:
            raise ValueError(
                f"stock brd requires all RAM disks to be {self.uniform_size} "
                f"bytes; use the patched driver (uniform_size=None) for "
                f"{size_bytes}-byte disks"
            )
        device = RAMBlockDevice(size_bytes, sector_size, self.clock, name)
        self._devices[name] = device
        return device

    def get(self, name: str) -> RAMBlockDevice:
        return self._devices[name]

    def remove(self, name: str) -> None:
        del self._devices[name]

    def __len__(self) -> int:
        return len(self._devices)
