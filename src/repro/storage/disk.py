"""Rotational and solid-state block devices.

These exist for the Figure 2 ablation: checking Ext2 vs. Ext4 on HDD was
20x slower than on RAM disks, and on SSD 18x slower, because every model-
checking step snapshots/restores and remounts, hammering the device.  The
latency constants live in :class:`repro.clock.Cost` and are calibrated in
EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.clock import Cost
from repro.storage.device import BlockDevice


class HDDBlockDevice(BlockDevice):
    """Spinning disk: high per-request (seek) cost, modest bandwidth."""

    cost_category = "hdd-io"
    access_cost = Cost.HDD_ACCESS
    per_byte_cost = Cost.HDD_PER_BYTE


class SSDBlockDevice(BlockDevice):
    """Flash SSD: low per-request cost, high bandwidth."""

    cost_category = "ssd-io"
    access_cost = Cost.SSD_ACCESS
    per_byte_cost = Cost.SSD_PER_BYTE
