"""Block-device abstraction.

A :class:`BlockDevice` is a flat array of fixed-size sectors.  File systems
read and write whole blocks (their own block size, a multiple of the sector
size).  Every access charges latency to the device's clock, and every device
supports whole-image snapshot/restore -- the primitive MCFS uses to track
persistent state (the paper mmaps the backing store into Spin's address
space; we copy the image instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.clock import SimClock
from repro.errors import DeviceError


@dataclass
class DeviceStats:
    """I/O accounting for a device (reads/writes in requests and bytes)."""

    read_requests: int = 0
    write_requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    erases: int = 0

    def reset(self) -> None:
        self.read_requests = 0
        self.write_requests = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.erases = 0


class BlockDevice:
    """A flat, sector-addressed storage device.

    Subclasses set the latency profile via ``access_cost`` (per request)
    and ``per_byte_cost``; the base class handles bounds checks, the data
    buffer, statistics, and image snapshot/restore.
    """

    #: label used for clock accounting ("ram-io", "hdd-io", ...)
    cost_category = "block-io"
    access_cost = 0.0
    per_byte_cost = 0.0

    def __init__(
        self,
        size_bytes: int,
        sector_size: int = 512,
        clock: Optional[SimClock] = None,
        name: str = "dev",
    ):
        if size_bytes <= 0 or size_bytes % sector_size != 0:
            raise ValueError(
                f"device size {size_bytes} must be a positive multiple of "
                f"sector size {sector_size}"
            )
        self.size_bytes = size_bytes
        self.sector_size = sector_size
        self.clock = clock if clock is not None else SimClock()
        self.name = name
        self.stats = DeviceStats()
        self.read_only = False
        self._data = bytearray(size_bytes)

    # -- raw byte access (used by file systems) --------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``, charging device latency."""
        self._check_range(offset, length)
        self._charge(length)
        self.stats.read_requests += 1
        self.stats.bytes_read += length
        return bytes(self._data[offset : offset + length])

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, charging device latency."""
        if self.read_only:
            raise DeviceError(f"{self.name}: device is read-only")
        self._check_range(offset, len(data))
        self._charge(len(data))
        self.stats.write_requests += 1
        self.stats.bytes_written += len(data)
        self._data[offset : offset + len(data)] = data

    def read_block(self, block_index: int, block_size: int) -> bytes:
        return self.read(block_index * block_size, block_size)

    def write_block(self, block_index: int, block_size: int, data: bytes) -> None:
        if len(data) > block_size:
            raise DeviceError(
                f"{self.name}: block write of {len(data)} bytes exceeds "
                f"block size {block_size}"
            )
        if len(data) < block_size:
            data = data + b"\x00" * (block_size - len(data))
        self.write(block_index * block_size, data)

    # -- image snapshot / restore (used by the model checker) -------------------
    def snapshot_image(self) -> bytes:
        """Copy the whole device image (no latency: this models mmap access
        by the checker, which the paper performs outside the timed path)."""
        return bytes(self._data)

    def restore_image(self, image: bytes) -> None:
        """Overwrite the device contents from a snapshot image."""
        if len(image) != self.size_bytes:
            raise DeviceError(
                f"{self.name}: snapshot image is {len(image)} bytes, "
                f"device is {self.size_bytes}"
            )
        self._data[:] = image

    # -- helpers ----------------------------------------------------------------
    def _check_range(self, offset: int, length: int) -> None:
        if length < 0 or offset < 0 or offset + length > self.size_bytes:
            raise DeviceError(
                f"{self.name}: access [{offset}, {offset + length}) outside "
                f"device of {self.size_bytes} bytes"
            )

    def _charge(self, nbytes: int) -> None:
        self.clock.charge(
            self.access_cost + self.per_byte_cost * nbytes, self.cost_category
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.size_bytes} bytes)"
