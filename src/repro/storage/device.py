"""Block-device abstraction.

A :class:`BlockDevice` is a flat array of fixed-size sectors.  File systems
read and write whole blocks (their own block size, a multiple of the sector
size).  Every access charges latency to the device's clock.

Storage is held as a table of *refcounted immutable chunks* rather than one
flat buffer: a write copies only the touched chunk, a snapshot is an O(1)
grab of the chunk table (:meth:`BlockDevice.snapshot_chunks`), and a restore
swaps tables back.  Successive snapshots therefore share every chunk that
was not rewritten between them -- the copy-on-write hot path MCFS leans on
when it checkpoints before every operation (the paper mmaps the backing
store into Spin's address space; chunk sharing is our equivalent of its
page-granular copy-on-write).  :meth:`snapshot_image` still materializes
the full byte image for legacy callers and the offline fsck checkers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.clock import SimClock
from repro.errors import DeviceError

#: granularity of copy-on-write sharing.  4 KiB mirrors the page-cache
#: granularity a real mmap-based checker would fault at.
DEFAULT_CHUNK_SIZE = 4096


@dataclass
class DeviceStats:
    """I/O accounting for a device (reads/writes in requests and bytes).

    ``bytes_snapshotted`` counts bytes the snapshot path actually copied
    (the dirty chunks materialized by a chunk-table grab, or a whole
    image materialization); ``bytes_restored`` counts bytes rewritten by
    a restore.  Before these counters existed, snapshot traffic was
    invisible to every report.
    """

    read_requests: int = 0
    write_requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    erases: int = 0
    bytes_snapshotted: int = 0
    bytes_restored: int = 0

    def reset(self) -> None:
        self.read_requests = 0
        self.write_requests = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.erases = 0
        self.bytes_snapshotted = 0
        self.bytes_restored = 0


@dataclass(frozen=True)
class DiskSnapshot:
    """An O(1) checkpoint token: a frozen grab of the chunk table.

    Chunks are immutable ``bytes`` objects shared (refcounted) with the
    live device and with every other snapshot that has not rewritten
    them, so a DFS stack of snapshots is naturally a chain of deltas.
    """

    device_name: str
    size_bytes: int
    chunk_size: int
    chunks: Tuple[bytes, ...]

    def materialize(self) -> bytes:
        """Flatten to the raw byte image (legacy/fsck consumers)."""
        return b"".join(self.chunks)


class ChunkedStore:
    """Shared chunk-table mechanics for :class:`BlockDevice` and MTD.

    Hosts hold ``_chunks`` (a list of immutable ``bytes``), ``_dirty``
    (chunk indices rewritten since the last :meth:`snapshot_chunks`
    grab), and a ``stats`` object with the snapshot/restore counters.
    """

    size_bytes: int
    chunk_size: int
    name: str
    stats: DeviceStats
    _chunks: List[bytes]
    _dirty: Set[int]

    def _init_chunks(self, size_bytes: int, chunk_size: int, fill: int = 0) -> None:
        self.chunk_size = max(1, min(chunk_size, size_bytes))
        full, tail = divmod(size_bytes, self.chunk_size)
        # one shared fill chunk: an untouched device is a single refcounted
        # chunk repeated, so empty regions never cost snapshot bytes
        shared = bytes([fill]) * self.chunk_size
        self._chunks = [shared] * full
        if tail:
            self._chunks.append(bytes([fill]) * tail)
        self._dirty = set()

    # -- ranged access over the chunk table ---------------------------------
    def _read_range(self, offset: int, length: int) -> bytes:
        cs = self.chunk_size
        if length <= 0:
            return b""
        first = offset // cs
        last = (offset + length - 1) // cs
        if first == last:
            within = offset - first * cs
            return self._chunks[first][within : within + length]
        parts = [self._chunks[first][offset - first * cs :]]
        parts.extend(self._chunks[first + 1 : last])
        parts.append(self._chunks[last][: offset + length - last * cs])
        return b"".join(parts)

    def _store_range(self, offset: int, data: bytes) -> None:
        """Copy-on-write store: only chunks whose content changes are
        replaced (and marked dirty); identical rewrites keep the shared
        chunk object so snapshot chains stay deduplicated.

        ``data`` may be any buffer (bytes, bytearray, memoryview); it is
        sliced through a ``memoryview`` so the only copies taken are the
        per-chunk pieces that actually land in the table.
        """
        cs = self.chunk_size
        view = memoryview(data)
        total = len(view)
        consumed = 0
        position = offset
        while consumed < total:
            index = position // cs
            within = position - index * cs
            old = self._chunks[index]
            take = min(len(old) - within, total - consumed)
            piece = view[consumed : consumed + take]
            if old[within : within + take] != piece:
                self._chunks[index] = (old[:within] + bytes(piece)
                                       + old[within + take :])
                self._dirty.add(index)
            position += take
            consumed += take

    # -- snapshot / restore --------------------------------------------------
    @property
    def dirty_bytes_since_snapshot(self) -> int:
        """Bytes rewritten since the last chunk-table grab (what the next
        snapshot will have to account as newly copied)."""
        return sum(len(self._chunks[index]) for index in self._dirty)

    def snapshot_chunks(self) -> DiskSnapshot:
        """O(1) checkpoint: freeze the chunk table.  Only the chunks
        dirtied since the previous grab count as copied bytes -- the
        rest are shared with the parent snapshot."""
        self.stats.bytes_snapshotted += self.dirty_bytes_since_snapshot
        self._dirty.clear()
        return DiskSnapshot(
            device_name=self.name,
            size_bytes=self.size_bytes,
            chunk_size=self.chunk_size,
            chunks=tuple(self._chunks),
        )

    def restore_snapshot(self, snapshot: DiskSnapshot) -> int:
        """Swap the chunk table back to ``snapshot``; returns the number
        of bytes actually rewritten (chunks that diverged)."""
        if snapshot.size_bytes != self.size_bytes or \
                snapshot.chunk_size != self.chunk_size:
            raise DeviceError(
                f"{self.name}: snapshot geometry {snapshot.size_bytes}/"
                f"{snapshot.chunk_size} does not match device "
                f"{self.size_bytes}/{self.chunk_size}"
            )
        changed = sum(
            len(new)
            for new, current in zip(snapshot.chunks, self._chunks)
            if new is not current
        )
        self._chunks = list(snapshot.chunks)
        self._dirty.clear()
        self.stats.bytes_restored += changed
        return changed

    def snapshot_image(self) -> bytes:
        """Materialize the whole device image (legacy callers and the
        offline fsck checkers need flat bytes).  Counted as snapshot
        traffic: unlike a chunk grab, this copies everything."""
        self.stats.bytes_snapshotted += self.size_bytes
        return b"".join(self._chunks)

    def restore_image(self, image: bytes) -> None:
        """Overwrite the device contents from a raw byte image.

        Re-chunks with content comparison so chunks that match the live
        content keep their identity (preserving sharing with existing
        snapshots); only diverging chunks count as restored bytes.
        """
        if len(image) != self.size_bytes:
            raise DeviceError(
                f"{self.name}: snapshot image is {len(image)} bytes, "
                f"device is {self.size_bytes}"
            )
        changed = 0
        position = 0
        for index, old in enumerate(self._chunks):
            piece = image[position : position + len(old)]
            if piece != old:
                self._chunks[index] = piece
                self._dirty.add(index)
                changed += len(old)
            position += len(old)
        self.stats.bytes_restored += changed


class BlockDevice(ChunkedStore):
    """A flat, sector-addressed storage device.

    Subclasses set the latency profile via ``access_cost`` (per request)
    and ``per_byte_cost``; the base class handles bounds checks, the
    copy-on-write chunk table, statistics, and snapshot/restore.
    """

    #: label used for clock accounting ("ram-io", "hdd-io", ...)
    cost_category = "block-io"
    access_cost = 0.0
    per_byte_cost = 0.0

    def __init__(
        self,
        size_bytes: int,
        sector_size: int = 512,
        clock: Optional[SimClock] = None,
        name: str = "dev",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ):
        if size_bytes <= 0 or size_bytes % sector_size != 0:
            raise ValueError(
                f"device size {size_bytes} must be a positive multiple of "
                f"sector size {sector_size}"
            )
        self.size_bytes = size_bytes
        self.sector_size = sector_size
        self.clock = clock if clock is not None else SimClock()
        self.name = name
        self.stats = DeviceStats()
        self.read_only = False
        self._init_chunks(size_bytes, chunk_size)

    # -- raw byte access (used by file systems) --------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``, charging device latency."""
        self._check_range(offset, length)
        self._charge(length)
        self.stats.read_requests += 1
        self.stats.bytes_read += length
        return self._read_range(offset, length)

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, charging device latency."""
        if self.read_only:
            raise DeviceError(f"{self.name}: device is read-only")
        self._check_range(offset, len(data))
        self._charge(len(data))
        self.stats.write_requests += 1
        self.stats.bytes_written += len(data)
        self._store_range(offset, data)

    def read_block(self, block_index: int, block_size: int) -> bytes:
        return self.read(block_index * block_size, block_size)

    def write_block(self, block_index: int, block_size: int, data: bytes) -> None:
        if len(data) > block_size:
            raise DeviceError(
                f"{self.name}: block write of {len(data)} bytes exceeds "
                f"block size {block_size}"
            )
        if len(data) < block_size:
            data = data + b"\x00" * (block_size - len(data))
        self.write(block_index * block_size, data)

    # -- helpers ----------------------------------------------------------------
    def _check_range(self, offset: int, length: int) -> None:
        if length < 0 or offset < 0 or offset + length > self.size_bytes:
            raise DeviceError(
                f"{self.name}: access [{offset}, {offset + length}) outside "
                f"device of {self.size_bytes} bytes"
            )

    def _charge(self, nbytes: int) -> None:
        self.clock.charge(
            self.access_cost + self.per_byte_cost * nbytes, self.cost_category
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.size_bytes} bytes)"
