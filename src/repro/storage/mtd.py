"""MTD (Memory Technology Device) simulation for JFFS2.

JFFS2 cannot mount a plain block device: it needs an MTD character device
with erase-block semantics.  The paper loads ``mtdram`` (a RAM-backed MTD
device) plus ``mtdblock`` (a block-interface shim) so Spin can mmap the MTD
storage through the block layer.  :class:`MTDDevice` models mtdram --
byte-readable, write-once-until-erased flash organised in erase blocks --
and :class:`MTDBlockAdapter` models mtdblock.

MTD storage uses the same copy-on-write chunk table as block devices, with
one chunk per erase block: an erase installs the shared all-``0xFF`` chunk
object, so freshly-erased blocks cost nothing to snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.clock import Cost, SimClock
from repro.errors import DeviceError
from repro.storage.device import (
    BlockDevice,
    ChunkedStore,
    DeviceStats,
    DiskSnapshot,
)


@dataclass(frozen=True)
class MTDSnapshot(DiskSnapshot):
    """A chunk-table grab that also carries the per-block wear counters.

    Wear is device state, not a diagnostic: JFFS2's wear levelling steers
    garbage collection by it, so a rewind that restored the flash contents
    but kept post-branch wear would let one explored branch bias another's
    GC decisions.  ``isinstance`` checks against :class:`DiskSnapshot`
    (the strategies, ``restore_disk``) keep working by subclassing.
    """

    wear: Tuple[int, ...] = ()


class MTDDevice(ChunkedStore):
    """A NOR-flash-like MTD device (the ``mtdram`` module).

    Semantics modelled:

    * reads are arbitrary-offset, arbitrary-length;
    * writes may only clear bits (program 1 -> 0); writing over already
      programmed bytes without an intervening erase raises ``DeviceError``
      unless the write is bit-compatible;
    * erases operate on whole erase blocks and reset them to ``0xFF``;
    * each erase increments a per-block wear counter.
    """

    def __init__(
        self,
        size_bytes: int,
        erase_block_size: int = 16 * 1024,
        clock: Optional[SimClock] = None,
        name: str = "mtd0",
    ):
        if size_bytes <= 0 or size_bytes % erase_block_size != 0:
            raise ValueError(
                f"MTD size {size_bytes} must be a positive multiple of the "
                f"erase block size {erase_block_size}"
            )
        self.size_bytes = size_bytes
        self.erase_block_size = erase_block_size
        self.erase_block_count = size_bytes // erase_block_size
        self.clock = clock if clock is not None else SimClock()
        self.name = name
        self.stats = DeviceStats()
        # one COW chunk per erase block; the shared 0xFF chunk makes
        # erased blocks free to snapshot
        self._init_chunks(size_bytes, erase_block_size, fill=0xFF)
        self._erased_chunk = bytes([0xFF]) * self.erase_block_size
        self.wear = [0] * self.erase_block_count

    # -- raw flash operations ----------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        self._check_range(offset, length)
        self.clock.charge(Cost.MTD_ACCESS + Cost.MTD_PER_BYTE * length, "mtd-io")
        self.stats.read_requests += 1
        self.stats.bytes_read += length
        return self._read_range(offset, length)

    def write(self, offset: int, data: bytes) -> None:
        """Program bytes.  Flash can only clear bits (1 -> 0)."""
        self._check_range(offset, len(data))
        current = self._read_range(offset, len(data))
        for i, byte in enumerate(data):
            if current[i] & byte != byte:
                raise DeviceError(
                    f"{self.name}: programming 0x{byte:02x} over "
                    f"0x{current[i]:02x} at offset {offset + i} would set "
                    f"bits; erase first"
                )
        self.clock.charge(Cost.MTD_ACCESS + Cost.MTD_PER_BYTE * len(data), "mtd-io")
        self.stats.write_requests += 1
        self.stats.bytes_written += len(data)
        programmed = bytes(c & b for c, b in zip(current, data))
        self._store_range(offset, programmed)

    def erase_block(self, block_index: int) -> None:
        if not 0 <= block_index < self.erase_block_count:
            raise DeviceError(f"{self.name}: erase block {block_index} out of range")
        self.clock.charge(Cost.MTD_ERASE, "mtd-erase")
        self.stats.erases += 1
        self.wear[block_index] += 1
        if self._chunks[block_index] != self._erased_chunk:
            # install the shared erased chunk so snapshots dedup it
            self._chunks[block_index] = self._erased_chunk
            self._dirty.add(block_index)

    def is_block_erased(self, block_index: int) -> bool:
        return self._chunks[block_index] == self._erased_chunk

    # -- snapshot / restore (wear rides the checkpoint token) ---------------
    def snapshot_chunks(self) -> MTDSnapshot:
        base = super().snapshot_chunks()
        return MTDSnapshot(
            device_name=base.device_name,
            size_bytes=base.size_bytes,
            chunk_size=base.chunk_size,
            chunks=base.chunks,
            wear=tuple(self.wear),
        )

    def restore_snapshot(self, snapshot: DiskSnapshot) -> int:
        changed = super().restore_snapshot(snapshot)
        if isinstance(snapshot, MTDSnapshot):
            self.wear = list(snapshot.wear)
        return changed

    def _check_range(self, offset: int, length: int) -> None:
        if length < 0 or offset < 0 or offset + length > self.size_bytes:
            raise DeviceError(
                f"{self.name}: access [{offset}, {offset + length}) outside "
                f"MTD of {self.size_bytes} bytes"
            )


class MTDBlockAdapter(BlockDevice):
    """The ``mtdblock`` shim: a block-device view over an MTD device.

    Reads pass straight through.  Block writes implement read-modify-erase-
    write on the underlying erase block, exactly like mtdblock's (slow)
    emulation.  This adapter exists so the model checker can snapshot MTD
    storage through the uniform block interface, mirroring the paper's
    mtdram+mtdblock setup; JFFS2 itself talks to the raw MTD device.
    """

    cost_category = "mtd-io"

    def __init__(self, mtd: MTDDevice, sector_size: int = 512):
        super().__init__(mtd.size_bytes, sector_size, mtd.clock, mtd.name + "-blk")
        self.mtd = mtd
        # the adapter has no storage of its own; all snapshot/restore
        # traffic flows through the MTD's chunk table
        self._chunks = []
        self._dirty = set()

    def read(self, offset: int, length: int) -> bytes:
        self.stats.read_requests += 1
        self.stats.bytes_read += length
        return self.mtd.read(offset, length)

    def write(self, offset: int, data: bytes) -> None:
        """Read-modify-erase-write through whole erase blocks."""
        if not data:
            return
        ebs = self.mtd.erase_block_size
        self.stats.write_requests += 1
        self.stats.bytes_written += len(data)
        end = offset + len(data)
        first_block = offset // ebs
        last_block = (end - 1) // ebs
        for block in range(first_block, last_block + 1):
            block_start = block * ebs
            current = bytearray(self.mtd.read(block_start, ebs))
            lo = max(offset, block_start) - block_start
            hi = min(end, block_start + ebs) - block_start
            current[lo:hi] = data[
                max(offset, block_start) - offset : min(end, block_start + ebs) - offset
            ]
            self.mtd.erase_block(block)
            self.mtd.write(block_start, bytes(current))

    @property
    def dirty_bytes_since_snapshot(self) -> int:
        return self.mtd.dirty_bytes_since_snapshot

    def snapshot_chunks(self) -> DiskSnapshot:
        return self.mtd.snapshot_chunks()

    def restore_snapshot(self, snapshot: DiskSnapshot) -> int:
        return self.mtd.restore_snapshot(snapshot)

    def snapshot_image(self) -> bytes:
        return self.mtd.snapshot_image()

    def restore_image(self, image: bytes) -> None:
        self.mtd.restore_image(image)
