"""Simulated storage devices.

The paper backs its file systems with RAM block devices (a patched ``brd``
renamed ``brd2`` that allows per-device sizes), plain HDD/SSD block devices
for the Figure 2 comparison, and an ``mtdram`` MTD character device (plus
``mtdblock`` adapter) for JFFS2.  This package provides all of them as
deterministic simulations that charge their latencies to a shared
:class:`repro.clock.SimClock`.
"""

from repro.storage.device import BlockDevice, DeviceStats, DiskSnapshot
from repro.storage.ram import RAMBlockDevice, RamDiskRegistry
from repro.storage.disk import HDDBlockDevice, SSDBlockDevice
from repro.storage.mtd import MTDBlockAdapter, MTDDevice, MTDSnapshot
from repro.storage.fault import PowerCutDevice, PowerCutMTD

__all__ = [
    "BlockDevice",
    "DeviceStats",
    "DiskSnapshot",
    "RAMBlockDevice",
    "RamDiskRegistry",
    "HDDBlockDevice",
    "SSDBlockDevice",
    "MTDDevice",
    "MTDBlockAdapter",
    "MTDSnapshot",
    "PowerCutDevice",
    "PowerCutMTD",
]
