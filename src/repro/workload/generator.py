"""Deterministic operation-sequence generation for trace workloads.

The explorer picks operations itself; some uses want a plain *sequence*
instead — endurance runs, crash workloads, regression traces.  The
generator samples a catalog uniformly under a seed, so sequences are
reproducible and shareable (a seed + pool is a complete workload spec).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.core.ops import Operation, OperationCatalog, ParameterPool


class SequenceGenerator:
    """Seeded stream of operations drawn from a catalog."""

    def __init__(self, pool: Optional[ParameterPool] = None,
                 include_extended: bool = True, seed: int = 0):
        self.catalog = OperationCatalog(
            pool=pool if pool is not None else ParameterPool(),
            include_extended=include_extended,
        )
        self.seed = seed
        self._rng = random.Random(seed)

    def take(self, count: int) -> List[Operation]:
        """The next ``count`` operations of the stream."""
        operations = self.catalog.operations()
        return [self._rng.choice(operations) for _ in range(count)]

    def stream(self) -> Iterator[Operation]:
        """An endless operation iterator."""
        operations = self.catalog.operations()
        while True:
            yield self._rng.choice(operations)

    def reset(self) -> None:
        """Rewind to the beginning of the (seeded) stream."""
        self._rng = random.Random(self.seed)

    def apply_to(self, fut, operations) -> List:
        """Execute a sequence on one file system; return the outcomes."""
        return [self.catalog.execute(fut, operation) for operation in operations]
