"""Deterministic operation-sequence generation for trace workloads.

The explorer picks operations itself; some uses want a plain *sequence*
instead — endurance runs, crash workloads, regression traces.  The
generator samples a catalog under a seed — uniformly by default, or
through a weighted :class:`~repro.workload.profile.OpProfile` — so
sequences are reproducible and shareable (a seed + pool + profile is a
complete workload spec).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Union

from repro.core.ops import Operation, OperationCatalog, ParameterPool
from repro.workload.profile import (
    OpProfile,
    WeightedChooser,
    boundary_parameters,
    parse_profile,
)


class SequenceGenerator:
    """Seeded stream of operations drawn from a catalog.

    ``profile`` may be a spec string (``uniform``, ``write-heavy``,
    ``meta-churn+boundary``, ``custom:write_file=4``, ...) or a parsed
    :class:`OpProfile`.  A boundary profile augments the pool before the
    catalog is built.
    """

    def __init__(self, pool: Optional[ParameterPool] = None,
                 include_extended: bool = True, seed: int = 0,
                 profile: Union[str, OpProfile] = "uniform"):
        if isinstance(profile, str):
            profile = parse_profile(profile)
        self.profile = profile
        base_pool = pool if pool is not None else ParameterPool()
        if profile.boundary:
            base_pool = boundary_parameters(base_pool)
        self.catalog = OperationCatalog(
            pool=base_pool,
            include_extended=include_extended,
        )
        self.seed = seed
        self._rng = random.Random(seed)
        # instance-uniform keeps the legacy plain-choice draw so existing
        # (seed -> sequence) mappings stay byte-identical
        self._chooser = (
            None if profile.is_instance_uniform
            else WeightedChooser(profile, self.catalog.operations())
        )

    def _draw(self, rng: random.Random, operations: List[Operation]) -> Operation:
        if self._chooser is not None:
            return self._chooser.choose(rng)
        return rng.choice(operations)

    def take(self, count: int) -> List[Operation]:
        """The next ``count`` operations of the stream."""
        operations = self.catalog.operations()
        return [self._draw(self._rng, operations) for _ in range(count)]

    def stream(self) -> Iterator[Operation]:
        """An endless operation iterator.

        The iterator *forks* the generator's RNG at creation: it owns an
        independent stream from this point on, so a later ``reset()`` (or
        interleaved ``take()`` calls) cannot silently perturb a
        half-consumed iterator.  (Previously the iterator kept reading
        ``self._rng`` through the attribute, so rebinding it in
        ``reset()`` made an "old" stream continue from the *new* RNG.)
        """
        rng = random.Random(0)
        rng.setstate(self._rng.getstate())
        operations = self.catalog.operations()

        def _endless() -> Iterator[Operation]:
            while True:
                yield self._draw(rng, operations)

        return _endless()

    def reset(self) -> None:
        """Rewind to the beginning of the (seeded) stream.

        Live ``stream()`` iterators are unaffected: each owns a forked
        RNG bound at iterator creation.
        """
        self._rng = random.Random(self.seed)

    def apply_to(self, fut, operations) -> List:
        """Execute a sequence on one file system; return the outcomes."""
        return [self.catalog.execute(fut, operation) for operation in operations]
