"""Versatile input exploration: weighted op profiles (Metis-style).

The paper bounds the operation/parameter pool to keep the state space
tractable (§4); its successor Metis (FAST '24) shows that the bugs that
matter often hide in *input* diversity rather than state diversity --
writes straddling block/extent/erase-block edges, deep paths, skewed
operation mixes.  This module supplies that diversity as a first-class,
deterministic subsystem:

* :class:`OpProfile` -- a weighted operation-class distribution parsed
  from a spec string (grammar below), parallel to the visited-store
  grammar of :func:`repro.mc.statestore.parse_store_spec`;
* :func:`boundary_parameters` -- boundary-value argument generation
  layered onto any :class:`~repro.core.ops.ParameterPool`: sizes and
  offsets straddling the 4 KiB block/extent edge and the 16 KiB jffs2
  erase-block edge, huge sparse offsets, deep path ladders, rename
  cycles, and odd open-flag combinations;
* :class:`WeightedChooser` -- a seeded, platform-stable weighted draw
  over a catalog (identical (seed, profile) -> identical sequence);
* :class:`CoverageSteering` -- optional feedback that *consumes* the
  :class:`~repro.core.coverage.CoverageTracker`'s outcome-pair counts
  and the explorer's visited-state newness to reweight generation toward
  operation classes whose outcome space is still under-visited.  Like
  :mod:`repro.mc.perf`, the measurements themselves are observational:
  steering reads the tracker, never writes it.

Spec-string grammar::

    profile  := base ( "+" flag )*
    base     := "uniform" | "write-heavy" | "meta-churn" | "boundary"
              | "custom:" op "=" weight { "," op "=" weight }
    flag     := "boundary" | "steer"

``uniform`` is the legacy instance-uniform draw (every concrete
operation equally likely -- byte-identical to the pre-profile engine).
Every other base weights operation *classes*: the chooser first picks a
class by weight, then one of its concrete operations uniformly.
``custom`` weights default to 1.0 for unlisted classes; a weight of 0
removes a class.  ``boundary`` alone is shorthand for
``uniform+boundary``; as a flag it augments the parameter pool with the
boundary-value families regardless of the base weights.  ``steer``
enables coverage steering.

Determinism contract: for a fixed (seed, profile spec, pool, catalog)
the generated operation sequence is identical across runs, platforms,
and fleet sizes.  The chooser draws only from ``random.Random`` (a
portable Mersenne Twister) and steering inputs are themselves
deterministic functions of the run history, so diversified fleet
members merge to byte-identical visited-state fingerprints at a fixed
(seed, profile) assignment.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ops import Operation, ParameterPool
from repro.kernel.fdtable import (
    O_APPEND,
    O_CREAT,
    O_DIRECTORY,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
)

#: every operation class a profile may weight (the catalog's op names)
OP_CLASSES = (
    "create_file",
    "write_file",
    "truncate",
    "mkdir",
    "rmdir",
    "unlink",
    "rename",
    "symlink",
    "link",
    "setxattr",
    "open_flags",
)

#: named base profiles: class -> weight (unlisted classes weigh 1.0)
NAMED_WEIGHTS: Dict[str, Dict[str, float]] = {
    # instance-uniform: the legacy draw; weights are unused
    "uniform": {},
    # data-path pressure: block allocation, holes, extent growth
    "write-heavy": {
        "write_file": 8.0,
        "truncate": 4.0,
        "create_file": 3.0,
        "open_flags": 2.0,
    },
    # namespace churn: directory management, rename/link paths, dcache
    "meta-churn": {
        "mkdir": 5.0,
        "rmdir": 5.0,
        "rename": 5.0,
        "unlink": 4.0,
        "link": 3.0,
        "symlink": 3.0,
        "setxattr": 3.0,
        "create_file": 3.0,
        "write_file": 1.0,
        "truncate": 1.0,
    },
}

PROFILE_NAMES = ("uniform", "write-heavy", "meta-churn", "boundary")


@dataclass(frozen=True)
class OpProfile:
    """One parsed input profile: weights plus the boundary/steer flags."""

    #: the canonical spec string this profile parses back from
    spec: str
    #: the base name (``custom`` for explicit weight lists)
    name: str
    #: (class, weight) pairs for every class, in OP_CLASSES order --
    #: a tuple so profiles stay hashable/frozen like ParameterPool
    weights: Tuple[Tuple[str, float], ...]
    #: augment the parameter pool with boundary-value families
    boundary: bool = False
    #: enable coverage-steered reweighting
    steer: bool = False

    @property
    def is_instance_uniform(self) -> bool:
        """True for the legacy draw (plain ``rng.choice`` over instances).

        Only the unflagged/boundary ``uniform`` base qualifies: any class
        weighting or steering needs the weighted chooser.
        """
        return self.name == "uniform" and not self.steer

    def weight_of(self, op_class: str) -> float:
        for name, weight in self.weights:
            if name == op_class:
                return weight
        return 1.0

    def describe(self) -> str:
        flags = []
        if self.boundary:
            flags.append("boundary args")
        if self.steer:
            flags.append("coverage-steered")
        suffix = f" ({', '.join(flags)})" if flags else ""
        return f"{self.name}{suffix}"


def _full_weights(overrides: Dict[str, float]) -> Tuple[Tuple[str, float], ...]:
    return tuple((name, float(overrides.get(name, 1.0))) for name in OP_CLASSES)


def parse_profile(spec: str) -> OpProfile:
    """Parse the profile grammar; raise ``ValueError`` with the options."""
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(
            f"empty input profile; expected one of {', '.join(PROFILE_NAMES)} "
            f"or custom:op=weight,..."
        )
    text = spec.strip()
    parts = text.split("+")
    base = parts[0].strip()
    boundary = False
    steer = False
    for flag in parts[1:]:
        flag = flag.strip()
        if flag == "boundary":
            boundary = True
        elif flag == "steer":
            steer = True
        else:
            raise ValueError(
                f"unknown profile flag {flag!r} in {spec!r}; "
                f"expected boundary | steer"
            )
    if base.startswith("custom:"):
        overrides: Dict[str, float] = {}
        body = base[len("custom:"):]
        if not body:
            raise ValueError(f"empty custom profile in {spec!r}; "
                             f"expected custom:op=weight,...")
        for assignment in body.split(","):
            op_name, separator, raw_weight = assignment.partition("=")
            op_name = op_name.strip()
            if not separator or op_name not in OP_CLASSES:
                raise ValueError(
                    f"bad profile assignment {assignment!r} in {spec!r}; "
                    f"expected op=weight with op one of "
                    f"{', '.join(OP_CLASSES)}"
                )
            try:
                weight = float(raw_weight)
            except ValueError:
                raise ValueError(
                    f"profile weight {raw_weight!r} in {spec!r} is not a "
                    f"number"
                ) from None
            if weight < 0:
                raise ValueError(
                    f"profile weight for {op_name!r} in {spec!r} is negative"
                )
            overrides[op_name] = weight
        weights = _full_weights(overrides)
        if not any(weight > 0 for _, weight in weights):
            raise ValueError(f"custom profile {spec!r} removes every class")
        return OpProfile(spec=text, name="custom",
                         weights=weights,
                         boundary=boundary, steer=steer)
    if base == "boundary":
        # shorthand: uniform weights with boundary-value arguments
        return OpProfile(spec=text, name="uniform",
                         weights=_full_weights({}),
                         boundary=True, steer=steer)
    if base not in NAMED_WEIGHTS:
        raise ValueError(
            f"unknown input profile {base!r}; expected one of "
            f"{', '.join(PROFILE_NAMES)} or custom:op=weight,..."
        )
    return OpProfile(spec=text, name=base,
                     weights=_full_weights(NAMED_WEIGHTS[base]),
                     boundary=boundary, steer=steer)


# -------------------------------------------------------- boundary values --
#: the 4 KiB edge every block fs and the VeriFS2 extent (chunk) share
BLOCK_EDGE = 4096
#: the jffs2/MTD erase-block edge (:class:`repro.storage.mtd.MTDDevice`)
ERASE_BLOCK_EDGE = 16 * 1024
#: a huge sparse offset: far past every pool file, still cheap for
#: chunked/sparse storage, and an honest error path for tiny devices
SPARSE_OFFSET = 1 << 20

BOUNDARY_WRITE_SIZES = (1, BLOCK_EDGE - 1, BLOCK_EDGE, BLOCK_EDGE + 1,
                        ERASE_BLOCK_EDGE + 1)
BOUNDARY_WRITE_OFFSETS = (BLOCK_EDGE - 1, BLOCK_EDGE, BLOCK_EDGE + 1,
                          SPARSE_OFFSET)
BOUNDARY_TRUNCATE_SIZES = (BLOCK_EDGE - 1, BLOCK_EDGE, BLOCK_EDGE + 1)

#: a path ladder four directories deep, plus a file at the bottom
DEEP_DIR_LADDER = ("/deep", "/deep/a", "/deep/a/b", "/deep/a/b/c")
DEEP_FILE = "/deep/a/b/c/f9"

#: odd open-flag combinations (each becomes an ``open_flags`` meta-op)
ODD_OPEN_FLAG_SETS = (
    O_CREAT | O_EXCL | O_WRONLY,   # EEXIST on the second visit
    O_CREAT | O_TRUNC | O_RDWR,    # implicit truncate-to-zero on open
    O_WRONLY | O_APPEND,           # append mode (ENOENT until created)
    O_RDONLY | O_DIRECTORY,        # ENOTDIR on files, ok on directories
)


def _merged(base: Tuple, extra: Sequence) -> Tuple:
    """Append the extras that are not already present, preserving order."""
    merged = list(base)
    for value in extra:
        if value not in merged:
            merged.append(value)
    return tuple(merged)


def boundary_parameters(pool: ParameterPool) -> ParameterPool:
    """Layer the boundary-value families onto an existing pool.

    Every base value is kept (the boundary profile is a superset, never a
    replacement), so a boundary run still reaches everything the plain
    pool reaches.  Idempotent: augmenting twice returns the same pool.
    """
    file_paths = _merged(pool.file_paths, (DEEP_FILE,))
    dir_paths = _merged(pool.dir_paths, DEEP_DIR_LADDER)
    rename_cycle: Tuple[Tuple[str, str], ...] = ()
    if len(file_paths) >= 3:
        # close a 3-cycle over the first three files: the catalog's
        # pairwise renames cover the first two, the cycle adds the
        # rotations through the third (rename chains + cycles)
        first, second, third = file_paths[:3]
        rename_cycle = ((first, third), (second, third),
                        (third, first), (third, second))
    return ParameterPool(
        file_paths=file_paths,
        dir_paths=dir_paths,
        write_offsets=_merged(pool.write_offsets, BOUNDARY_WRITE_OFFSETS),
        write_sizes=_merged(pool.write_sizes, BOUNDARY_WRITE_SIZES),
        truncate_sizes=_merged(pool.truncate_sizes, BOUNDARY_TRUNCATE_SIZES),
        fill_bytes=pool.fill_bytes,
        symlink_targets=pool.symlink_targets,
        xattr_pairs=pool.xattr_pairs,
        rename_extra=_merged(pool.rename_extra, rename_cycle),
        open_flag_sets=_merged(pool.open_flag_sets, ODD_OPEN_FLAG_SETS),
    )


# ----------------------------------------------------------------- chooser --
class WeightedChooser:
    """Deterministic weighted draw over a catalog's operation list.

    Groups the concrete operations by class once; each draw picks a
    class by (possibly steered) weight, then a concrete operation within
    the class uniformly.  Both draws come from the caller's seeded
    ``random.Random``, so a fixed (seed, profile) yields an identical
    sequence on every platform and fleet member.
    """

    def __init__(self, profile: OpProfile, operations: Sequence[Operation],
                 steering: Optional["CoverageSteering"] = None):
        self.profile = profile
        self.steering = steering if profile.steer else None
        self._groups: List[Tuple[str, List[Operation]]] = []
        by_name: Dict[str, List[Operation]] = {}
        for operation in operations:
            by_name.setdefault(operation.name, []).append(operation)
        for op_class in OP_CLASSES:
            group = by_name.get(op_class)
            if group and profile.weight_of(op_class) > 0:
                self._groups.append((op_class, group))
        if not self._groups:
            raise ValueError(
                f"profile {profile.spec!r} leaves no executable operations "
                f"in this catalog"
            )
        self._base_weights = [profile.weight_of(name)
                              for name, _group in self._groups]
        self._cumulative = self._accumulate(self._base_weights)

    @staticmethod
    def _accumulate(weights: Sequence[float]) -> List[float]:
        cumulative: List[float] = []
        total = 0.0
        for weight in weights:
            total += weight
            cumulative.append(total)
        return cumulative

    def _current_cumulative(self) -> List[float]:
        if self.steering is None:
            return self._cumulative
        multipliers = self.steering.multipliers(
            [name for name, _group in self._groups]
        )
        return self._accumulate([
            weight * multiplier
            for weight, multiplier in zip(self._base_weights, multipliers)
        ])

    def choose(self, rng) -> Operation:
        cumulative = self._current_cumulative()
        total = cumulative[-1]
        index = bisect_right(cumulative, rng.random() * total)
        if index >= len(self._groups):  # guard the r == total edge
            index = len(self._groups) - 1
        _name, group = self._groups[index]
        if self.steering is not None:
            fresh = self.steering.unrun(group)
            if fresh:
                group = fresh
        return group[rng.randrange(len(group))]


class CoverageSteering:
    """Reweight generation toward under-visited outcome space.

    Inputs (both deterministic functions of the run history):

    * per-class execution and distinct outcome-pair counts, read from a
      :class:`~repro.core.coverage.CoverageTracker`;
    * the explorer's visited-state newness stream (how many recent state
      checks landed on already-visited abstract states).

    A class's multiplier is ``((1 + pairs) / (1 + executions)) ** p``:
    classes that have run many times while uncovering few distinct
    (operation, outcome) pairs decay, classes that keep producing new
    outcome pairs (or have barely run) hold their weight.  The exponent
    ``p`` rises from 1 toward 2 as the walk revisits more abstract
    states, so steering sharpens exactly when exploration stalls.

    Multipliers are recomputed every ``period`` recorded operations (the
    cache makes a draw O(classes), not O(outcome pairs)); the tracker is
    only ever read, never written.
    """

    def __init__(self, tracker, period: int = 32):
        self.tracker = tracker
        self.period = max(1, period)
        self._recorded = 0
        self._states_checked = 0
        self._states_revisited = 0
        self._cache: Optional[Dict[str, float]] = None

    # -------------------------------------------------------------- inputs --
    def note_operation(self) -> None:
        """One operation recorded by the tracker (invalidates the cache
        on period boundaries)."""
        self._recorded += 1
        if self._recorded % self.period == 0:
            self._cache = None

    def note_state_visit(self, is_new: bool) -> None:
        """One visited-table probe from the explorer."""
        self._states_checked += 1
        if not is_new:
            self._states_revisited += 1

    # ------------------------------------------------------------- outputs --
    @property
    def pressure(self) -> float:
        """Steering exponent in [1, 2]: revisit-heavy walks steer harder."""
        if self._states_checked == 0:
            return 1.0
        return 1.0 + self._states_revisited / self._states_checked

    def multipliers(self, op_classes: Sequence[str]) -> List[float]:
        if self._cache is None:
            executions, pairs = self.tracker.per_class_counts()
            exponent = self.pressure
            self._cache = {
                op_class: ((1.0 + pairs.get(op_class, 0))
                           / (1.0 + executions.get(op_class, 0))) ** exponent
                for op_class in OP_CLASSES
            }
        cache = self._cache
        return [cache.get(op_class, 1.0) for op_class in op_classes]

    def unrun(self, group: Sequence[Operation]) -> List[Operation]:
        """The subset of ``group`` the tracker has never recorded.

        The chooser prefers these: a concrete operation that has never
        executed cannot have contributed an outcome pair yet, so drawing
        it is the cheapest move toward new (operation, outcome) pairs.
        Class multipliers alone cannot see this -- they treat a class
        whose thirty argument variants all ran once the same as one
        where a single variant ran thirty times.
        """
        has_run = getattr(self.tracker, "has_run", None)
        if has_run is None:
            return []
        return [operation for operation in group if not has_run(operation)]
