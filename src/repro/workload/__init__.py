"""Workload presets and sequence generation.

The paper's operation space is "a predefined (bounded) parameter pool"
(§4).  Pool design determines which behaviours a bounded search can
reach at all (see ``docs/extending.md``); this package provides named
presets with documented intent, plus a deterministic sequence generator
for trace-style workloads outside the explorer.
"""

from repro.workload.presets import (
    DATA_HEAVY,
    DEEP_TREE,
    DEFAULT,
    METADATA_HEAVY,
    PRESETS,
    RENAME_STORM,
    preset,
)
from repro.workload.generator import SequenceGenerator
from repro.workload.profile import (
    OP_CLASSES,
    PROFILE_NAMES,
    CoverageSteering,
    OpProfile,
    WeightedChooser,
    boundary_parameters,
    parse_profile,
)

__all__ = [
    "DEFAULT",
    "METADATA_HEAVY",
    "DATA_HEAVY",
    "DEEP_TREE",
    "RENAME_STORM",
    "PRESETS",
    "preset",
    "SequenceGenerator",
    "OP_CLASSES",
    "PROFILE_NAMES",
    "CoverageSteering",
    "OpProfile",
    "WeightedChooser",
    "boundary_parameters",
    "parse_profile",
]
