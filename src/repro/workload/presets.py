"""Named parameter pools, each aimed at a different behaviour family."""

from __future__ import annotations

from repro.core.ops import ParameterPool

#: the general-purpose pool (the library default)
DEFAULT = ParameterPool()

#: namespace churn: many names, shallow data -- exercises directory
#: management, allocation reuse, rename/link paths, and dcache traffic
METADATA_HEAVY = ParameterPool(
    file_paths=("/f0", "/f1", "/f2", "/f3", "/f4", "/d0/f5", "/d1/f6"),
    dir_paths=("/d0", "/d1", "/d2", "/d0/sd0", "/d1/sd1"),
    write_offsets=(0,),
    write_sizes=(64,),
    truncate_sizes=(0,),
    symlink_targets=("/f0", "/d0"),
)

#: few files, rich data shapes -- exercises block allocation, holes,
#: indirect blocks/extents, and the stale-data bug families
DATA_HEAVY = ParameterPool(
    file_paths=("/f0", "/f1"),
    dir_paths=("/d0",),
    write_offsets=(0, 500, 1000, 4096, 10_000),
    write_sizes=(1, 512, 3000, 8192),
    truncate_sizes=(0, 100, 2048, 5000, 12_000),
)

#: nested namespace -- exercises path walking, '..' bookkeeping, and
#: directory-tree moves
DEEP_TREE = ParameterPool(
    file_paths=("/a/b/c/f0", "/a/b/f1", "/a/f2", "/f3"),
    dir_paths=("/a", "/a/b", "/a/b/c", "/a/b/c/d"),
    write_offsets=(0,),
    write_sizes=(256,),
    truncate_sizes=(0, 100),
)

#: rename-focused churn (requires the extended operation set)
RENAME_STORM = ParameterPool(
    file_paths=("/f0", "/f1", "/f2"),
    dir_paths=("/d0", "/d1"),
    write_offsets=(0,),
    write_sizes=(128,),
    truncate_sizes=(0,),
    symlink_targets=("/f0",),
)

PRESETS = {
    "default": DEFAULT,
    "metadata-heavy": METADATA_HEAVY,
    "data-heavy": DATA_HEAVY,
    "deep-tree": DEEP_TREE,
    "rename-storm": RENAME_STORM,
}


def preset(name: str) -> ParameterPool:
    """Look up a preset by name (KeyError lists the options)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {', '.join(sorted(PRESETS))}"
        ) from None
