"""repro.dist: real multiprocess exploration.

Where :mod:`repro.mc.swarm` *simulates* a diversified fleet (members run
sequentially, wall-clock accounted as the max member time), this package
runs one for real: a coordinator owns a seed-partitioned frontier of
work units, a :mod:`multiprocessing` fleet executes them with work
stealing, a shared visited-state service answers batched insert RPCs
over pipes (fronted by per-worker Bloom + LRU caches), and heartbeats +
lease timeouts make workers disposable -- a SIGKILL'd worker's leased
unit is re-issued and the run still completes with the identical merged
result.

Entry points::

    from repro.dist import CheckSpec, DistributedChecker

    spec = CheckSpec(filesystems=("verifs1", "verifs2"), units=8,
                     unit_operations=400)
    result = DistributedChecker(spec, workers=4).run()
    assert not result.found_discrepancy
    print(result.visited_states, result.speedup)

or, from an MCFS harness built from a spec::

    mcfs = spec.build_mcfs()
    result = mcfs.run_random(max_operations=3200, workers=4)

See ``docs/distributed.md`` for the wire protocol and the determinism
argument.
"""

from repro.dist.bloom import BloomFilter, LRUSet
from repro.dist.client import ShippingVisitedTable
from repro.dist.coordinator import (
    DistResult,
    DistributedChecker,
    WorkerSummary,
)
from repro.dist.protocol import UnitResult
from repro.dist.service import VisitedStateService
from repro.dist.spec import (
    FILESYSTEMS,
    KERNEL_FS,
    STRATEGIES,
    CheckSpec,
    WorkUnit,
    add_filesystem_by_name,
    unique_labels,
)
from repro.dist.worker import WorkerConfig

__all__ = [
    "BloomFilter",
    "CheckSpec",
    "DistResult",
    "DistributedChecker",
    "FILESYSTEMS",
    "KERNEL_FS",
    "LRUSet",
    "STRATEGIES",
    "ShippingVisitedTable",
    "UnitResult",
    "VisitedStateService",
    "WorkUnit",
    "WorkerConfig",
    "WorkerSummary",
    "add_filesystem_by_name",
    "unique_labels",
]
