"""The real-time boundary of the distributed runtime.

Everything the checker *measures* runs on the deterministic
:class:`repro.clock.SimClock`; results never depend on host timing.  But
a coordinator supervising real OS processes needs real deadlines: a
heartbeat that stopped arriving is only detectable against the wall
clock, and per-worker throughput is only meaningful in wall seconds.

This module is the single place :mod:`repro.dist` reads real time, so
the determinism linter's ``wall-clock`` rule polices exactly one
carefully-justified call site (the same way ``repro/clock.py`` is the
one module allowed to define simulated costs).
"""

from __future__ import annotations

import time


def now() -> float:
    """Seconds from a monotonic real clock (lease deadlines, throughput)."""
    return time.monotonic()  # det-lint: allow[wall-clock] supervision deadlines and throughput need real time; merged results never depend on it


def sleep(seconds: float) -> None:
    """Real sleep, used by idle workers waiting for stealable work."""
    time.sleep(seconds)
