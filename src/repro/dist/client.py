"""Worker-side visited-table plumbing: local decisions, batched shipping.

:class:`ShippingVisitedTable` is the pluggable visited table a worker
hands its explorer.  The contract that keeps distributed runs
deterministic:

* **Expansion decisions are purely local.**  ``visit`` consults only the
  unit's private :class:`~repro.mc.hashtable.VisitedStateTable`, so a
  unit explores identically whether it runs alone, alongside three
  other workers, or as a re-issued lease after a crash.
* **Every locally-new hash reaches the service exactly-or-more than
  once.**  New hashes are buffered and shipped in batches; the exact
  :class:`~repro.dist.bloom.LRUSet` of already-shipped hashes suppresses
  re-sends across units of the same worker; suppression is never
  probabilistic, so the global union is exact.
* **The Bloom filter only saves wire time.**  It summarises hashes the
  service has confirmed; its answers feed the cross-worker duplicate
  statistics and short-circuit lookups, never insert decisions.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.dist.bloom import BloomFilter, LRUSet
from repro.mc.hashtable import AbstractVisitedTable, StateKey, VisitedStateTable

#: ship callback: receives a drained batch of (wire key, depth) pairs
ShipFn = Callable[[List[Tuple[StateKey, int]]], None]


class ShippingVisitedTable(AbstractVisitedTable):
    """A per-unit local table that streams its discoveries to the service.

    The local table can be any store (exact or one of the memory-bounded
    :mod:`repro.mc.statestore` kinds).  What goes on the wire is the
    local store's :meth:`wire_key` -- the full hex digest for an exact
    table, a compact integer fingerprint for hc/bitstate -- so the
    LRU/Bloom suppression layers and the service all key identically.
    """

    def __init__(self, ship: ShipFn,
                 local: Optional[AbstractVisitedTable] = None,
                 shipped_lru: Optional[LRUSet] = None,
                 global_bloom: Optional[BloomFilter] = None,
                 batch_size: int = 64):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._ship = ship
        self.local = local if local is not None else VisitedStateTable()
        self.memory = self.local.memory
        self.shipped_lru = shipped_lru if shipped_lru is not None else LRUSet()
        self.global_bloom = (global_bloom if global_bloom is not None
                             else BloomFilter())
        self.batch_size = batch_size
        self._buffer: List[Tuple[StateKey, int]] = []
        self.shipped_hashes = 0
        self.suppressed_hashes = 0
        self.probable_cross_duplicates = 0

    @property
    def stats(self):
        return self.local.stats

    def wire_key(self, state_hash: str) -> StateKey:
        return self.local.wire_key(state_hash)

    # ---------------------------------------------------------------- visit --
    def visit(self, state_hash: str, depth: int = 0) -> Tuple[bool, bool]:
        is_new, should_expand = self.local.visit(state_hash, depth)
        if is_new:
            wire_key = self.local.wire_key(state_hash)
            if wire_key in self.shipped_lru:
                # exact hit: this worker already shipped it (earlier unit)
                self.suppressed_hashes += 1
            else:
                if wire_key in self.global_bloom:
                    # probably another worker's territory; ship anyway --
                    # the service's exact answer settles it
                    self.probable_cross_duplicates += 1
                self._buffer.append((wire_key, depth))
                self.shipped_lru.add(wire_key)
                if len(self._buffer) >= self.batch_size:
                    self.flush()
        return is_new, should_expand

    def __len__(self) -> int:
        return len(self.local)

    def __contains__(self, state_hash: str) -> bool:
        return state_hash in self.local

    # ----------------------------------------------------------------- wire --
    def flush(self) -> None:
        """Drain the batch buffer through the ship callback."""
        if self._buffer:
            batch = list(self._buffer)
            self._buffer.clear()
            self.shipped_hashes += len(batch)
            self._ship(batch)
