"""Worker-side visited-table plumbing: local decisions, batched shipping.

:class:`ShippingVisitedTable` is the pluggable visited table a worker
hands its explorer.  The contract that keeps distributed runs
deterministic:

* **Expansion decisions are purely local.**  ``visit`` consults only the
  unit's private :class:`~repro.mc.hashtable.VisitedStateTable`, so a
  unit explores identically whether it runs alone, alongside three
  other workers, or as a re-issued lease after a crash.
* **Every locally-new hash reaches the service exactly-or-more than
  once.**  New hashes are buffered and shipped in batches; the exact
  :class:`~repro.dist.bloom.LRUSet` of already-shipped hashes suppresses
  re-sends across units of the same worker; suppression is never
  probabilistic, so the global union is exact.
* **The Bloom filter only saves wire time.**  It summarises hashes the
  service has confirmed; its answers feed the cross-worker duplicate
  statistics and short-circuit lookups, never insert decisions.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.dist.bloom import BloomFilter, LRUSet
from repro.mc.hashtable import AbstractVisitedTable, VisitedStateTable

#: ship callback: receives a drained batch of (hash, depth) pairs
ShipFn = Callable[[List[Tuple[str, int]]], None]


class ShippingVisitedTable(AbstractVisitedTable):
    """A per-unit local table that streams its discoveries to the service."""

    def __init__(self, ship: ShipFn,
                 local: Optional[VisitedStateTable] = None,
                 shipped_lru: Optional[LRUSet] = None,
                 global_bloom: Optional[BloomFilter] = None,
                 batch_size: int = 64):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._ship = ship
        self.local = local if local is not None else VisitedStateTable()
        self.memory = self.local.memory
        self.shipped_lru = shipped_lru if shipped_lru is not None else LRUSet()
        self.global_bloom = (global_bloom if global_bloom is not None
                             else BloomFilter())
        self.batch_size = batch_size
        self._buffer: List[Tuple[str, int]] = []
        self.shipped_hashes = 0
        self.suppressed_hashes = 0
        self.probable_cross_duplicates = 0

    @property
    def stats(self):
        return self.local.stats

    # ---------------------------------------------------------------- visit --
    def visit(self, state_hash: str, depth: int = 0) -> Tuple[bool, bool]:
        is_new, should_expand = self.local.visit(state_hash, depth)
        if is_new:
            if state_hash in self.shipped_lru:
                # exact hit: this worker already shipped it (earlier unit)
                self.suppressed_hashes += 1
            else:
                if state_hash in self.global_bloom:
                    # probably another worker's territory; ship anyway --
                    # the service's exact answer settles it
                    self.probable_cross_duplicates += 1
                self._buffer.append((state_hash, depth))
                self.shipped_lru.add(state_hash)
                if len(self._buffer) >= self.batch_size:
                    self.flush()
        return is_new, should_expand

    def __len__(self) -> int:
        return len(self.local)

    def __contains__(self, state_hash: str) -> bool:
        return state_hash in self.local

    # ----------------------------------------------------------------- wire --
    def flush(self) -> None:
        """Drain the batch buffer through the ship callback."""
        if self._buffer:
            batch = list(self._buffer)
            self._buffer.clear()
            self.shipped_hashes += len(batch)
            self._ship(batch)
