"""Worker-local duplicate filters: a Bloom filter and an exact LRU set.

The visited-state service is authoritative, but every round trip to it
costs a pipe write + pickle.  Workers therefore keep two local layers in
front of the wire:

* :class:`LRUSet` -- an **exact**, bounded set of hashes this worker has
  already shipped.  A hit here suppresses the re-send outright; because
  membership is exact, suppression can never lose a hash (at worst an
  evicted entry is shipped twice and the service deduplicates).
* :class:`BloomFilter` -- a probabilistic summary of every hash the
  service has **confirmed** back to this worker.  A negative answer is
  definite ("the service never told me about this"), which lets the
  worker skip global lookups for fresh states; a positive answer only
  means "probably a cross-worker duplicate" and is used for statistics,
  never to drop an insert.  False positives therefore cost a counter
  increment, not correctness.

Both structures are deterministic: the Bloom filter hashes through MD5
(like all state fingerprinting in this codebase, see
:mod:`repro.util.hashing`), never the randomised builtin ``hash``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Iterable


class BloomFilter:
    """A classic Bloom filter over string items, MD5 double hashing."""

    def __init__(self, bits: int = 1 << 17, hashes: int = 4):
        if bits < 8:
            raise ValueError("a Bloom filter needs at least 8 bits")
        if hashes < 1:
            raise ValueError("a Bloom filter needs at least one hash")
        self.bits = bits
        self.hashes = hashes
        self._array = bytearray(bits // 8 + 1)
        self.items_added = 0

    def _indexes(self, item) -> Iterable[int]:
        # Kirsch-Mitzenmacher double hashing: two 64-bit halves of one
        # MD5 digest generate all k indexes (one digest per operation).
        # Items may be hex-digest strings or compact integer wire keys
        # (see repro.mc.statestore); both hash on their text form.
        if not isinstance(item, str):
            item = str(item)
        digest = hashlib.md5(item.encode("utf-8")).digest()
        first = int.from_bytes(digest[:8], "little")
        second = int.from_bytes(digest[8:], "little") | 1
        for i in range(self.hashes):
            yield (first + i * second) % self.bits

    def add(self, item: str) -> None:
        for index in self._indexes(item):
            self._array[index >> 3] |= 1 << (index & 7)
        self.items_added += 1

    def __contains__(self, item: str) -> bool:
        return all(self._array[index >> 3] & (1 << (index & 7))
                   for index in self._indexes(item))

    @property
    def fill_ratio(self) -> float:
        """Fraction of set bits (rough saturation indicator)."""
        set_bits = sum(bin(byte).count("1") for byte in self._array)
        return set_bits / self.bits


class LRUSet:
    """A bounded set with least-recently-used eviction (exact membership)."""

    def __init__(self, capacity: int = 1 << 16):
        if capacity < 1:
            raise ValueError("LRUSet capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[str, None]" = OrderedDict()
        self.evictions = 0

    def add(self, item: str) -> None:
        if item in self._entries:
            self._entries.move_to_end(item)
            return
        self._entries[item] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __contains__(self, item: str) -> bool:
        if item in self._entries:
            self._entries.move_to_end(item)  # a hit refreshes recency
            return True
        return False

    def __len__(self) -> int:
        return len(self._entries)
