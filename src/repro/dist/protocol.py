"""Wire protocol between the coordinator and its worker fleet.

Messages are small frozen dataclasses pickled over
:class:`multiprocessing.Pipe` connections (one duplex pipe per worker).
The conversation is strictly client-driven except for shutdown:

* worker -> coordinator: :class:`Hello`, :class:`WorkRequest`,
  :class:`Heartbeat`, :class:`VisitedBatch`, :class:`Checkpoint`,
  :class:`UnitDone`
* coordinator -> worker: :class:`WorkGrant`, :class:`Wait`,
  :class:`NoMoreWork`, :class:`VisitedReply`, :class:`Shutdown`

See ``docs/distributed.md`` for the full protocol walk-through and the
fault-tolerance semantics built on heartbeats and lease deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple

from repro.dist.spec import WorkUnit


# ------------------------------------------------------------------ worker --
@dataclass(frozen=True)
class Hello:
    """First message a worker sends: announces its id and OS pid."""

    worker_id: str
    pid: int


@dataclass(frozen=True)
class WorkRequest:
    """The worker's local frontier drained; it wants a unit (or will steal)."""

    worker_id: str


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness signal, sent every ``heartbeat_operations`` ops."""

    worker_id: str
    unit_index: int
    operations: int


@dataclass(frozen=True)
class VisitedBatch:
    """Batched insert RPC: locally-new ``(wire key, depth)`` pairs.

    Keys are whatever the campaign's store ships: full hex digests for
    the exact table, compact integer fingerprints for the memory-bounded
    stores (:mod:`repro.mc.statestore`).  The coordinator answers with a
    :class:`VisitedReply` carrying one flag per entry (True = globally
    new).
    """

    worker_id: str
    sequence: int
    entries: Tuple[Tuple[Any, int], ...]


@dataclass(frozen=True)
class Checkpoint:
    """Periodic progress snapshot in ``repro.mc.persistence`` v2 format.

    Covers the worker's *current* unit only; on lease recovery the
    coordinator merges the document so partial knowledge survives even
    though the unit itself is deterministically re-run elsewhere.
    """

    worker_id: str
    unit_index: int
    document: Dict[str, Any]


@dataclass
class UnitResult:
    """Everything a finished work unit reports back (and the merge keeps)."""

    index: int
    seed: int
    worker_id: str
    operations: int = 0
    transitions: int = 0
    unique_states: int = 0
    revisited_states: int = 0
    sim_time: float = 0.0
    wall_time: float = 0.0
    stopped_reason: str = ""
    #: serialised DiscrepancyReport (``to_dict()``) when the unit hit a bug
    violation: Optional[Dict[str, Any]] = None
    #: hashes shipped to / suppressed before the visited service
    shipped_hashes: int = 0
    suppressed_hashes: int = 0
    probable_cross_duplicates: int = 0
    #: snapshot traffic (defaulted so v1 result documents still load):
    #: bytes the COW checkpoint path physically copied / rewrote, and
    #: the full-copy volume it stood in for
    bytes_snapshotted: int = 0
    bytes_restored: int = 0
    logical_snapshot_bytes: int = 0
    #: lossy-store accounting (defaulted so older result documents still
    #: load): whether the unit's local store could omit states, and the
    #: final per-query probability of such an omission
    omission_possible: bool = False
    omission_probability: float = 0.0

    # ------------------------------------------------------- serialisation --
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; the server wire and result spool use this."""
        return {result_field.name: getattr(self, result_field.name)
                for result_field in fields(self)}

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "UnitResult":
        """Rebuild from :meth:`to_dict` output; unknown keys are ignored
        and missing keys fall back to defaults, so result documents
        survive protocol evolution in both directions."""
        known = {result_field.name for result_field in fields(cls)}
        return cls(**{key: value for key, value in document.items()
                      if key in known})


@dataclass(frozen=True)
class UnitDone:
    worker_id: str
    result: UnitResult


# ------------------------------------------------------------- coordinator --
@dataclass(frozen=True)
class WorkGrant:
    """A leased work unit; the lease is kept alive by heartbeats."""

    unit: WorkUnit


@dataclass(frozen=True)
class Wait:
    """No unit free right now (all leased out); ask again shortly."""

    seconds: float = 0.05


@dataclass(frozen=True)
class NoMoreWork:
    """Every unit has a result; the worker should exit cleanly."""


@dataclass(frozen=True)
class VisitedReply:
    """Answer to a :class:`VisitedBatch`: per-entry globally-new flags."""

    sequence: int
    new_flags: Tuple[bool, ...]


@dataclass(frozen=True)
class Shutdown:
    """Immediate stop (run aborted or complete)."""
