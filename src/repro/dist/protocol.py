"""Wire protocol between the coordinator and its worker fleet.

Messages are small frozen dataclasses pickled over
:class:`multiprocessing.Pipe` connections (one duplex pipe per worker).
The conversation is strictly client-driven except for shutdown:

* worker -> coordinator: :class:`Hello`, :class:`WorkRequest`,
  :class:`Heartbeat`, :class:`VisitedBatch` /
  :class:`PackedVisitedBatch`, :class:`Checkpoint`, :class:`UnitDone`
* coordinator -> worker: :class:`WorkGrant`, :class:`Wait`,
  :class:`NoMoreWork`, :class:`VisitedReply` /
  :class:`PackedVisitedReply`, :class:`Shutdown`

These messages are the **control plane** plus the RPC **data plane**.
On platforms that support it the data plane moves to sharded
shared-memory segments (:mod:`repro.mc.shardmem`): visited-state
traffic then bypasses the pipe entirely, and only control messages
(grants, heartbeats, results) remain here.

See ``docs/distributed.md`` for the full protocol walk-through and the
fault-tolerance semantics built on heartbeats and lease deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.dist.spec import WorkUnit

#: packed-batch key widths/forms by store kind: exact and tiered ship
#: full digests that decode back to 32-char hex strings; bitstate ships
#: the digest as a 128-bit integer; hc ships its compacted fingerprint
PACKED_KEY_FORMS: Dict[str, Tuple[int, str]] = {
    "exact": (16, "hex"),
    "tiered": (16, "hex"),
    "bitstate": (16, "int"),
    "hc": (8, "int"),
}

#: depth field width in a packed entry (u32, saturating)
_PACKED_DEPTH_BYTES = 4
_PACKED_DEPTH_MAX = 0xFFFFFFFF


def packing_for_store(store: str) -> Tuple[int, str]:
    """``(key_bytes, key_form)`` for a ``--state-store`` spec string."""
    from repro.mc.statestore import parse_store_spec

    return PACKED_KEY_FORMS[parse_store_spec(store).kind]


def pack_entries(entries, key_bytes: int, key_form: str) -> bytes:
    """Serialise ``(wire key, depth)`` pairs into one flat byte array.

    One ``bytes`` object pickles as a single opaque blob -- no per-entry
    object headers, no per-entry memo lookups -- which is the point:
    the fleet's hottest message becomes O(1) pickle work.  Raises
    ``ValueError`` for keys that do not fit the packing (callers fall
    back to the legacy tuple form).
    """
    packed = bytearray()
    for key, depth in entries:
        value = int(key, 16) if key_form == "hex" else int(key)
        packed += value.to_bytes(key_bytes, "little")
        packed += min(int(depth), _PACKED_DEPTH_MAX).to_bytes(
            _PACKED_DEPTH_BYTES, "little")
    return bytes(packed)


def unpack_entries(payload: bytes, key_bytes: int,
                   key_form: str) -> List[Tuple[Any, int]]:
    """Invert :func:`pack_entries` (hex keys come back as hex strings)."""
    stride = key_bytes + _PACKED_DEPTH_BYTES
    entries: List[Tuple[Any, int]] = []
    for offset in range(0, len(payload), stride):
        value = int.from_bytes(payload[offset:offset + key_bytes], "little")
        depth = int.from_bytes(
            payload[offset + key_bytes:offset + stride], "little")
        key: Any = (format(value, f"0{key_bytes * 2}x")
                    if key_form == "hex" else value)
        entries.append((key, depth))
    return entries


def pack_flags(flags) -> bytes:
    """Bit-pack a sequence of booleans (LSB-first within each byte)."""
    packed = bytearray((len(flags) + 7) // 8)
    for index, flag in enumerate(flags):
        if flag:
            packed[index >> 3] |= 1 << (index & 7)
    return bytes(packed)


def unpack_flags(bits: bytes, count: int) -> Tuple[bool, ...]:
    return tuple(bool(bits[index >> 3] & (1 << (index & 7)))
                 for index in range(count))


# ------------------------------------------------------------------ worker --
@dataclass(frozen=True)
class Hello:
    """First message a worker sends: announces its id and OS pid."""

    worker_id: str
    pid: int


@dataclass(frozen=True)
class WorkRequest:
    """The worker's local frontier drained; it wants a unit (or will steal)."""

    worker_id: str


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness signal, sent every ``heartbeat_operations`` ops."""

    worker_id: str
    unit_index: int
    operations: int


@dataclass(frozen=True)
class VisitedBatch:
    """Batched insert RPC: locally-new ``(wire key, depth)`` pairs.

    Keys are whatever the campaign's store ships: full hex digests for
    the exact table, compact integer fingerprints for the memory-bounded
    stores (:mod:`repro.mc.statestore`).  The coordinator answers with a
    :class:`VisitedReply` carrying one flag per entry (True = globally
    new).
    """

    worker_id: str
    sequence: int
    entries: Tuple[Tuple[Any, int], ...]


@dataclass(frozen=True)
class PackedVisitedBatch:
    """:class:`VisitedBatch` as one struct-packed byte array.

    The RPC data plane's hot message: ``count`` fixed-width
    ``(key, depth)`` records in ``payload`` (see :func:`pack_entries`),
    so pickling cost no longer scales with per-entry Python objects.
    The coordinator answers with a :class:`PackedVisitedReply`.
    """

    worker_id: str
    sequence: int
    count: int
    key_bytes: int
    key_form: str  # "hex" | "int"
    payload: bytes

    def entries(self) -> List[Tuple[Any, int]]:
        return unpack_entries(self.payload, self.key_bytes, self.key_form)


@dataclass(frozen=True)
class Checkpoint:
    """Periodic progress snapshot in ``repro.mc.persistence`` v2 format.

    Covers the worker's *current* unit only; on lease recovery the
    coordinator merges the document so partial knowledge survives even
    though the unit itself is deterministically re-run elsewhere.
    """

    worker_id: str
    unit_index: int
    document: Dict[str, Any]


@dataclass
class UnitResult:
    """Everything a finished work unit reports back (and the merge keeps)."""

    index: int
    seed: int
    worker_id: str
    operations: int = 0
    transitions: int = 0
    unique_states: int = 0
    revisited_states: int = 0
    sim_time: float = 0.0
    wall_time: float = 0.0
    stopped_reason: str = ""
    #: serialised DiscrepancyReport (``to_dict()``) when the unit hit a bug
    violation: Optional[Dict[str, Any]] = None
    #: hashes shipped to / suppressed before the visited service
    shipped_hashes: int = 0
    suppressed_hashes: int = 0
    probable_cross_duplicates: int = 0
    #: snapshot traffic (defaulted so v1 result documents still load):
    #: bytes the COW checkpoint path physically copied / rewrote, and
    #: the full-copy volume it stood in for
    bytes_snapshotted: int = 0
    bytes_restored: int = 0
    logical_snapshot_bytes: int = 0
    #: lossy-store accounting (defaulted so older result documents still
    #: load): whether the unit's local store could omit states, and the
    #: final per-query probability of such an omission
    omission_possible: bool = False
    omission_probability: float = 0.0
    #: per-state cost breakdown (:meth:`repro.mc.perf.CostProfile.to_dict`
    #: form) when the campaign profiled; None otherwise
    cost_profile: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------- serialisation --
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; the server wire and result spool use this."""
        return {result_field.name: getattr(self, result_field.name)
                for result_field in fields(self)}

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "UnitResult":
        """Rebuild from :meth:`to_dict` output; unknown keys are ignored
        and missing keys fall back to defaults, so result documents
        survive protocol evolution in both directions."""
        known = {result_field.name for result_field in fields(cls)}
        return cls(**{key: value for key, value in document.items()
                      if key in known})


@dataclass(frozen=True)
class UnitDone:
    worker_id: str
    result: UnitResult


# ------------------------------------------------------------- coordinator --
@dataclass(frozen=True)
class WorkGrant:
    """A leased work unit; the lease is kept alive by heartbeats."""

    unit: WorkUnit


@dataclass(frozen=True)
class Wait:
    """No unit free right now (all leased out); ask again shortly."""

    seconds: float = 0.05


@dataclass(frozen=True)
class NoMoreWork:
    """Every unit has a result; the worker should exit cleanly."""


@dataclass(frozen=True)
class VisitedReply:
    """Answer to a :class:`VisitedBatch`: per-entry globally-new flags."""

    sequence: int
    new_flags: Tuple[bool, ...]


@dataclass(frozen=True)
class PackedVisitedReply:
    """Answer to a :class:`PackedVisitedBatch`: bit-packed new flags."""

    sequence: int
    count: int
    flag_bits: bytes

    def flags(self) -> Tuple[bool, ...]:
        return unpack_flags(self.flag_bits, self.count)


@dataclass(frozen=True)
class Shutdown:
    """Immediate stop (run aborted or complete)."""
