"""The coordinator: owns the frontier, the fleet, and the merge.

``DistributedChecker`` turns a :class:`~repro.dist.spec.CheckSpec` into
a real :mod:`multiprocessing` campaign:

* the spec's work units are **seed-partitioned** across worker slots
  (unit ``i`` belongs to partition ``i mod workers``); a worker whose
  partition drains **steals** from the back of the largest remaining
  partition (classic steal-from-tail, so owners and thieves rarely
  contend for the same units);
* every granted unit is covered by a **lease** kept alive by heartbeats;
  an expired lease (or a dead process, detected sooner) re-issues the
  unit -- after merging the worker's last shipped checkpoint -- so a
  SIGKILL'd worker costs wall time, never results;
* a **visited-state service** (one authoritative table) answers the
  workers' batched insert RPCs, deduplicating cross-worker territory;
* if the *entire* fleet dies, the coordinator finishes the remaining
  units inline -- the run always completes.

Determinism: units are self-contained and deterministic, the unit list
depends only on the spec, and merges are sorted -- so the discrepancy
set and the visited-state count are identical for any worker count,
any interleaving, and any crash schedule.
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Any, Deque, Dict, List, Optional

from repro.core.report import DiscrepancyReport
from repro.dist import realtime
from repro.dist.protocol import (
    Checkpoint,
    Heartbeat,
    Hello,
    NoMoreWork,
    PackedVisitedBatch,
    Shutdown,
    UnitDone,
    UnitResult,
    VisitedBatch,
    VisitedReply,
    Wait,
    WorkGrant,
    WorkRequest,
)
from repro.dist.service import VisitedStateService
from repro.dist.spec import CheckSpec, WorkUnit
from repro.dist.worker import WorkerConfig, ResultSink, run_unit, worker_main
from repro.mc.hashtable import AbstractVisitedTable, VisitedStateTable
from repro.mc.shardmem import (
    ShardLayout,
    ShardSegment,
    shared_memory_available,
)
from repro.mc.statestore import merge_into, parse_store_spec


@dataclass
class Lease:
    """One granted unit: who runs it and until when we trust them."""

    unit: WorkUnit
    worker_id: str
    deadline: float
    heartbeats: int = 0
    operations_reported: int = 0
    checkpoint: Optional[Dict[str, Any]] = None


@dataclass
class WorkerRecord:
    worker_id: str
    process: Any
    conn: Any
    pid: Optional[int] = None
    alive: bool = True
    units_completed: int = 0
    operations: int = 0
    sim_time: float = 0.0
    wall_time: float = 0.0


@dataclass
class WorkerSummary:
    """Per-worker accounting surfaced by ``repro swarm``."""

    worker_id: str
    units_completed: int
    operations: int
    sim_time: float
    wall_time: float
    alive_at_end: bool

    @property
    def wall_ops_per_second(self) -> float:
        return self.operations / self.wall_time if self.wall_time > 0 else 0.0

    # ------------------------------------------------------- serialisation --
    def to_dict(self) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "units_completed": self.units_completed,
            "operations": self.operations,
            "sim_time": self.sim_time,
            "wall_time": self.wall_time,
            "alive_at_end": self.alive_at_end,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "WorkerSummary":
        return cls(
            worker_id=document["worker_id"],
            units_completed=int(document.get("units_completed", 0)),
            operations=int(document.get("operations", 0)),
            sim_time=float(document.get("sim_time", 0.0)),
            wall_time=float(document.get("wall_time", 0.0)),
            alive_at_end=bool(document.get("alive_at_end", True)),
        )


@dataclass
class DistResult:
    """The deterministic merge of a distributed campaign."""

    workers: int
    unit_results: List[UnitResult] = field(default_factory=list)
    table: AbstractVisitedTable = field(default_factory=VisitedStateTable)
    worker_summaries: List[WorkerSummary] = field(default_factory=list)
    wall_time: float = 0.0
    recovered_units: int = 0
    stolen_units: int = 0
    inline_units: int = 0
    cross_worker_duplicates: int = 0
    #: which data plane carried visited-state traffic ("shm" or "rpc")
    data_plane: str = "rpc"
    #: campaign-wide per-state cost breakdown (unit profiles merged;
    #: :meth:`repro.mc.perf.CostProfile.to_dict` form) when the spec
    #: profiled; None otherwise
    cost_profile: Optional[Dict[str, Any]] = None
    #: trail files written from unit violations (``trail_dir`` set),
    #: ordered by unit index like :attr:`discrepancies`
    trail_paths: List[str] = field(default_factory=list)

    # ------------------------------------------------------------- derived --
    @property
    def visited_states(self) -> int:
        """Merged unique-state count (the union across all units)."""
        return len(self.table)

    @property
    def total_operations(self) -> int:
        return sum(unit.operations for unit in self.unit_results)

    @property
    def discrepancies(self) -> List[DiscrepancyReport]:
        """All per-unit violations, ordered by unit index (deterministic)."""
        return [DiscrepancyReport.from_dict(unit.violation)
                for unit in self.unit_results if unit.violation is not None]

    def discrepancy_signature(self) -> List[tuple]:
        """A comparable fingerprint of *what* was found, and by which unit."""
        return [(unit.index, unit.violation["kind"], unit.violation["summary"])
                for unit in self.unit_results if unit.violation is not None]

    @property
    def found_discrepancy(self) -> bool:
        return any(unit.violation is not None for unit in self.unit_results)

    @property
    def sequential_sim_time(self) -> float:
        """Simulated compute if every unit ran back to back."""
        return sum(unit.sim_time for unit in self.unit_results)

    @property
    def omission_possible(self) -> bool:
        """True when the campaign's store could have omitted states."""
        return (self.table.stats.omission_possible
                or any(unit.omission_possible for unit in self.unit_results))

    @property
    def omission_probability(self) -> float:
        """Worst per-query omission probability seen anywhere."""
        return max(
            [self.table.stats.omission_probability]
            + [unit.omission_probability for unit in self.unit_results]
        )

    @property
    def bytes_snapshotted(self) -> int:
        """Bytes the fleet's checkpoint paths physically copied."""
        return sum(unit.bytes_snapshotted for unit in self.unit_results)

    @property
    def bytes_restored(self) -> int:
        """Bytes the fleet's restores physically rewrote."""
        return sum(unit.bytes_restored for unit in self.unit_results)

    @property
    def snapshot_dedup_ratio(self) -> float:
        """Fleet-wide logical-to-physical snapshot ratio (0.0 = none)."""
        physical = self.bytes_snapshotted
        if physical <= 0:
            return 0.0
        logical = sum(unit.logical_snapshot_bytes for unit in self.unit_results)
        return logical / physical

    @property
    def modeled_parallel_time(self) -> float:
        """Simulated wall-clock of the seed partition on ``workers`` lanes.

        The deterministic analogue of :attr:`SwarmResult.parallel_time`:
        lane ``p`` runs the units with ``index % workers == p`` back to
        back, and the campaign takes as long as its slowest lane.  Using
        the static partition (not the stealing-adjusted actual schedule)
        keeps the number reproducible across interleavings.
        """
        lanes = [0.0] * max(1, self.workers)
        for unit in self.unit_results:
            lanes[unit.index % len(lanes)] += unit.sim_time
        return max(lanes)

    @property
    def speedup(self) -> float:
        """Modeled speedup over a single sequential lane."""
        parallel = self.modeled_parallel_time
        return self.sequential_sim_time / parallel if parallel > 0 else 0.0

    @property
    def states_per_second(self) -> float:
        """Merged unique states per modeled-parallel simulated second."""
        parallel = self.modeled_parallel_time
        return self.visited_states / parallel if parallel > 0 else 0.0

    @property
    def wall_states_per_second(self) -> float:
        """Merged unique states per real wall-clock second -- the honest
        throughput headline (the modeled number is the *shape* check)."""
        return self.visited_states / self.wall_time if self.wall_time > 0 else 0.0

    # ------------------------------------------------------- serialisation --
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-ready form (the server result wire and spool).

        The merged visited table rides along as a
        :mod:`repro.mc.persistence` snapshot document, so exact *and*
        memory-bounded stores round-trip with their own record formats.
        """
        from repro.mc.persistence import snapshot_document

        return {
            "workers": self.workers,
            "wall_time": self.wall_time,
            "recovered_units": self.recovered_units,
            "stolen_units": self.stolen_units,
            "inline_units": self.inline_units,
            "cross_worker_duplicates": self.cross_worker_duplicates,
            "data_plane": self.data_plane,
            "cost_profile": self.cost_profile,
            "trail_paths": list(self.trail_paths),
            "unit_results": [unit.to_dict() for unit in self.unit_results],
            "worker_summaries": [summary.to_dict()
                                 for summary in self.worker_summaries],
            "table": snapshot_document(self.table),
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "DistResult":
        from repro.mc.persistence import snapshot_from_document

        result = cls(
            workers=int(document["workers"]),
            wall_time=float(document.get("wall_time", 0.0)),
            recovered_units=int(document.get("recovered_units", 0)),
            stolen_units=int(document.get("stolen_units", 0)),
            inline_units=int(document.get("inline_units", 0)),
            cross_worker_duplicates=int(
                document.get("cross_worker_duplicates", 0)),
            data_plane=str(document.get("data_plane", "rpc")),
            cost_profile=document.get("cost_profile"),
            trail_paths=list(document.get("trail_paths", [])),
            unit_results=[UnitResult.from_dict(entry)
                          for entry in document.get("unit_results", [])],
            worker_summaries=[WorkerSummary.from_dict(entry)
                              for entry in document.get("worker_summaries",
                                                        [])],
        )
        table_document = document.get("table")
        if table_document is not None:
            snapshot = snapshot_from_document(table_document)
            result.table = snapshot.visited
        return result


class _ServiceSink(ResultSink):
    """Inline-fallback sink: feed the service directly, no wire."""

    def __init__(self, service: VisitedStateService):
        self.service = service

    def ship_batch(self, entries) -> None:
        self.service.insert_batch(entries)

    def heartbeat(self, unit_index: int, operations: int) -> None:
        pass

    def checkpoint(self, unit_index: int, document) -> None:
        pass


class DistributedChecker:
    """Run a CheckSpec across a fault-tolerant multiprocessing fleet."""

    def __init__(
        self,
        spec: CheckSpec,
        workers: int = 2,
        config: Optional[WorkerConfig] = None,
        lease_timeout: float = 15.0,
        poll_interval: float = 0.02,
        state_file: Optional[str] = None,
        mp_context=None,
        #: fault injection: worker_id -> SIGKILL-self after N operations
        chaos_kill_after: Optional[Dict[str, int]] = None,
        #: write a ``*.trail.json`` per unit violation into this
        #: directory, so distributed finds replay locally; None disables
        trail_dir: Optional[str] = None,
        #: embedding hooks (the campaign server drives the fleet through
        #: these): an explicit unit subset to run instead of the spec's
        #: full partition, an external visited-state service to merge
        #: into, and progress callbacks fired as the fleet reports
        units: Optional[List[WorkUnit]] = None,
        service: Optional[VisitedStateService] = None,
        on_unit_done=None,
        on_progress=None,
    ):
        if workers < 1:
            raise ValueError("the fleet needs at least one worker")
        self.spec = spec
        self.workers = workers
        self.units_override = units
        self.external_service = service
        self.on_unit_done = on_unit_done
        self.on_progress = on_progress
        self.config = config if config is not None else WorkerConfig()
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.state_file = state_file
        self.trail_dir = trail_dir
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = multiprocessing.get_context(
                "fork" if "fork" in methods else None)
        self.mp_context = mp_context
        self.chaos_kill_after = dict(chaos_kill_after or {})
        #: resolved shm-plane state for the current run (set by run())
        self._shm_layout: Optional[ShardLayout] = None
        self._shm_segments: List[ShardSegment] = []

    # ------------------------------------------------------------ data plane --
    def _resolve_data_plane(self) -> str:
        """Pick the visited-state plane for this run.

        ``auto`` takes shared memory whenever it can actually work:
        the OS offers ``multiprocessing.shared_memory``, the fleet
        forks (spawned children re-track segments and the layout's
        determinism guarantees have only been validated fork-side), and
        the store is not tiered (its hot tier keys on live hex strings,
        which do not fit fixed-width slots).  Forcing ``shm`` where it
        cannot work is an error, not a silent fallback.
        """
        requested = getattr(self.spec, "data_plane", "auto")
        if requested == "rpc":
            return "rpc"
        kind = parse_store_spec(self.spec.state_store).kind
        supported = (
            shared_memory_available()
            and self.mp_context.get_start_method() == "fork"
            and kind != "tiered"
        )
        if requested == "shm" and not supported:
            raise ValueError(
                "data_plane='shm' is not available here: needs the fork "
                "start method, multiprocessing.shared_memory, and a "
                "non-tiered state store"
            )
        return "shm" if supported else "rpc"

    def _shard_layout(self, units: List[WorkUnit]) -> ShardLayout:
        """Segment geometry sized so overflow is an anomaly, not a plan.

        Worst case one worker (via stealing) discovers every state the
        whole campaign can produce: one state per operation plus the
        initial state of each unit.  Slots are provisioned at 2x that
        bound (open addressing wants load factor <= 0.5), so the RPC
        overflow path exists for safety, not throughput.
        """
        worst_case = sum(unit.max_operations + 2 for unit in units)
        shards = max(1, getattr(self.spec, "shards", 4))
        slots = 1 << 10
        while slots * shards < 2 * worst_case:
            slots *= 2
        return ShardLayout.for_store(
            self.spec.state_store, shards=shards, slots_per_shard=slots,
            seed=self.spec.base_seed)

    def _merge_segments(self, service: VisitedStateService,
                        result: DistResult) -> None:
        """Fold every worker segment into the authoritative table.

        The union is replayed **sorted by key** with shallowest depth
        winning -- a canonical order, so the merged table is identical
        for any worker count, shard count, interleaving, or crash
        schedule (and byte-identical to what the RPC plane's arrival-
        order inserts converge to: same keys, same shallowest depths).
        Duplicated territory (the same key published by several
        workers) surfaces as ``cross_worker_duplicates``, exactly like
        the RPC plane's not-new insert replies.
        """
        layout = self._shm_layout
        if layout is None:
            return
        union: Dict[int, int] = {}
        published = 0
        for segment in self._shm_segments:
            for key, depth in segment.entries():
                published += 1
                existing = union.get(key)
                if existing is None or depth < existing:
                    union[key] = depth
        for key in sorted(union):
            service.table.visit(layout.state_of(key), union[key])
        service.hashes_received += published
        service.cross_worker_duplicates += published - len(union)

    def _release_segments(self) -> None:
        for segment in self._shm_segments:
            try:
                segment.unlink()
            except Exception:
                pass  # never let cleanup mask the run's real outcome
        self._shm_segments = []
        self._shm_layout = None

    # ------------------------------------------------------------------ run --
    def run(self) -> DistResult:
        units = (self.units_override if self.units_override is not None
                 else self.spec.work_units())
        service = self.external_service
        if service is None:
            service = VisitedStateService(
                store=getattr(self.spec, "state_store", "exact"),
                store_seed=self.spec.base_seed,
            )
        resumed_operations = 0
        resumed_runs = 0
        if self.state_file is not None:
            from repro.mc.persistence import load_checker_state

            snapshot = load_checker_state(self.state_file)
            if snapshot is not None:
                merge_into(service.table, snapshot.visited)
                resumed_operations = snapshot.operations_completed
                resumed_runs = snapshot.runs

        plane = self._resolve_data_plane()
        if plane == "shm":
            layout = self._shard_layout(units)
            try:
                self._shm_layout = layout
                self._shm_segments = [ShardSegment(layout, create=True)
                                      for _ in range(self.workers)]
            except Exception:
                # no /dev/shm room (or similar): degrade to the RPC plane
                self._release_segments()
                plane = "rpc"

        result = DistResult(workers=self.workers, data_plane=plane)
        # seed-partitioned initial split: unit i -> partition i mod W
        partitions: List[Deque[WorkUnit]] = [deque() for _ in range(self.workers)]
        for unit in units:
            partitions[unit.index % self.workers].append(unit)

        records: List[WorkerRecord] = []
        wall_start = realtime.now()
        try:
            records = self._spawn_fleet()
            self._supervise(records, partitions, units, service, result)
        finally:
            self._shutdown_fleet(records)
            try:
                # merge before the timer stops: the shm plane's deferred
                # union is part of its honest wall cost.  Runs on error
                # exits too (a paused/aborted campaign keeps the fleet's
                # published knowledge, like RPC checkpoints used to).
                self._merge_segments(service, result)
            finally:
                self._release_segments()
        result.wall_time = realtime.now() - wall_start

        result.unit_results.sort(key=lambda unit: unit.index)
        result.table = service.table
        profiles = [unit.cost_profile for unit in result.unit_results
                    if unit.cost_profile is not None]
        if profiles:
            from repro.mc.perf import CostProfile

            merged = CostProfile()
            for document in profiles:
                merged.merge(CostProfile.from_dict(document))
            result.cost_profile = merged.to_dict()
        if self.trail_dir is not None:
            self._capture_trails(result)
        result.cross_worker_duplicates = service.cross_worker_duplicates
        result.worker_summaries = [
            WorkerSummary(
                worker_id=record.worker_id,
                units_completed=record.units_completed,
                operations=record.operations,
                sim_time=record.sim_time,
                wall_time=record.wall_time,
                alive_at_end=record.alive,
            )
            for record in records
        ]
        if self.state_file is not None:
            from repro.mc.persistence import save_checker_state

            save_checker_state(
                self.state_file, service.table,
                operations_completed=resumed_operations
                + result.total_operations,
                runs=resumed_runs + 1,
                seed=self.spec.base_seed,
                worker_id="coordinator",
            )
        return result

    # ------------------------------------------------------------ internals --
    def _capture_trails(self, result: DistResult) -> None:
        """Write one trail per unit violation: the worker's schedule came
        back through the wire inside the serialised report, so a
        distributed find is locally replayable like any other."""
        from repro.trail import capture_trail

        for unit in result.unit_results:
            if unit.violation is None:
                continue
            report = DiscrepancyReport.from_dict(unit.violation)
            if report.schedule is None:
                continue
            result.trail_paths.append(capture_trail(
                report, self.spec, self.trail_dir,
                mode="random", seed=unit.seed,
                name=f"unit{unit.index:03d}-seed{unit.seed}",
            ))

    def _spawn_fleet(self) -> List[WorkerRecord]:
        from dataclasses import replace

        records: List[WorkerRecord] = []
        segment_names = tuple(segment.name for segment in self._shm_segments)
        for slot in range(self.workers):
            worker_id = f"w{slot}"
            parent_conn, child_conn = self.mp_context.Pipe(duplex=True)
            config = self.config
            if segment_names:
                config = replace(
                    config,
                    shm_layout=self._shm_layout,
                    shm_segments=segment_names,
                    shm_slot=slot,
                )
            if worker_id in self.chaos_kill_after:
                config = replace(
                    config,
                    chaos_kill_after_operations=self.chaos_kill_after[worker_id],
                )
            process = self.mp_context.Process(
                target=worker_main,
                args=(child_conn, self.spec, worker_id, config),
                name=f"repro-dist-{worker_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            records.append(WorkerRecord(worker_id=worker_id, process=process,
                                        conn=parent_conn))
        return records

    def _supervise(self, records: List[WorkerRecord],
                   partitions: List[Deque[WorkUnit]],
                   units: List[WorkUnit],
                   service: VisitedStateService,
                   result: DistResult) -> None:
        by_id = {record.worker_id: record for record in records}
        results: Dict[int, UnitResult] = {}
        leases: Dict[str, Lease] = {}
        wall_started: Dict[str, float] = {}

        def live() -> List[WorkerRecord]:
            return [record for record in records if record.alive]

        def recover(record: WorkerRecord) -> None:
            """A worker is gone: merge its checkpoint, re-issue its lease."""
            record.alive = False
            lease = leases.pop(record.worker_id, None)
            if lease is not None:
                if lease.checkpoint is not None:
                    service.import_snapshot(lease.checkpoint)
                # back to the front of its home partition: the next
                # requester (owner or thief) re-runs it deterministically
                partitions[lease.unit.index % self.workers].appendleft(lease.unit)
                result.recovered_units += 1
            if record.worker_id in wall_started:
                record.wall_time += (realtime.now()
                                     - wall_started.pop(record.worker_id))
            if record.process.is_alive():
                record.process.terminate()
            try:
                record.conn.close()
            except OSError:
                pass

        def next_unit(slot: int) -> Optional[WorkUnit]:
            """Own partition first; then steal from the largest backlog."""
            if partitions[slot]:
                return partitions[slot].popleft()
            victim = max(
                (index for index in range(self.workers) if index != slot),
                key=lambda index: len(partitions[index]),
                default=None,
            )
            if victim is None or not partitions[victim]:
                return None
            result.stolen_units += 1
            return partitions[victim].pop()  # steal from the tail

        def handle(record: WorkerRecord, message) -> None:
            now = realtime.now()
            if isinstance(message, Hello):
                record.pid = message.pid
            elif isinstance(message, WorkRequest):
                if record.worker_id in leases:
                    # a duplicate request while a grant is outstanding:
                    # granting again would overwrite the lease and lose
                    # the first unit.  Wait instead -- either the worker
                    # runs the queued grant (lease resolves normally) or
                    # the lease expires and recover() re-queues the unit.
                    record.conn.send(Wait())
                    return
                slot = records.index(record)
                unit = next_unit(slot)
                if unit is not None:
                    leases[record.worker_id] = Lease(
                        unit=unit, worker_id=record.worker_id,
                        deadline=now + self.lease_timeout,
                    )
                    wall_started[record.worker_id] = now
                    record.conn.send(WorkGrant(unit))
                elif len(results) >= len(units):
                    record.conn.send(NoMoreWork())
                else:
                    record.conn.send(Wait())  # outstanding leases elsewhere
            elif isinstance(message, Heartbeat):
                lease = leases.get(record.worker_id)
                if lease is not None and lease.unit.index == message.unit_index:
                    lease.deadline = now + self.lease_timeout
                    lease.heartbeats += 1
                    lease.operations_reported = message.operations
                    if self.on_progress is not None:
                        self.on_progress(message.unit_index,
                                         message.operations)
            elif isinstance(message, PackedVisitedBatch):
                record.conn.send(service.insert_packed(message))
            elif isinstance(message, VisitedBatch):
                flags = service.insert_batch(message.entries)
                record.conn.send(VisitedReply(message.sequence, tuple(flags)))
            elif isinstance(message, Checkpoint):
                lease = leases.get(record.worker_id)
                if lease is not None and lease.unit.index == message.unit_index:
                    lease.checkpoint = message.document
            elif isinstance(message, UnitDone):
                unit_result = message.result
                lease = leases.get(record.worker_id)
                if lease is not None and lease.unit.index == unit_result.index:
                    leases.pop(record.worker_id)
                record.units_completed += 1
                record.operations += unit_result.operations
                record.sim_time += unit_result.sim_time
                if record.worker_id in wall_started:
                    record.wall_time += now - wall_started.pop(record.worker_id)
                if unit_result.index not in results:
                    results[unit_result.index] = unit_result
                    if self.on_unit_done is not None:
                        self.on_unit_done(unit_result)

        while len(results) < len(units):
            connections = [record.conn for record in live()]
            if not connections:
                self._finish_inline(units, results, service, result)
                break
            ready = connection_wait(connections, timeout=self.poll_interval)
            for conn in ready:
                record = next(r for r in live() if r.conn is conn)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    recover(record)
                    continue
                handle(record, message)
            now = realtime.now()
            for record in live():
                lease = leases.get(record.worker_id)
                if not record.process.is_alive():
                    recover(record)  # died between heartbeats (e.g. SIGKILL)
                elif lease is not None and now > lease.deadline:
                    recover(record)  # alive but silent past the lease

        result.unit_results = list(results.values())
        # final per-worker wall accounting for workers still mid-request
        now = realtime.now()
        for worker_id, started in list(wall_started.items()):
            by_id[worker_id].wall_time += now - started

    def _finish_inline(self, units: List[WorkUnit],
                       results: Dict[int, UnitResult],
                       service: VisitedStateService,
                       result: DistResult) -> None:
        """The whole fleet is gone: complete the frontier in-process."""
        sink = _ServiceSink(service)
        config = self.config
        for unit in units:
            if unit.index in results:
                continue
            results[unit.index] = run_unit(
                self.spec, unit, "coordinator", config, sink)
            result.inline_units += 1
            if self.on_unit_done is not None:
                self.on_unit_done(results[unit.index])

    def _shutdown_fleet(self, records: List[WorkerRecord]) -> None:
        for record in records:
            if not record.alive:
                continue
            try:
                record.conn.send(Shutdown())
            except (OSError, BrokenPipeError):
                pass
        for record in records:
            if record.process.is_alive():
                record.process.join(timeout=2.0)
            if record.process.is_alive():
                record.process.terminate()
                record.process.join(timeout=1.0)
            try:
                record.conn.close()
            except OSError:
                pass
