"""The shared visited-state service (coordinator side).

One authoritative :class:`~repro.mc.hashtable.VisitedStateTable` backs
the whole fleet; workers talk to it through batched insert RPCs
(:class:`~repro.dist.protocol.VisitedBatch`).  Keeping the store shared
is what lets the merged run report a true union -- workers' duplicated
territory is detected here instead of inflating the state count -- and
is the repro-side answer to "Reducing State Explosion for Software Model
Checking"'s observation that a shared visited set stops workers
re-exploring each other's ground.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.mc.hashtable import VisitedStateTable
from repro.mc.persistence import snapshot_from_document


class VisitedStateService:
    """Answers batched insert/lookup requests against one global table."""

    def __init__(self, table: Optional[VisitedStateTable] = None):
        self.table = table if table is not None else VisitedStateTable()
        self.batches_served = 0
        self.hashes_received = 0
        #: hashes some *other* worker had already contributed
        self.cross_worker_duplicates = 0
        self.snapshots_merged = 0

    # ------------------------------------------------------------- inserts --
    def insert_batch(self, entries: Sequence[Tuple[str, int]]) -> List[bool]:
        """Insert ``(hash, depth)`` pairs; return per-entry ``is_new`` flags.

        Entries arrive in the worker's (deterministic) discovery order;
        only membership matters for the merge, so the table's content is
        interleaving-independent even though its insertion order is not.
        """
        flags: List[bool] = []
        for state_hash, depth in entries:
            is_new, _ = self.table.visit(state_hash, int(depth))
            if not is_new:
                self.cross_worker_duplicates += 1
            flags.append(is_new)
        self.batches_served += 1
        self.hashes_received += len(entries)
        return flags

    def lookup_batch(self, hashes: Sequence[str]) -> List[bool]:
        """Membership-only RPC (no insert); True = globally visited."""
        return [state_hash in self.table for state_hash in hashes]

    # ----------------------------------------------------------- snapshots --
    def import_snapshot(self, document: Dict[str, Any]) -> int:
        """Merge a persistence-format snapshot (v1 or v2) into the table.

        Used for a crashed worker's last shipped checkpoint and for
        resuming a whole distributed campaign from a state file.  Returns
        how many hashes were new; merging is idempotent, so replaying a
        checkpoint whose unit later re-runs in full is harmless (the
        checkpoint's states are a prefix of the deterministic re-run).
        """
        snapshot = snapshot_from_document(document)
        added = self.table.import_seen(snapshot.visited.export_seen())
        self.snapshots_merged += 1
        return added

    def __len__(self) -> int:
        return len(self.table)
