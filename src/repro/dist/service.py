"""The shared visited-state service (coordinator side).

One authoritative :class:`~repro.mc.hashtable.VisitedStateTable` backs
the whole fleet; workers talk to it through batched insert RPCs
(:class:`~repro.dist.protocol.VisitedBatch`).  Keeping the store shared
is what lets the merged run report a true union -- workers' duplicated
territory is detected here instead of inflating the state count -- and
is the repro-side answer to "Reducing State Explosion for Software Model
Checking"'s observation that a shared visited set stops workers
re-exploring each other's ground.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dist.protocol import (
    PackedVisitedBatch,
    PackedVisitedReply,
    pack_flags,
)
from repro.mc.hashtable import AbstractVisitedTable, StateKey
from repro.mc.persistence import snapshot_from_document
from repro.mc.statestore import make_store, merge_into


class VisitedStateService:
    """Answers batched insert/lookup requests against one global table.

    ``store`` picks the authoritative table's kind (the
    :mod:`repro.mc.statestore` spec grammar): with a compacted store the
    workers ship integer fingerprints instead of hex strings, shrinking
    both the wire traffic and the coordinator's memory.  ``store_seed``
    must match the workers' local stores so fingerprints agree.
    """

    def __init__(self, table: Optional[AbstractVisitedTable] = None,
                 store: str = "exact", store_seed: int = 0):
        if table is not None:
            self.table = table
        else:
            self.table = make_store(store, seed=store_seed)
        self.batches_served = 0
        self.hashes_received = 0
        #: hashes some *other* worker had already contributed
        self.cross_worker_duplicates = 0
        self.snapshots_merged = 0

    # ------------------------------------------------------------- inserts --
    def insert_batch(self, entries: Sequence[Tuple[StateKey, int]]) -> List[bool]:
        """Insert ``(key, depth)`` pairs; return per-entry ``is_new`` flags.

        Keys are whatever the store's ``wire_key`` produces: full hex
        digests for the exact table, compact integer fingerprints for the
        memory-bounded stores.  Entries arrive in the worker's
        (deterministic) discovery order; only membership matters for the
        merge, so the table's content is interleaving-independent even
        though its insertion order is not.
        """
        flags = self.table.visit_many(entries)
        self.cross_worker_duplicates += len(flags) - sum(flags)
        self.batches_served += 1
        self.hashes_received += len(flags)
        return flags

    def insert_packed(self, batch: PackedVisitedBatch) -> PackedVisitedReply:
        """Struct-packed insert: decode once, bulk-visit, bit-pack flags.

        The packed path is the RPC data plane's fast lane -- one opaque
        byte payload in, one bit array out, one :meth:`visit_many` call
        against the store.
        """
        flags = self.insert_batch(batch.entries())
        return PackedVisitedReply(sequence=batch.sequence, count=len(flags),
                                  flag_bits=pack_flags(flags))

    def lookup_batch(self, hashes: Sequence[StateKey]) -> List[bool]:
        """Membership-only RPC (no insert); True = globally visited."""
        return [state_hash in self.table for state_hash in hashes]

    # ----------------------------------------------------------- snapshots --
    def import_snapshot(self, document: Dict[str, Any]) -> int:
        """Merge a persistence-format snapshot (v1/v2/v3) into the table.

        Used for a crashed worker's last shipped checkpoint and for
        resuming a whole distributed campaign from a state file.  Returns
        how many hashes were new; merging is idempotent, so replaying a
        checkpoint whose unit later re-runs in full is harmless (the
        checkpoint's states are a prefix of the deterministic re-run).
        v3 (lossy-store) snapshots merge natively -- bit arrays OR
        together, fingerprint maps union -- provided the snapshot's store
        parameters match the service's.
        """
        snapshot = snapshot_from_document(document)
        added = merge_into(self.table, snapshot.visited)
        self.snapshots_merged += 1
        return added

    def __len__(self) -> int:
        return len(self.table)
