"""Picklable run descriptions: rebuild an MCFS harness in any process.

A live :class:`~repro.core.mcfs.MCFS` holds open devices, kernels, and
FUSE servers -- none of which survive a trip through ``pickle``.  The
distributed runtime therefore ships a :class:`CheckSpec` (plain names
and numbers) to each worker, which rebuilds its own harness locally,
exactly the way the CLI builds one from command-line flags.  The CLI
shares this registry so ``repro check`` and a worker constructing the
same spec produce identical harnesses.

The spec also fixes the **work partition**: :meth:`CheckSpec.work_units`
derives a list of diversified, self-contained exploration units (seeded
like swarm members) whose count and parameters depend only on the spec
-- never on the worker fleet -- which is what makes the merged result
independent of worker count and scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.clock import SimClock
from repro.mc.strategies import (
    IoctlStrategy,
    NoRemountStrategy,
    RemountStrategy,
    VfsCheckpointStrategy,
    VMSnapshotStrategy,
)

KB = 1024
MB = 1024 * KB

FILESYSTEMS = ("ext2", "ext4", "xfs", "jffs2", "verifs1", "verifs2")
#: kernel file systems get the remount strategy by default; VeriFS ioctl
KERNEL_FS = ("ext2", "ext4", "xfs", "jffs2")
STRATEGIES = {
    "remount": RemountStrategy,
    "no-remount": NoRemountStrategy,
    "vfs-api": VfsCheckpointStrategy,
    "ioctl": IoctlStrategy,
    "vm-snapshot": VMSnapshotStrategy,
}

#: the swarm seed stride (a prime, so diversified seeds never collide)
SEED_STRIDE = 7919


def add_filesystem_by_name(mcfs, clock: SimClock, name: str, label: str,
                           strategy_name: Optional[str] = None,
                           verifs_bugs=None) -> None:
    """Register file system ``name`` on ``mcfs`` (the CLI/worker registry)."""
    from repro.fs import (
        Ext2FileSystemType,
        Ext4FileSystemType,
        Jffs2FileSystemType,
        XfsFileSystemType,
    )
    from repro.storage import RAMBlockDevice
    from repro.storage.mtd import MTDDevice
    from repro.verifs import VeriFS1, VeriFS2

    strategy = STRATEGIES[strategy_name]() if strategy_name else None
    bugs = verifs_bugs or []
    if name == "verifs1":
        mcfs.add_verifs(label, VeriFS1(bugs=bugs), strategy=strategy)
    elif name == "verifs2":
        mcfs.add_verifs(label, VeriFS2(bugs=bugs), strategy=strategy)
    elif name == "ext2":
        mcfs.add_block_filesystem(label, Ext2FileSystemType(),
                                  RAMBlockDevice(256 * KB, clock=clock, name=label),
                                  strategy=strategy)
    elif name == "ext4":
        mcfs.add_block_filesystem(label, Ext4FileSystemType(),
                                  RAMBlockDevice(256 * KB, clock=clock, name=label),
                                  strategy=strategy)
    elif name == "xfs":
        mcfs.add_block_filesystem(label, XfsFileSystemType(),
                                  RAMBlockDevice(16 * MB, clock=clock, name=label),
                                  strategy=strategy)
    elif name == "jffs2":
        mcfs.add_block_filesystem(label, Jffs2FileSystemType(),
                                  MTDDevice(256 * KB, clock=clock, name=label),
                                  strategy=strategy)
    else:
        raise ValueError(f"unknown file system {name!r}; "
                         f"expected one of {', '.join(FILESYSTEMS)}")


def unique_labels(names: List[str]) -> List[str]:
    """Disambiguate repeated fs names (``ext4 ext4`` -> ``ext4 ext42``)."""
    labels: List[str] = []
    for name in names:
        label = name
        suffix = 2
        while label in labels:
            label = f"{name}{suffix}"
            suffix += 1
        labels.append(label)
    return labels


@dataclass(frozen=True)
class WorkUnit:
    """One self-contained exploration: a seeded random walk with bounds.

    Units are the grain of distribution: deterministic in isolation
    (fresh file systems, own simulated clock, fixed seed and budgets),
    so any worker -- or a re-issued lease after a crash -- produces the
    identical per-unit result.
    """

    index: int
    seed: int
    max_depth: int
    max_operations: int
    backtrack_probability: float = 0.25
    #: input profile this unit explores with (fleet members diversify by
    #: profile as well as seed; fixed by the spec, not the fleet)
    input_profile: str = "uniform"


@dataclass(frozen=True)
class CheckSpec:
    """A complete, picklable description of a distributed checking run."""

    filesystems: Tuple[str, ...]
    pool: str = "default"
    strategy: Optional[str] = None
    #: None = auto (extended ops unless verifs1 participates)
    include_extended: Optional[bool] = None
    equalize: bool = False
    voting: bool = False
    fsck_every: Optional[int] = None
    #: number of work units; fixed by the spec (NOT the worker count) so
    #: the merged result is identical for any fleet size
    units: int = 8
    base_seed: int = 1
    unit_operations: int = 400
    max_depth: int = 12
    backtrack_probability: float = 0.25
    #: VeriFS bug ids injected into the *last* file system (which must
    #: then be a verifs); lets distributed campaigns hunt a known bug
    verifs_bugs: Tuple[str, ...] = ()
    #: visited-state store spec (``exact | hc[:bytes] | bitstate[:bits,k]
    #: | tiered[:hot]``); workers build their local tables from it and
    #: the coordinator's service matches on the same fingerprints, so
    #: compact wire keys agree fleet-wide (see :mod:`repro.mc.statestore`)
    state_store: str = "exact"
    #: random mode: hash + cross-compare abstract states only every N
    #: operations (1 = the classic per-operation check).  N > 1 trades
    #: detection latency for throughput -- and because detection is
    #: delayed, the counterexample trails it produces carry long
    #: operation logs, which is what the trail minimizer is for.
    state_check_every: int = 1
    #: distributed data plane for visited-state traffic: ``auto``
    #: resolves to sharded shared-memory segments
    #: (:mod:`repro.mc.shardmem`) when the platform supports them
    #: (fork start method, ``multiprocessing.shared_memory``, and a
    #: non-tiered store) and falls back to the batched pipe RPC plane
    #: otherwise; ``shm``/``rpc`` force a plane.  The plane never
    #: changes *what* is found -- only how discoveries travel.
    data_plane: str = "auto"
    #: fingerprint-space shards per worker segment on the shm plane (a
    #: pure function of each key, so the merged union is shard-count
    #: invariant)
    shards: int = 4
    #: per-state cost profiling (:mod:`repro.mc.perf`): every unit
    #: reports wall time in abstraction-walk / fingerprint / ship /
    #: snapshot-restore buckets, merged campaign-wide.  Measurement
    #: only -- never changes what the fleet finds
    profile: bool = False
    #: input-exploration profile for every unit
    #: (:mod:`repro.workload.profile` grammar)
    input_profile: str = "uniform"
    #: when non-empty, unit ``i`` explores with ``profile_rotation[i %
    #: len]`` instead of ``input_profile`` -- fleet members diversify by
    #: input profile as well as seed.  A function of the unit index only,
    #: so merged fingerprints stay independent of fleet size.
    profile_rotation: Tuple[str, ...] = ()

    def __post_init__(self):
        if len(self.filesystems) < 2:
            raise ValueError("a check needs at least two file systems")
        if self.units < 1:
            raise ValueError("a run needs at least one work unit")
        for name in self.filesystems:
            if name not in FILESYSTEMS:
                raise ValueError(f"unknown file system {name!r}")
        if self.data_plane not in ("auto", "shm", "rpc"):
            raise ValueError(f"unknown data plane {self.data_plane!r}; "
                             f"expected auto | shm | rpc")
        if self.shards < 1:
            raise ValueError("the shm plane needs at least one shard")
        from repro.mc.statestore import parse_store_spec

        parse_store_spec(self.state_store)  # fail fast on a bad spec
        from repro.workload.profile import parse_profile

        parse_profile(self.input_profile)
        for spec in self.profile_rotation:
            parse_profile(spec)

    # ------------------------------------------------------- serialisation --
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (tuples become lists); trail files embed this."""
        document: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            document[spec_field.name] = (
                list(value) if isinstance(value, tuple) else value
            )
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "CheckSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Unknown keys are ignored and missing keys fall back to the
        dataclass defaults, so trail files survive spec evolution in
        both directions.
        """
        known = {spec_field.name for spec_field in fields(cls)}
        kwargs = {key: value for key, value in document.items()
                  if key in known}
        for name in ("filesystems", "verifs_bugs", "profile_rotation"):
            if name in kwargs and kwargs[name] is not None:
                kwargs[name] = tuple(kwargs[name])
        return cls(**kwargs)

    # ------------------------------------------------------------- harness --
    def build_mcfs(self):
        """Construct a fresh MCFS harness for this spec (any process)."""
        from repro.core.mcfs import MCFS, MCFSOptions
        from repro.workload import preset

        clock = SimClock()
        extended = self.include_extended
        if extended is None:
            extended = all(name != "verifs1" for name in self.filesystems)
        options = MCFSOptions(
            include_extended_operations=extended,
            pool=preset(self.pool),
            input_profile=self.input_profile,
            equalize_free_space=self.equalize,
            majority_voting=self.voting,
            fsck_every=self.fsck_every,
            fsck_max_workers=1,  # workers must not nest their own pools
            state_store=self.state_store,
            state_check_every=self.state_check_every,
            profile=self.profile,
            # one fleet-wide store seed: every worker's fingerprints must
            # match the service's, so the spec's base seed is used (swarm
            # diversification is a *classic*-mode technique, not a
            # shared-store one)
            store_seed=self.base_seed,
        )
        mcfs = MCFS(clock, options)
        labels = unique_labels(list(self.filesystems))
        last = len(self.filesystems) - 1
        for position, (name, label) in enumerate(zip(self.filesystems, labels)):
            bugs = None
            if position == last and self.verifs_bugs:
                from repro.verifs import VeriFSBug

                bugs = [VeriFSBug(value) for value in self.verifs_bugs]
            add_filesystem_by_name(mcfs, clock, name, label, self.strategy,
                                   verifs_bugs=bugs)
        mcfs.spec = self
        return mcfs

    # ------------------------------------------------------------ partition --
    def unit_profile(self, index: int) -> str:
        """The input profile unit ``index`` explores with."""
        if self.profile_rotation:
            return self.profile_rotation[index % len(self.profile_rotation)]
        return self.input_profile

    def work_units(self) -> List[WorkUnit]:
        """The deterministic unit list (seeds and depth bounds like swarm)."""
        return [
            WorkUnit(
                index=index,
                seed=self.base_seed + index * SEED_STRIDE,
                max_depth=self.max_depth + (index % 3),
                max_operations=self.unit_operations,
                backtrack_probability=self.backtrack_probability,
                input_profile=self.unit_profile(index),
            )
            for index in range(self.units)
        ]
