"""Worker process: runs leased work units and streams its discoveries.

A worker is a plain loop -- request a unit, run it, report it -- with
three side channels woven through the explorer's sample hook (which
fires every ``heartbeat_operations`` explored operations):

* **heartbeats** keep the coordinator's lease on the current unit alive;
* **visited batches** flush locally-new state hashes to the shared
  service (suppressed by the exact LRU of already-shipped hashes);
* **checkpoints** ship a :mod:`repro.mc.persistence` v2 snapshot of the
  current unit's partial table, so a SIGKILL'd worker's knowledge
  survives even though the re-issued unit deterministically re-runs.

The same unit runner also serves the coordinator's inline fallback (when
the whole fleet has died) through the :class:`ResultSink` indirection:
a :class:`PipeSink` speaks the wire protocol, a local sink calls the
service directly.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.dist import realtime
from repro.dist.bloom import BloomFilter, LRUSet
from repro.dist.client import ShippingVisitedTable
from repro.dist.protocol import (
    Checkpoint,
    Heartbeat,
    Hello,
    NoMoreWork,
    Shutdown,
    UnitDone,
    UnitResult,
    VisitedBatch,
    VisitedReply,
    Wait,
    WorkGrant,
    WorkRequest,
)
from repro.dist.spec import CheckSpec, WorkUnit
from repro.mc.persistence import snapshot_document
from repro.mc.statestore import make_store


@dataclass
class WorkerConfig:
    """Tunables every worker receives at spawn time."""

    #: sample-hook period: heartbeat + batch flush every N operations
    heartbeat_operations: int = 100
    #: ship a persistence-v2 checkpoint every N operations
    checkpoint_operations: int = 400
    #: visited-batch size before an eager flush
    batch_size: int = 64
    #: exact LRU of shipped hashes (suppresses re-sends)
    lru_capacity: int = 1 << 16
    #: Bloom summary of service-confirmed hashes
    bloom_bits: int = 1 << 17
    #: fault injection: SIGKILL ourselves after this many operations
    #: (counted across the whole worker session); None disables
    chaos_kill_after_operations: Optional[int] = None


class ResultSink:
    """Where a running unit sends its side-channel traffic."""

    def ship_batch(self, entries: List[Tuple[str, int]]) -> None:
        raise NotImplementedError

    def heartbeat(self, unit_index: int, operations: int) -> None:
        raise NotImplementedError

    def checkpoint(self, unit_index: int, document: Dict[str, Any]) -> None:
        raise NotImplementedError

    def drain(self) -> None:
        """Process any pending replies (non-blocking)."""


class PipeSink(ResultSink):
    """Speaks the wire protocol over the worker's pipe connection."""

    def __init__(self, conn, worker_id: str, bloom: BloomFilter):
        self.conn = conn
        self.worker_id = worker_id
        self.bloom = bloom
        self._sequence = 0
        self._pending: Dict[int, Tuple[Tuple[str, int], ...]] = {}
        self.confirmed_cross_duplicates = 0

    def ship_batch(self, entries: List[Tuple[str, int]]) -> None:
        self._sequence += 1
        batch = tuple(entries)
        self._pending[self._sequence] = batch
        self.conn.send(VisitedBatch(self.worker_id, self._sequence, batch))

    def heartbeat(self, unit_index: int, operations: int) -> None:
        self.conn.send(Heartbeat(self.worker_id, unit_index, operations))

    def checkpoint(self, unit_index: int, document: Dict[str, Any]) -> None:
        self.conn.send(Checkpoint(self.worker_id, unit_index, document))

    def drain(self) -> None:
        while self.conn.poll(0):
            self.handle(self.conn.recv())

    def handle(self, message) -> None:
        """Fold one coordinator message back into local state."""
        if isinstance(message, VisitedReply):
            entries = self._pending.pop(message.sequence, ())
            for (state_hash, _depth), was_new in zip(entries,
                                                     message.new_flags):
                self.bloom.add(state_hash)
                if not was_new:
                    self.confirmed_cross_duplicates += 1


def run_unit(spec: CheckSpec, unit: WorkUnit, worker_id: str,
             config: WorkerConfig, sink: ResultSink,
             shipped_lru: Optional[LRUSet] = None,
             global_bloom: Optional[BloomFilter] = None,
             session_operations: int = 0) -> UnitResult:
    """Execute one work unit to completion; deterministic in isolation.

    ``session_operations`` is the operation count the worker completed in
    earlier units (chaos fault injection triggers on the session total).
    """
    mcfs = spec.build_mcfs()
    # the local store mirrors the service's spec (same kind, same seed),
    # so the wire keys the two sides compute agree; for compacted stores
    # those keys are small integers instead of 32-char hex strings
    store_spec = getattr(spec, "state_store", "exact")
    local = make_store(store_spec, seed=spec.base_seed)
    table = ShippingVisitedTable(
        ship=sink.ship_batch,
        local=local,
        shipped_lru=shipped_lru,
        global_bloom=global_bloom,
        batch_size=config.batch_size,
    )
    last_checkpoint = {"operations": 0}

    def tick(stats) -> None:
        if (config.chaos_kill_after_operations is not None
                and session_operations + stats.operations
                >= config.chaos_kill_after_operations):
            os.kill(os.getpid(), signal.SIGKILL)  # fault injection: die hard
        table.flush()
        sink.heartbeat(unit.index, stats.operations)
        if (stats.operations - last_checkpoint["operations"]
                >= config.checkpoint_operations):
            last_checkpoint["operations"] = stats.operations
            sink.checkpoint(unit.index, snapshot_document(
                table.local, operations_completed=stats.operations,
                seed=unit.seed, worker_id=worker_id,
            ))
        sink.drain()

    wall_start = realtime.now()
    result = mcfs.run_random(
        max_operations=unit.max_operations,
        seed=unit.seed,
        max_depth=unit.max_depth,
        backtrack_probability=unit.backtrack_probability,
        sample_every=config.heartbeat_operations,
        sample_hook=tick,
        visited=table,
    )
    table.flush()
    return UnitResult(
        index=unit.index,
        seed=unit.seed,
        worker_id=worker_id,
        operations=result.operations,
        transitions=result.stats.transitions,
        unique_states=result.stats.unique_states,
        revisited_states=result.stats.revisited_states,
        sim_time=result.sim_time,
        wall_time=realtime.now() - wall_start,
        stopped_reason=result.stats.stopped_reason,
        violation=result.report.to_dict() if result.report else None,
        shipped_hashes=table.shipped_hashes,
        suppressed_hashes=table.suppressed_hashes,
        probable_cross_duplicates=table.probable_cross_duplicates,
        omission_possible=table.stats.omission_possible,
        omission_probability=table.stats.omission_probability,
        bytes_snapshotted=result.bytes_snapshotted,
        bytes_restored=result.bytes_restored,
        logical_snapshot_bytes=result.logical_snapshot_bytes,
    )


def worker_main(conn, spec: CheckSpec, worker_id: str,
                config: WorkerConfig) -> None:
    """Process entry point: the request/run/report loop."""
    try:
        _worker_loop(conn, spec, worker_id, config)
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):
        pass  # coordinator went away (or aborted); nothing to clean up
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _worker_loop(conn, spec: CheckSpec, worker_id: str,
                 config: WorkerConfig) -> None:
    conn.send(Hello(worker_id, os.getpid()))
    shipped_lru = LRUSet(config.lru_capacity)
    global_bloom = BloomFilter(config.bloom_bits)
    sink = PipeSink(conn, worker_id, global_bloom)
    session_operations = 0
    while True:
        conn.send(WorkRequest(worker_id))
        message = conn.recv()
        # replies to earlier batches may arrive ahead of the grant
        while isinstance(message, (VisitedReply, Heartbeat)):
            sink.handle(message)
            message = conn.recv()
        if isinstance(message, Wait):
            realtime.sleep(message.seconds)
            continue
        if isinstance(message, (NoMoreWork, Shutdown)):
            return
        if not isinstance(message, WorkGrant):
            continue  # unknown message: ignore and re-request
        result = run_unit(
            spec, message.unit, worker_id, config, sink,
            shipped_lru=shipped_lru, global_bloom=global_bloom,
            session_operations=session_operations,
        )
        session_operations += result.operations
        conn.send(UnitDone(worker_id, result))
