"""Worker process: runs leased work units and streams its discoveries.

A worker is a plain loop -- request a unit, run it, report it -- with
three side channels woven through the explorer's sample hook (which
fires every ``heartbeat_operations`` explored operations):

* **heartbeats** keep the coordinator's lease on the current unit alive;
* **visited batches** flush locally-new state hashes to the shared
  service (suppressed by the exact LRU of already-shipped hashes);
* **checkpoints** ship a :mod:`repro.mc.persistence` v2 snapshot of the
  current unit's partial table, so a SIGKILL'd worker's knowledge
  survives even though the re-issued unit deterministically re-runs.

The same unit runner also serves the coordinator's inline fallback (when
the whole fleet has died) through the :class:`ResultSink` indirection:
a :class:`PipeSink` speaks the wire protocol, a local sink calls the
service directly.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.dist import realtime
from repro.dist.bloom import BloomFilter, LRUSet
from repro.dist.client import ShippingVisitedTable
from repro.dist.protocol import (
    Checkpoint,
    Heartbeat,
    Hello,
    NoMoreWork,
    PackedVisitedBatch,
    PackedVisitedReply,
    Shutdown,
    UnitDone,
    UnitResult,
    VisitedBatch,
    VisitedReply,
    Wait,
    WorkGrant,
    WorkRequest,
    pack_entries,
    packing_for_store,
)
from repro.dist.spec import CheckSpec, WorkUnit
from repro.mc.persistence import snapshot_document
from repro.mc.shardmem import ShardFull, ShardLayout, ShardSegment
from repro.mc.statestore import make_store


@dataclass
class WorkerConfig:
    """Tunables every worker receives at spawn time."""

    #: sample-hook period: heartbeat + batch flush every N operations
    heartbeat_operations: int = 100
    #: ship a persistence-v2 checkpoint every N operations
    checkpoint_operations: int = 400
    #: visited-batch size before an eager flush
    batch_size: int = 64
    #: exact LRU of shipped hashes (suppresses re-sends)
    lru_capacity: int = 1 << 16
    #: Bloom summary of service-confirmed hashes
    bloom_bits: int = 1 << 17
    #: fault injection: SIGKILL ourselves after this many operations
    #: (counted across the whole worker session); None disables
    chaos_kill_after_operations: Optional[int] = None
    #: shared-memory data plane (set by the coordinator when resolved):
    #: segment geometry, every worker's segment *name* (raw SharedMemory
    #: handles must never ride the wire -- workers reattach by name),
    #: and which slot is ours to write.  All defaults off = RPC plane.
    shm_layout: Optional[ShardLayout] = None
    shm_segments: Tuple[str, ...] = ()
    shm_slot: int = -1

    @property
    def shm_enabled(self) -> bool:
        return (self.shm_layout is not None and len(self.shm_segments) > 0
                and 0 <= self.shm_slot < len(self.shm_segments))


class ResultSink:
    """Where a running unit sends its side-channel traffic."""

    def ship_batch(self, entries: List[Tuple[str, int]]) -> None:
        raise NotImplementedError

    def heartbeat(self, unit_index: int, operations: int) -> None:
        raise NotImplementedError

    def checkpoint(self, unit_index: int, document: Dict[str, Any]) -> None:
        raise NotImplementedError

    def drain(self) -> None:
        """Process any pending replies (non-blocking)."""


class PipeSink(ResultSink):
    """Speaks the wire protocol over the worker's pipe connection.

    Batches ship struct-packed (:class:`PackedVisitedBatch`) whenever
    the campaign's wire keys fit the fixed-width packing -- hex digests
    and integer fingerprints both do -- falling back to the legacy
    tuple form for anything else (ad-hoc test keys).
    """

    def __init__(self, conn, worker_id: str, bloom: BloomFilter,
                 packing: Optional[Tuple[int, str]] = None):
        self.conn = conn
        self.worker_id = worker_id
        self.bloom = bloom
        self.packing = packing
        self._sequence = 0
        self._pending: Dict[int, Tuple[Tuple[str, int], ...]] = {}
        self.confirmed_cross_duplicates = 0

    def ship_batch(self, entries: List[Tuple[str, int]]) -> None:
        self._sequence += 1
        batch = tuple(entries)
        self._pending[self._sequence] = batch
        if self.packing is not None:
            key_bytes, key_form = self.packing
            try:
                payload = pack_entries(batch, key_bytes, key_form)
            except (ValueError, TypeError):
                pass  # unpackable keys: legacy tuple form below
            else:
                self.conn.send(PackedVisitedBatch(
                    self.worker_id, self._sequence, len(batch),
                    key_bytes, key_form, payload))
                return
        self.conn.send(VisitedBatch(self.worker_id, self._sequence, batch))

    def heartbeat(self, unit_index: int, operations: int) -> None:
        self.conn.send(Heartbeat(self.worker_id, unit_index, operations))

    def checkpoint(self, unit_index: int, document: Dict[str, Any]) -> None:
        self.conn.send(Checkpoint(self.worker_id, unit_index, document))

    def drain(self) -> None:
        while self.conn.poll(0):
            self.handle(self.conn.recv())

    def handle(self, message) -> None:
        """Fold one coordinator message back into local state."""
        if isinstance(message, (VisitedReply, PackedVisitedReply)):
            flags = (message.flags() if isinstance(message, PackedVisitedReply)
                     else message.new_flags)
            entries = self._pending.pop(message.sequence, ())
            for (state_hash, _depth), was_new in zip(entries, flags):
                self.bloom.add(state_hash)
                if not was_new:
                    self.confirmed_cross_duplicates += 1


class ShmSink(ResultSink):
    """Shared-memory data plane: publish to our segment, read the peers'.

    Control traffic (heartbeats) still rides the pipe; visited-state
    traffic becomes buffer stores into this worker's own single-writer
    :class:`~repro.mc.shardmem.ShardSegment` plus lock-free membership
    probes of the peers' segments.  Checkpoints are a no-op: the
    segment *is* the checkpoint -- it lives in the coordinator's
    address space and survives this worker's death, carrying strictly
    more knowledge than any periodic snapshot message could.

    A full shard overflows to the wrapped RPC sink, so a mis-sized
    segment degrades to the old plane instead of losing states.
    """

    def __init__(self, layout: ShardLayout, own: ShardSegment,
                 peers: List[ShardSegment], pipe: PipeSink):
        self.layout = layout
        self.own = own
        self.peers = peers  # excludes our own segment
        self.pipe = pipe
        #: published keys already present in some peer's segment at
        #: publish time (the shm analogue of the Bloom-probable count)
        self.peer_duplicates = 0
        self.published = 0
        self.overflowed = 0

    def ship_batch(self, entries: List[Tuple[str, int]]) -> None:
        key_of = self.layout.key_of
        insert = self.own.insert
        for wire_key, depth in entries:
            key = key_of(wire_key)
            try:
                is_new, _ = insert(key, depth)
            except ShardFull:
                self.overflowed += 1
                self.pipe.ship_batch([(wire_key, depth)])
                continue
            self.published += 1
            if is_new and any(peer.contains(key) for peer in self.peers):
                self.peer_duplicates += 1

    def heartbeat(self, unit_index: int, operations: int) -> None:
        self.pipe.heartbeat(unit_index, operations)

    def checkpoint(self, unit_index: int, document: Dict[str, Any]) -> None:
        pass  # the segment outlives us; there is nothing extra to ship

    def drain(self) -> None:
        self.pipe.drain()

    def handle(self, message) -> None:
        self.pipe.handle(message)


def run_unit(spec: CheckSpec, unit: WorkUnit, worker_id: str,
             config: WorkerConfig, sink: ResultSink,
             shipped_lru: Optional[LRUSet] = None,
             global_bloom: Optional[BloomFilter] = None,
             session_operations: int = 0) -> UnitResult:
    """Execute one work unit to completion; deterministic in isolation.

    ``session_operations`` is the operation count the worker completed in
    earlier units (chaos fault injection triggers on the session total).
    """
    mcfs = spec.build_mcfs()
    # per-unit input diversification: the unit's profile (a function of
    # the unit index only, via CheckSpec.unit_profile) overrides the
    # spec-wide default before the engine/catalog is built
    mcfs.options.input_profile = unit.input_profile
    profile = None
    ship = sink.ship_batch
    if getattr(mcfs.options, "profile", False):
        from repro.mc.perf import CostProfile

        profile = CostProfile()

        def ship(entries, _ship=sink.ship_batch, _profile=profile):
            return _profile.timed("ship", _ship, entries)

    # the local store mirrors the service's spec (same kind, same seed),
    # so the wire keys the two sides compute agree; for compacted stores
    # those keys are small integers instead of 32-char hex strings
    store_spec = getattr(spec, "state_store", "exact")
    local = make_store(store_spec, seed=spec.base_seed)
    table = ShippingVisitedTable(
        ship=ship,
        local=local,
        shipped_lru=shipped_lru,
        global_bloom=global_bloom,
        batch_size=config.batch_size,
    )
    last_checkpoint = {"operations": 0}

    def tick(stats) -> None:
        if (config.chaos_kill_after_operations is not None
                and session_operations + stats.operations
                >= config.chaos_kill_after_operations):
            os.kill(os.getpid(), signal.SIGKILL)  # fault injection: die hard
        table.flush()
        sink.heartbeat(unit.index, stats.operations)
        if (stats.operations - last_checkpoint["operations"]
                >= config.checkpoint_operations):
            last_checkpoint["operations"] = stats.operations
            sink.checkpoint(unit.index, snapshot_document(
                table.local, operations_completed=stats.operations,
                seed=unit.seed, worker_id=worker_id,
            ))
        sink.drain()

    peer_duplicates_before = getattr(sink, "peer_duplicates", 0)
    wall_start = realtime.now()
    result = mcfs.run_random(
        max_operations=unit.max_operations,
        seed=unit.seed,
        max_depth=unit.max_depth,
        backtrack_probability=unit.backtrack_probability,
        sample_every=config.heartbeat_operations,
        sample_hook=tick,
        visited=table,
        profile=profile,
    )
    table.flush()
    peer_duplicates = (getattr(sink, "peer_duplicates", 0)
                       - peer_duplicates_before)
    return UnitResult(
        index=unit.index,
        seed=unit.seed,
        worker_id=worker_id,
        operations=result.operations,
        transitions=result.stats.transitions,
        unique_states=result.stats.unique_states,
        revisited_states=result.stats.revisited_states,
        sim_time=result.sim_time,
        wall_time=realtime.now() - wall_start,
        stopped_reason=result.stats.stopped_reason,
        violation=result.report.to_dict() if result.report else None,
        shipped_hashes=table.shipped_hashes,
        suppressed_hashes=table.suppressed_hashes,
        probable_cross_duplicates=(table.probable_cross_duplicates
                                   + peer_duplicates),
        omission_possible=table.stats.omission_possible,
        omission_probability=table.stats.omission_probability,
        bytes_snapshotted=result.bytes_snapshotted,
        bytes_restored=result.bytes_restored,
        logical_snapshot_bytes=result.logical_snapshot_bytes,
        cost_profile=profile.to_dict() if profile is not None else None,
    )


def worker_main(conn, spec: CheckSpec, worker_id: str,
                config: WorkerConfig) -> None:
    """Process entry point: the request/run/report loop."""
    try:
        _worker_loop(conn, spec, worker_id, config)
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):
        pass  # coordinator went away (or aborted); nothing to clean up
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _worker_loop(conn, spec: CheckSpec, worker_id: str,
                 config: WorkerConfig) -> None:
    conn.send(Hello(worker_id, os.getpid()))
    shipped_lru = LRUSet(config.lru_capacity)
    global_bloom = BloomFilter(config.bloom_bits)
    try:
        packing = packing_for_store(getattr(spec, "state_store", "exact"))
    except (KeyError, ValueError):
        packing = None
    pipe_sink = PipeSink(conn, worker_id, global_bloom, packing=packing)
    sink: ResultSink = pipe_sink
    if config.shm_enabled:
        try:
            # untrack=False: forked workers share the coordinator's
            # resource tracker (see ShardSegment.attach)
            segments = [ShardSegment.attach(config.shm_layout, name,
                                            untrack=False)
                        for name in config.shm_segments]
        except Exception:
            segments = None  # segments gone (or non-fork spawn): RPC plane
        if segments is not None:
            own = segments[config.shm_slot]
            peers = [segment for index, segment in enumerate(segments)
                     if index != config.shm_slot]
            sink = ShmSink(config.shm_layout, own, peers, pipe_sink)
    session_operations = 0
    while True:
        conn.send(WorkRequest(worker_id))
        message = conn.recv()
        # replies to earlier batches may arrive ahead of the grant; a
        # reply that falls through this loop would trigger a duplicate
        # WorkRequest, and the coordinator would overwrite our lease
        # and lose the first granted unit (livelock: the unit is no
        # longer queued, leased, or resulted)
        while isinstance(message,
                         (VisitedReply, PackedVisitedReply, Heartbeat)):
            sink.handle(message)
            message = conn.recv()
        if isinstance(message, Wait):
            realtime.sleep(message.seconds)
            continue
        if isinstance(message, (NoMoreWork, Shutdown)):
            return
        if not isinstance(message, WorkGrant):
            continue  # unknown message: ignore and re-request
        result = run_unit(
            spec, message.unit, worker_id, config, sink,
            shipped_lru=shipped_lru, global_bloom=global_bloom,
            session_operations=session_operations,
        )
        session_operations += result.operations
        conn.send(UnitDone(worker_id, result))
