"""VFS interfaces implemented by every simulated file system.

A :class:`FileSystemType` knows how to format (``mkfs``) and mount a
device; mounting yields a :class:`MountedFileSystem` -- the driver instance
holding the file system's *in-memory* state (caches, tables, open maps).
The kernel talks to mounted file systems exclusively in terms of inode
numbers, like the real VFS.

The in-memory/on-disk split is the crux of the paper: the model checker
can snapshot the device image easily, but the MountedFileSystem object's
private state is invisible to it (section 3.1).  Unmounting flushes and
discards that state; remounting rebuilds it from disk -- the workaround of
section 3.2.  VeriFS instead checkpoints its own state via ioctls.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.errors import ENOTSUP, ENOTTY, FsError
from repro.kernel.stat import Dirent, StatResult, StatVFS


class FileSystemType(ABC):
    """A file-system driver: formats devices and produces mounted instances."""

    #: short name, e.g. "ext2", "xfs", "verifs1"
    name: str = "?"
    #: smallest device this fs can be formatted onto (bytes); None = any / no device
    min_device_size: Optional[int] = None
    #: paths (relative to the mount root) of special files/folders created by
    #: mkfs, e.g. ext's "lost+found".  MCFS puts these on its exception list.
    special_paths: Tuple[str, ...] = ()

    @abstractmethod
    def mkfs(self, device) -> None:
        """Write a fresh, empty file system onto ``device``."""

    @abstractmethod
    def mount(self, device, kernel=None) -> "MountedFileSystem":
        """Load the on-disk state and return a live driver instance."""


@dataclass
class Mount:
    """One entry in the kernel's mount table.

    Beyond the mount identity, the kernel keeps *dirty-path tracking*
    here: every mutating syscall records which fs-relative paths it
    touched since the abstraction function's last walk, so the walk can
    re-hash only what changed (the incremental-abstraction hot path).
    Three granularities, coarsest fallback first:

    * ``fully_dirty`` -- nothing can be trusted; the next walk is full.
      New mounts start fully dirty; restores and hard-link nlink fan-out
      (where the other link names are unknown) fall back to it.
    * ``dirty_paths`` -- the entry *and everything below it* changed
      (writes, truncates, renamed-over targets): evict and re-walk the
      subtree.
    * ``dirty_records`` -- only the entry's own attributes changed
      (chmod/chown/utimens/xattrs): re-stat without touching content or
      children.
    * ``dirty_parents`` -- a directory's *membership* changed (create,
      unlink, mkdir, rmdir, rename): reconcile its entry list and
      refresh its own record, leaving untouched children cached.

    ``change_generation`` bumps on every mark, so a walker can skip all
    work when nothing changed at all.  ``multilink_inos`` remembers file
    inodes that ever gained a second hard link: mutating one of their
    names changes the nlink visible at the *other* names, which the
    path-granular sets cannot express.
    """

    mountpoint: str
    fs: "MountedFileSystem"
    fstype: FileSystemType
    device: object = None
    mount_id: int = 0
    generation: int = 0  # bumped on each remount; stale-cache detection in tests
    fully_dirty: bool = True
    dirty_paths: Set[str] = field(default_factory=set)
    dirty_records: Set[str] = field(default_factory=set)
    dirty_parents: Set[str] = field(default_factory=set)
    multilink_inos: Set[int] = field(default_factory=set)
    change_generation: int = 0
    #: set after the fs answers ENOTSUP/ENOSYS to listxattr once: xattr
    #: support cannot appear mid-mount, so readers skip the round trip
    xattrs_unsupported: bool = False

    # -- dirty-path marking (called by the kernel's mutating syscalls) -----
    def mark_dirty_entry(self, rel_path: str) -> None:
        """Entry content changed: the subtree at ``rel_path`` must be
        re-walked."""
        self.change_generation += 1
        if rel_path == "/":
            self.mark_fully_dirty()
        elif not self.fully_dirty:
            self.dirty_paths.add(rel_path)

    def mark_dirty_record(self, rel_path: str) -> None:
        """Only the entry's own attributes changed (not content or
        membership): a re-stat suffices."""
        self.change_generation += 1
        if rel_path != "/" and not self.fully_dirty:
            self.dirty_records.add(rel_path)

    def mark_dirty_parent(self, rel_dir: str) -> None:
        """Directory membership changed: reconcile its entry list."""
        self.change_generation += 1
        if not self.fully_dirty:
            self.dirty_parents.add(rel_dir)

    def mark_fully_dirty(self) -> None:
        """Give up on path granularity: the next walk must be full."""
        self.change_generation += 1
        self.fully_dirty = True
        self.dirty_paths.clear()
        self.dirty_records.clear()
        self.dirty_parents.clear()

    def carry_dirty_from(self, previous: "Mount") -> None:
        """Adopt another mount's dirty state (clean remounts preserve
        the observable tree, so its tracking stays valid)."""
        self.fully_dirty = previous.fully_dirty
        self.dirty_paths = set(previous.dirty_paths)
        self.dirty_records = set(previous.dirty_records)
        self.dirty_parents = set(previous.dirty_parents)
        self.multilink_inos = set(previous.multilink_inos)
        self.change_generation = previous.change_generation + 1


class MountedFileSystem(ABC):
    """A mounted file-system instance (driver + in-memory state).

    All methods take/return inode numbers.  Implementations raise
    :class:`FsError` for POSIX failures.  ``ROOT_INO`` is the inode
    number of the mount root (per-driver constant).
    """

    ROOT_INO = 1

    # -- lifecycle ---------------------------------------------------------------
    @abstractmethod
    def sync(self) -> None:
        """Flush all dirty in-memory state to the backing store."""

    @abstractmethod
    def unmount(self) -> None:
        """Flush and discard in-memory state; the instance becomes dead."""

    # -- namespace ---------------------------------------------------------------
    @abstractmethod
    def lookup(self, dir_ino: int, name: str) -> int:
        """Return the inode number for ``name`` in directory ``dir_ino``.

        Raises ``ENOENT`` if absent, ``ENOTDIR`` if ``dir_ino`` is not a
        directory.
        """

    @abstractmethod
    def getattr(self, ino: int) -> StatResult:
        """Return the stat data of ``ino``."""

    @abstractmethod
    def getdents(self, dir_ino: int) -> List[Dirent]:
        """List directory entries excluding ``.`` and ``..``.

        Entry order is implementation-defined (this matters: MCFS must
        sort before comparing, section 3.4).
        """

    def getdents_attrs(self, dir_ino: int) -> List[Tuple[Dirent, StatResult]]:
        """List entries with their stat data in one call.

        The readdirplus composition: byte-identical to ``getdents``
        followed by per-entry ``getattr``, but a driver can satisfy it
        without a round trip per entry.  This default composes the two
        primitives, so every file system supports it.
        """
        return [(dirent, self.getattr(dirent.ino))
                for dirent in self.getdents(dir_ino)]

    @abstractmethod
    def create(self, dir_ino: int, name: str, mode: int, uid: int, gid: int) -> int:
        """Create a regular file; return its inode number."""

    @abstractmethod
    def mkdir(self, dir_ino: int, name: str, mode: int, uid: int, gid: int) -> int:
        """Create a directory; return its inode number."""

    @abstractmethod
    def unlink(self, dir_ino: int, name: str) -> None:
        """Remove a non-directory entry (dropping a link)."""

    @abstractmethod
    def rmdir(self, dir_ino: int, name: str) -> None:
        """Remove an empty directory."""

    # -- data --------------------------------------------------------------------
    @abstractmethod
    def read(self, ino: int, offset: int, length: int) -> bytes:
        """Read up to ``length`` bytes at ``offset`` (short read at EOF)."""

    @abstractmethod
    def write(self, ino: int, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset``; return bytes written."""

    @abstractmethod
    def truncate(self, ino: int, size: int) -> None:
        """Set the file size, zero-filling any newly exposed range."""

    # -- optional operations (drivers without support raise ENOTSUP) ---------------
    def rename(
        self, old_dir: int, old_name: str, new_dir: int, new_name: str
    ) -> None:
        raise FsError(ENOTSUP, f"{type(self).__name__} does not support rename")

    def link(self, ino: int, dir_ino: int, name: str) -> None:
        raise FsError(ENOTSUP, f"{type(self).__name__} does not support hard links")

    def symlink(
        self, dir_ino: int, name: str, target: str, uid: int, gid: int
    ) -> int:
        raise FsError(ENOTSUP, f"{type(self).__name__} does not support symlinks")

    def readlink(self, ino: int) -> str:
        raise FsError(ENOTSUP, f"{type(self).__name__} does not support symlinks")

    def setattr(
        self,
        ino: int,
        mode: Optional[int] = None,
        uid: Optional[int] = None,
        gid: Optional[int] = None,
        atime: Optional[float] = None,
        mtime: Optional[float] = None,
    ) -> StatResult:
        raise FsError(ENOTSUP, f"{type(self).__name__} does not support setattr")

    def setxattr(self, ino: int, key: str, value: bytes, flags: int = 0) -> None:
        raise FsError(ENOTSUP, f"{type(self).__name__} does not support xattrs")

    def getxattr(self, ino: int, key: str) -> bytes:
        raise FsError(ENOTSUP, f"{type(self).__name__} does not support xattrs")

    def listxattr(self, ino: int) -> List[str]:
        raise FsError(ENOTSUP, f"{type(self).__name__} does not support xattrs")

    def removexattr(self, ino: int, key: str) -> None:
        raise FsError(ENOTSUP, f"{type(self).__name__} does not support xattrs")

    def ioctl(self, ino: int, request: int, arg: object = None) -> object:
        """Driver-specific control; VeriFS implements checkpoint/restore here."""
        raise FsError(ENOTTY, f"{type(self).__name__} has no ioctl {request:#x}")

    @abstractmethod
    def statfs(self) -> StatVFS:
        """Return usage information (total/free blocks and inodes)."""

    # -- integrity helpers (used by tests and the corruption demos) ----------------
    def check_consistency(self) -> List[str]:
        """Return a list of consistency violations (empty = clean).

        Drivers override this with fsck-style checks: directory entries
        must point at allocated inodes, link counts must match, allocation
        bitmaps must agree with reachable data.  The cache-incoherency
        experiments use this to *demonstrate* corruption rather than
        asserting it abstractly.
        """
        return []
