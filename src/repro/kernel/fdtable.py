"""Open-file-descriptor table.

Open descriptors are *kernel* state: this is why the paper's MCFS cannot
issue a bare ``write`` in isolation when it unmounts between operations
(the fd would not survive the unmount), forcing the meta-operations
``create_file`` and ``write_file`` that open, act, and close in one step
(section 4).  The table enforces that invariant: unmounting with open
descriptors fails with ``EBUSY``, like the real kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import EBADF, EMFILE, FsError

# Open flags, matching <fcntl.h>.
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_ACCMODE = 0o3
O_CREAT = 0o100
O_EXCL = 0o200
O_TRUNC = 0o1000
O_APPEND = 0o2000
O_DIRECTORY = 0o200000


@dataclass
class OpenFile:
    """One open file description (shared position, flags, target inode)."""

    fd: int
    mount_id: int
    ino: int
    flags: int
    offset: int = 0
    path: str = ""  # the path used at open time (for reports only)
    #: fully-resolved fs-relative path, maintained by the kernel so
    #: fd-based writes can feed the mount's dirty-path tracking; renames
    #: of an ancestor rewrite it
    dirty_rel: str = ""

    @property
    def readable(self) -> bool:
        return (self.flags & O_ACCMODE) in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & O_ACCMODE) in (O_WRONLY, O_RDWR)

    @property
    def append(self) -> bool:
        return bool(self.flags & O_APPEND)


class FDTable:
    """Allocates and tracks file descriptors (lowest-free-fd semantics)."""

    def __init__(self, max_fds: int = 1024):
        self.max_fds = max_fds
        self._open: Dict[int, OpenFile] = {}

    def allocate(self, mount_id: int, ino: int, flags: int, path: str = "") -> OpenFile:
        fd = self._lowest_free_fd()
        entry = OpenFile(fd=fd, mount_id=mount_id, ino=ino, flags=flags, path=path)
        self._open[fd] = entry
        return entry

    def get(self, fd: int) -> OpenFile:
        entry = self._open.get(fd)
        if entry is None:
            raise FsError(EBADF, f"fd {fd} is not open")
        return entry

    def close(self, fd: int) -> OpenFile:
        entry = self._open.pop(fd, None)
        if entry is None:
            raise FsError(EBADF, f"fd {fd} is not open")
        return entry

    def open_fds_for_mount(self, mount_id: int):
        return [entry for entry in self._open.values() if entry.mount_id == mount_id]

    def open_count(self) -> int:
        return len(self._open)

    def _lowest_free_fd(self) -> int:
        # fds 0-2 are reserved for the imaginary stdio of the test process.
        for fd in range(3, self.max_fds):
            if fd not in self._open:
                return fd
        raise FsError(EMFILE, "file-descriptor table full")
