"""The simulated kernel: mount table, path walking, and syscalls.

The :class:`Kernel` exposes a POSIX-ish syscall surface (open/read/write/
mkdir/rename/...) over any number of mounted :class:`MountedFileSystem`
instances.  Path resolution goes through the dentry cache, timestamps come
from the shared :class:`SimClock`, and every syscall charges dispatch
overhead to the clock so that benchmark speeds reflect the modelled
system.

Design notes relevant to the paper:

* The dentry cache holds positive *and* negative entries and is only
  purged by unmount or by the explicit invalidation API
  (:meth:`Kernel.invalidate_entry` / :meth:`Kernel.invalidate_inode`,
  the analogues of ``fuse_lowlevel_notify_inval_entry/inode``).  A file
  system whose state is rolled back without telling the kernel exhibits
  exactly the ghost-EEXIST bug of section 6.
* Unmount refuses (``EBUSY``) while descriptors are open -- which is why
  MCFS needs the ``create_file``/``write_file`` meta-operations when it
  remounts between every step (section 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.clock import Cost, SimClock
from repro.errors import (
    EACCES,
    EBUSY,
    EEXIST,
    EINVAL,
    EISDIR,
    ELOOP,
    ENOENT,
    ENOTDIR,
    EROFS,
    EXDEV,
    FsError,
)
from repro.kernel.dcache import DentryCache, NEGATIVE
from repro.kernel.fdtable import (
    FDTable,
    O_ACCMODE,
    O_APPEND,
    O_CREAT,
    O_DIRECTORY,
    O_EXCL,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
    OpenFile,
)
from repro.kernel.stat import (
    DT_DIR,
    DT_LNK,
    DT_REG,
    DT_UNKNOWN,
    Dirent,
    S_IFDIR,
    S_IFLNK,
    S_IFMT,
    StatResult,
    StatVFS,
    mode_to_dtype,
)
from repro.kernel.vfs import FileSystemType, Mount, MountedFileSystem
from repro.util.paths import is_subpath, normalize_path, split_path

MAX_SYMLINK_DEPTH = 40

# Access-mode bits for access(2).
F_OK = 0
X_OK = 1
W_OK = 2
R_OK = 4


class Kernel:
    """A single simulated kernel instance."""

    def __init__(self, clock: Optional[SimClock] = None, uid: int = 0, gid: int = 0):
        self.clock = clock if clock is not None else SimClock()
        self.uid = uid
        self.gid = gid
        self.dcache = DentryCache()
        self.fdtable = FDTable()
        self._mounts: Dict[str, Mount] = {}
        self._next_mount_id = 1
        self.syscall_count = 0
        #: memo for _find_mount: path -> (mount, relative).  Pure
        #: mountpoint arithmetic, so entries stay valid until the mount
        #: table itself changes; mount()/umount() clear it.
        self._mount_cache: Dict[str, Tuple[Mount, str]] = {}

    # ------------------------------------------------------------------ mounts --
    def mount(self, fstype: FileSystemType, device, mountpoint: str) -> Mount:
        """Mount ``device`` (formatted as ``fstype``) at ``mountpoint``."""
        mountpoint = normalize_path(mountpoint)
        if mountpoint in self._mounts:
            raise FsError(EBUSY, f"{mountpoint} is already a mountpoint")
        for existing in self._mounts:
            if is_subpath(mountpoint, existing):
                raise FsError(EBUSY, f"{mountpoint} is inside mount {existing}")
        size_cost = (
            device.size_bytes * Cost.MOUNT_PER_BYTE if device is not None else 0.0
        )
        self.clock.charge(Cost.MOUNT_FIXED + size_cost, "mount")
        fs = fstype.mount(device, kernel=self)
        mount = Mount(
            mountpoint=mountpoint,
            fs=fs,
            fstype=fstype,
            device=device,
            mount_id=self._next_mount_id,
        )
        self._next_mount_id += 1
        self._mounts[mountpoint] = mount
        self._mount_cache.clear()
        return mount

    def umount(self, mountpoint: str) -> None:
        """Unmount, flushing the fs and purging all its kernel caches."""
        mountpoint = normalize_path(mountpoint)
        mount = self._mounts.get(mountpoint)
        if mount is None:
            raise FsError(EINVAL, f"{mountpoint} is not mounted")
        if self.fdtable.open_fds_for_mount(mount.mount_id):
            raise FsError(EBUSY, f"{mountpoint} has open file descriptors")
        self.clock.charge(Cost.UMOUNT_FIXED, "umount")
        mount.fs.unmount()
        self.dcache.invalidate_mount(mount.mount_id)
        del self._mounts[mountpoint]
        self._mount_cache.clear()

    def remount(self, mountpoint: str) -> Mount:
        """Unmount and immediately re-mount: the paper's coherency hammer.

        This is the *only* operation that fully guarantees no stale state
        remains in kernel memory (section 3.2).  It is also expensive --
        which is the whole point of the checkpoint/restore APIs.
        """
        mountpoint = normalize_path(mountpoint)
        mount = self._mounts.get(mountpoint)
        if mount is None:
            raise FsError(EINVAL, f"{mountpoint} is not mounted")
        generation = mount.generation
        fstype, device = mount.fstype, mount.device
        self.umount(mountpoint)
        new_mount = self.mount(fstype, device, mountpoint)
        new_mount.generation = generation + 1
        # a clean remount does not change the observable tree, so the
        # dirty-path tracking of the old mount stays valid
        new_mount.carry_dirty_from(mount)
        return new_mount

    def mounts(self) -> List[Mount]:
        return list(self._mounts.values())

    def mount_at(self, mountpoint: str) -> Mount:
        # mountpoints are stored normalised; callers almost always pass
        # the canonical string, so try the direct hit before normalising
        mount = self._mounts.get(mountpoint)
        if mount is None:
            mount = self._mounts.get(normalize_path(mountpoint))
            if mount is None:
                raise FsError(EINVAL, f"{mountpoint} is not mounted")
        return mount

    # ---------------------------------------------------------- cache control --
    def invalidate_entry(self, mount_id: int, parent_ino: int, name: str) -> None:
        """fuse_lowlevel_notify_inval_entry: drop one cached dentry."""
        self.dcache.invalidate_entry(mount_id, parent_ino, name)

    def invalidate_inode(self, mount_id: int, ino: int) -> None:
        """fuse_lowlevel_notify_inval_inode: drop cached dentries for an inode."""
        self.dcache.invalidate_inode(mount_id, ino)

    def invalidate_mount_caches(self, mount_id: int) -> None:
        """Drop every cached dentry of a mount (full invalidation).

        Callers invalidate because the fs state changed underneath the
        kernel (restores, rollbacks), so the dirty-path tracking cannot
        be trusted either: the next abstraction walk must be full.
        """
        self.dcache.invalidate_mount(mount_id)
        for mount in self._mounts.values():
            if mount.mount_id == mount_id:
                mount.mark_fully_dirty()
                break

    # ------------------------------------------------------------ path walking --
    def _find_mount(self, path: str) -> Tuple[Mount, str]:
        """Return the mount covering ``path`` and the fs-relative remainder."""
        cached = self._mount_cache.get(path)
        if cached is not None:
            return cached
        raw = path
        path = normalize_path(path)
        best: Optional[str] = None
        # mountpoints are stored normalised (mount() canonicalises them),
        # so the subpath test inlines to plain string comparisons
        for mountpoint in self._mounts:
            if (mountpoint == "/" or path == mountpoint
                    or path.startswith(mountpoint + "/")):
                if best is None or len(mountpoint) > len(best):
                    best = mountpoint
        if best is None:
            raise FsError(ENOENT, f"no file system mounted covering {path}")
        relative = path[len(best) :] if best != "/" else path
        result = (self._mounts[best], relative or "/")
        self._mount_cache[raw] = result
        return result

    def _lookup_child_typed(self, mount: Mount, dir_ino: int,
                            name: str) -> Tuple[int, int]:
        """One path-walk step, through the dentry cache.

        Returns ``(child_ino, d_type)``; ``d_type`` is ``DT_UNKNOWN``
        until some walk has fetched the child's attributes (the dcache
        then remembers the type for the dentry's lifetime, since an
        inode's file type never changes).
        """
        cached = self.dcache.get(mount.mount_id, dir_ino, name)
        if cached is NEGATIVE:
            raise FsError(ENOENT, name)
        if cached is not None:
            return cached  # type: ignore[return-value]
        try:
            ino = mount.fs.lookup(dir_ino, name)
        except FsError as exc:
            if exc.code == ENOENT:
                self.dcache.insert_negative(mount.mount_id, dir_ino, name)
            raise
        self.dcache.insert(mount.mount_id, dir_ino, name, ino)
        return ino, DT_UNKNOWN

    def _lookup_child(self, mount: Mount, dir_ino: int, name: str) -> int:
        return self._lookup_child_typed(mount, dir_ino, name)[0]

    def _child_dtype(self, mount: Mount, dir_ino: int, name: str,
                     child: int) -> int:
        """Fetch a dentry's missing d_type and remember it."""
        dtype = mode_to_dtype(mount.fs.getattr(child).st_mode)
        self.dcache.insert(mount.mount_id, dir_ino, name, child, dtype)
        return dtype

    def _walk(
        self, path: str, follow_last_symlink: bool = True, _depth: int = 0
    ) -> Tuple[Mount, int]:
        """Resolve ``path`` to ``(mount, inode)``, following symlinks."""
        mount, ino, _rel, _dtype = self._resolve_entry(
            path, follow_last_symlink, _depth)
        return mount, ino

    def _resolve(
        self, path: str, follow_last_symlink: bool = True, _depth: int = 0
    ) -> Tuple[Mount, int, str]:
        """Resolve ``path`` to ``(mount, inode, fs-relative resolved path)``.

        The returned relative path has every symlink expanded, so it is
        the canonical name the dirty-path tracking indexes by.
        """
        mount, ino, rel, _dtype = self._resolve_entry(
            path, follow_last_symlink, _depth)
        return mount, ino, rel

    def _resolve_entry(
        self, path: str, follow_last_symlink: bool = True, _depth: int = 0
    ) -> Tuple[Mount, int, str, int]:
        """Resolve ``path`` to ``(mount, inode, fs-relative path, d_type)``.

        A warm walk is pure dcache: each step's is-directory check and
        the symlink test read the cached d_type instead of issuing a
        ``getattr`` per component (twice, as the pre-d_type walker did).
        Only a cold dentry pays one ``getattr`` to learn its type.
        """
        if _depth > MAX_SYMLINK_DEPTH:
            raise FsError(ELOOP, path)
        mount, relative = self._find_mount(path)
        ino = mount.fs.ROOT_INO
        if relative == "/":
            return mount, ino, "/", DT_DIR
        components = relative[1:].split("/")
        walked = mount.mountpoint if mount.mountpoint != "/" else ""
        rel = ""
        dtype = DT_DIR  # a mount root is a directory by construction
        last = len(components) - 1
        for index, name in enumerate(components):
            if dtype != DT_DIR:
                raise FsError(ENOTDIR, walked or "/")
            child, child_type = self._lookup_child_typed(mount, ino, name)
            if child_type == DT_UNKNOWN:
                child_type = self._child_dtype(mount, ino, name, child)
            if child_type == DT_LNK and (index != last or follow_last_symlink):
                target = mount.fs.readlink(child)
                if target.startswith("/"):
                    base = target
                else:
                    base = (walked or "") + "/" + target
                rest = "/".join(components[index + 1 :])
                full = base + ("/" + rest if rest else "")
                return self._resolve_entry(full, follow_last_symlink, _depth + 1)
            walked += "/" + name
            rel += "/" + name
            ino = child
            dtype = child_type
        return mount, ino, rel, dtype

    def _walk_parent(self, path: str) -> Tuple[Mount, int, str, str]:
        """Resolve the parent directory of ``path``.

        Returns ``(mount, dir_ino, name, parent's fs-relative path)``.
        """
        parent, name = split_path(path)
        if not name:
            raise FsError(EINVAL, f"cannot take parent of {path!r}")
        mount, dir_ino, rel_dir, dtype = self._resolve_entry(parent)
        if dtype != DT_DIR:
            raise FsError(ENOTDIR, parent)
        return mount, dir_ino, name, rel_dir

    @staticmethod
    def _child_rel(rel_dir: str, name: str) -> str:
        return (rel_dir if rel_dir != "/" else "") + "/" + name

    def _mark_inode_entry(self, mount: Mount, rel: str, ino: int) -> None:
        """Content under the name ``rel`` (inode ``ino``) changed."""
        if ino in mount.multilink_inos:
            # the same content is visible under other names we don't know
            mount.mark_fully_dirty()
        else:
            mount.mark_dirty_entry(rel)

    def _mark_inode_record(self, mount: Mount, rel: str, ino: int) -> None:
        """Attributes of the inode named ``rel`` changed (not content)."""
        if ino in mount.multilink_inos:
            mount.mark_fully_dirty()
        else:
            mount.mark_dirty_record(rel)

    def _sys(self) -> None:
        # hand-inlined clock.charge: this runs once per syscall, and the
        # constant is non-negative by construction
        self.syscall_count += 1
        clock = self.clock
        clock.now += Cost.SYSCALL
        try:
            clock.by_category["syscall"] += Cost.SYSCALL
        except KeyError:
            clock.by_category["syscall"] = Cost.SYSCALL

    # ---------------------------------------------------------------- syscalls --
    # Each syscall mirrors its POSIX namesake; failures raise FsError with
    # the POSIX errno so the MCFS integrity checker can compare outcomes.

    def open(self, path: str, flags: int = O_RDONLY, mode: int = 0o644) -> int:
        self._sys()
        path = normalize_path(path)
        if flags & O_CREAT:
            mount, dir_ino, name, rel_dir = self._walk_parent(path)
            rel = self._child_rel(rel_dir, name)
            existing: Optional[int]
            try:
                existing, dtype = self._lookup_child_typed(mount, dir_ino, name)
            except FsError as exc:
                if exc.code != ENOENT:
                    raise
                existing = None
            if existing is not None:
                if flags & O_EXCL:
                    raise FsError(EEXIST, path)
                ino = existing
                if dtype == DT_UNKNOWN:
                    dtype = self._child_dtype(mount, dir_ino, name, ino)
                if dtype == DT_DIR:
                    raise FsError(EISDIR, path)
            else:
                ino = mount.fs.create(dir_ino, name, mode, self.uid, self.gid)
                self.dcache.invalidate_entry(mount.mount_id, dir_ino, name)
                self.dcache.insert(mount.mount_id, dir_ino, name, ino, DT_REG)
                mount.mark_dirty_parent(rel_dir)
        else:
            mount, ino, rel, dtype = self._resolve_entry(path)
            if dtype == DT_DIR:
                if (flags & O_ACCMODE) != O_RDONLY:
                    raise FsError(EISDIR, path)
            elif flags & O_DIRECTORY:
                raise FsError(ENOTDIR, path)
        if flags & O_TRUNC and (flags & O_ACCMODE) != O_RDONLY:
            mount.fs.truncate(ino, 0)
            self._mark_inode_entry(mount, rel, ino)
        entry = self.fdtable.allocate(mount.mount_id, ino, flags, path)
        entry.dirty_rel = rel
        return entry.fd

    def close(self, fd: int) -> None:
        self._sys()
        self.fdtable.close(fd)

    def _fd_mount(self, entry: OpenFile) -> Mount:
        for mount in self._mounts.values():
            if mount.mount_id == entry.mount_id:
                return mount
        raise FsError(EINVAL, f"mount for fd {entry.fd} has disappeared")

    def read(self, fd: int, length: int) -> bytes:
        self._sys()
        entry = self.fdtable.get(fd)
        if not entry.readable:
            raise FsError(EACCES, f"fd {fd} not open for reading")
        mount = self._fd_mount(entry)
        data = mount.fs.read(entry.ino, entry.offset, length)
        entry.offset += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        self._sys()
        entry = self.fdtable.get(fd)
        if not entry.writable:
            raise FsError(EACCES, f"fd {fd} not open for writing")
        mount = self._fd_mount(entry)
        if entry.append:
            entry.offset = mount.fs.getattr(entry.ino).st_size
        written = mount.fs.write(entry.ino, entry.offset, data)
        entry.offset += written
        # even zero-byte writes can change visible state in some drivers
        # (e.g. a size-extending quirk), so mark unconditionally
        self._mark_fd_write(mount, entry)
        return written

    def pread(self, fd: int, length: int, offset: int) -> bytes:
        self._sys()
        entry = self.fdtable.get(fd)
        if not entry.readable:
            raise FsError(EACCES, f"fd {fd} not open for reading")
        return self._fd_mount(entry).fs.read(entry.ino, offset, length)

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        self._sys()
        entry = self.fdtable.get(fd)
        if not entry.writable:
            raise FsError(EACCES, f"fd {fd} not open for writing")
        mount = self._fd_mount(entry)
        written = mount.fs.write(entry.ino, offset, data)
        self._mark_fd_write(mount, entry)
        return written

    def _mark_fd_write(self, mount: Mount, entry: OpenFile) -> None:
        if entry.dirty_rel:
            self._mark_inode_entry(mount, entry.dirty_rel, entry.ino)
        else:
            # fd predates tracking (or its name is unknown): be safe
            mount.mark_fully_dirty()

    def lseek(self, fd: int, offset: int, whence: int = 0) -> int:
        self._sys()
        entry = self.fdtable.get(fd)
        mount = self._fd_mount(entry)
        if whence == 0:  # SEEK_SET
            new = offset
        elif whence == 1:  # SEEK_CUR
            new = entry.offset + offset
        elif whence == 2:  # SEEK_END
            new = mount.fs.getattr(entry.ino).st_size + offset
        else:
            raise FsError(EINVAL, f"bad whence {whence}")
        if new < 0:
            raise FsError(EINVAL, f"negative seek position {new}")
        entry.offset = new
        return new

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._sys()
        mount, dir_ino, name, rel_dir = self._walk_parent(path)
        cached = self.dcache.get(mount.mount_id, dir_ino, name)
        if cached is not None and cached is not NEGATIVE:
            # A cached positive dentry answers without consulting the fs --
            # this is where a stale entry produces the paper's ghost-EEXIST.
            raise FsError(EEXIST, path)
        ino = mount.fs.mkdir(dir_ino, name, mode, self.uid, self.gid)
        self.dcache.invalidate_entry(mount.mount_id, dir_ino, name)
        self.dcache.insert(mount.mount_id, dir_ino, name, ino, DT_DIR)
        mount.mark_dirty_parent(rel_dir)

    def rmdir(self, path: str) -> None:
        self._sys()
        mount, dir_ino, name, rel_dir = self._walk_parent(path)
        mount.fs.rmdir(dir_ino, name)
        self.dcache.invalidate_entry(mount.mount_id, dir_ino, name)
        self.dcache.insert_negative(mount.mount_id, dir_ino, name)
        mount.mark_dirty_parent(rel_dir)

    def unlink(self, path: str) -> None:
        self._sys()
        mount, dir_ino, name, rel_dir = self._walk_parent(path)
        try:
            target_ino: Optional[int] = self._lookup_child(mount, dir_ino, name)
        except FsError:
            target_ino = None
        mount.fs.unlink(dir_ino, name)
        self.dcache.invalidate_entry(mount.mount_id, dir_ino, name)
        self.dcache.insert_negative(mount.mount_id, dir_ino, name)
        if target_ino is not None and target_ino in mount.multilink_inos:
            # the surviving links' nlink just changed, names unknown
            mount.mark_fully_dirty()
        else:
            mount.mark_dirty_parent(rel_dir)

    def rename(self, old_path: str, new_path: str) -> None:
        self._sys()
        old_mount, old_dir, old_name, old_rel_dir = self._walk_parent(old_path)
        new_mount, new_dir, new_name, new_rel_dir = self._walk_parent(new_path)
        if old_mount.mount_id != new_mount.mount_id:
            raise FsError(EXDEV, f"{old_path} -> {new_path}")
        # POSIX: renaming onto another hard link of the same inode (or onto
        # itself) succeeds and changes nothing -- both names stay valid.
        source_ino = self._lookup_child(old_mount, old_dir, old_name)
        try:
            target_ino: Optional[int] = self._lookup_child(new_mount, new_dir, new_name)
        except FsError as exc:
            if exc.code != ENOENT:
                raise
            target_ino = None
        old_mount.fs.rename(old_dir, old_name, new_dir, new_name)
        if target_ino is not None and target_ino == source_ino:
            return
        self.dcache.invalidate_entry(old_mount.mount_id, old_dir, old_name)
        self.dcache.invalidate_entry(new_mount.mount_id, new_dir, new_name)
        self.dcache.insert_negative(old_mount.mount_id, old_dir, old_name)
        old_rel = self._child_rel(old_rel_dir, old_name)
        new_rel = self._child_rel(new_rel_dir, new_name)
        if target_ino is not None and target_ino in old_mount.multilink_inos:
            # the overwritten target's other links changed nlink
            old_mount.mark_fully_dirty()
        else:
            old_mount.mark_dirty_parent(old_rel_dir)
            old_mount.mark_dirty_parent(new_rel_dir)
            # the whole moved subtree got new path names (and a replaced
            # target's old content is gone): re-walk it
            old_mount.mark_dirty_entry(new_rel)
        # open descriptors into the moved subtree follow the rename
        for fd_entry in self.fdtable.open_fds_for_mount(old_mount.mount_id):
            if fd_entry.dirty_rel == old_rel or \
                    fd_entry.dirty_rel.startswith(old_rel + "/"):
                fd_entry.dirty_rel = new_rel + fd_entry.dirty_rel[len(old_rel):]

    def link(self, existing_path: str, new_path: str) -> None:
        self._sys()
        mount, ino, source_rel = self._resolve(
            existing_path, follow_last_symlink=False
        )
        new_mount, dir_ino, name, rel_dir = self._walk_parent(new_path)
        if mount.mount_id != new_mount.mount_id:
            raise FsError(EXDEV, f"{existing_path} -> {new_path}")
        mount.fs.link(ino, dir_ino, name)
        self.dcache.invalidate_entry(mount.mount_id, dir_ino, name)
        if ino in mount.multilink_inos:
            # a third (or later) link: the other names are unknown
            mount.mark_fully_dirty()
        else:
            # first extra link: the inode's only other name is source_rel
            mount.multilink_inos.add(ino)
            mount.mark_dirty_record(source_rel)
            mount.mark_dirty_parent(rel_dir)

    def symlink(self, target: str, link_path: str) -> None:
        self._sys()
        mount, dir_ino, name, rel_dir = self._walk_parent(link_path)
        ino = mount.fs.symlink(dir_ino, name, target, self.uid, self.gid)
        self.dcache.invalidate_entry(mount.mount_id, dir_ino, name)
        self.dcache.insert(mount.mount_id, dir_ino, name, ino, DT_LNK)
        mount.mark_dirty_parent(rel_dir)

    def readlink(self, path: str) -> str:
        self._sys()
        mount, ino = self._walk(path, follow_last_symlink=False)
        return mount.fs.readlink(ino)

    def truncate(self, path: str, size: int) -> None:
        self._sys()
        if size < 0:
            raise FsError(EINVAL, f"negative truncate size {size}")
        mount, ino, rel, dtype = self._resolve_entry(path)
        if dtype == DT_DIR:
            raise FsError(EISDIR, path)
        mount.fs.truncate(ino, size)
        self._mark_inode_entry(mount, rel, ino)

    def ftruncate(self, fd: int, size: int) -> None:
        self._sys()
        if size < 0:
            raise FsError(EINVAL, f"negative truncate size {size}")
        entry = self.fdtable.get(fd)
        if not entry.writable:
            raise FsError(EACCES, f"fd {fd} not open for writing")
        mount = self._fd_mount(entry)
        mount.fs.truncate(entry.ino, size)
        self._mark_fd_write(mount, entry)

    def stat(self, path: str) -> StatResult:
        self._sys()
        mount, ino = self._walk(path)
        return mount.fs.getattr(ino)

    def lstat(self, path: str) -> StatResult:
        self._sys()
        mount, ino = self._walk(path, follow_last_symlink=False)
        return mount.fs.getattr(ino)

    def fstat(self, fd: int) -> StatResult:
        self._sys()
        entry = self.fdtable.get(fd)
        return self._fd_mount(entry).fs.getattr(entry.ino)

    def getdents(self, path: str) -> List[Dirent]:
        self._sys()
        mount, ino, _rel, dtype = self._resolve_entry(path)
        if dtype != DT_DIR:
            raise FsError(ENOTDIR, path)
        return mount.fs.getdents(ino)

    def getdents_attrs(self, path: str) -> List[Tuple[Dirent, StatResult]]:
        """``getdents`` plus each entry's ``lstat`` in one syscall.

        The readdirplus surface: results are byte-identical to a
        ``getdents`` loop calling ``lstat`` per entry, without a path
        resolution (and, for FUSE mounts, a message round trip) per
        entry.  Like real readdirplus, the reply instantiates dentries:
        every entry is inserted into the dcache with its d_type, warming
        later walks.
        """
        self._sys()
        mount, ino, _rel, dtype = self._resolve_entry(path)
        if dtype != DT_DIR:
            raise FsError(ENOTDIR, path)
        entries = mount.fs.getdents_attrs(ino)
        mount_id = mount.mount_id
        insert = self.dcache.insert
        for dirent, attrs in entries:
            insert(mount_id, ino, dirent.name, dirent.ino,
                   mode_to_dtype(attrs.st_mode))
        return entries

    def chmod(self, path: str, mode: int) -> None:
        self._sys()
        mount, ino, rel = self._resolve(path)
        mount.fs.setattr(ino, mode=mode & 0o7777)
        self._mark_inode_record(mount, rel, ino)

    def chown(self, path: str, uid: int, gid: int) -> None:
        self._sys()
        mount, ino, rel = self._resolve(path)
        mount.fs.setattr(ino, uid=uid if uid >= 0 else None, gid=gid if gid >= 0 else None)
        self._mark_inode_record(mount, rel, ino)

    def utimens(self, path: str, atime: Optional[float], mtime: Optional[float]) -> None:
        self._sys()
        mount, ino, rel = self._resolve(path)
        mount.fs.setattr(ino, atime=atime, mtime=mtime)
        self._mark_inode_record(mount, rel, ino)

    def access(self, path: str, amode: int = F_OK) -> None:
        """access(2): raise EACCES/ENOENT rather than returning -1."""
        self._sys()
        mount, ino = self._walk(path)
        if amode == F_OK:
            return
        attrs = mount.fs.getattr(ino)
        if self.uid == 0:
            # Root bypasses rwx checks except X on files with no x bits.
            if amode & X_OK and attrs.is_file and not attrs.st_mode & 0o111:
                raise FsError(EACCES, path)
            return
        if attrs.st_uid == self.uid:
            bits = (attrs.st_mode >> 6) & 7
        elif attrs.st_gid == self.gid:
            bits = (attrs.st_mode >> 3) & 7
        else:
            bits = attrs.st_mode & 7
        wanted = ((amode & R_OK) and 4) | ((amode & W_OK) and 2) | ((amode & X_OK) and 1)
        if wanted & ~bits:
            raise FsError(EACCES, path)

    def statfs(self, path: str) -> StatVFS:
        self._sys()
        mount, _ = self._walk(path)
        return mount.fs.statfs()

    def fsync(self, fd: int) -> None:
        self._sys()
        entry = self.fdtable.get(fd)
        self._fd_mount(entry).fs.sync()

    def sync(self) -> None:
        self._sys()
        for mount in self._mounts.values():
            mount.fs.sync()

    def ioctl(self, fd: int, request: int, arg: object = None) -> object:
        self._sys()
        entry = self.fdtable.get(fd)
        return self._fd_mount(entry).fs.ioctl(entry.ino, request, arg)

    # xattrs ----------------------------------------------------------------
    def setxattr(self, path: str, key: str, value: bytes, flags: int = 0) -> None:
        self._sys()
        mount, ino, rel = self._resolve(path)
        mount.fs.setxattr(ino, key, value, flags)
        self._mark_inode_record(mount, rel, ino)

    def getxattr(self, path: str, key: str) -> bytes:
        self._sys()
        mount, ino = self._walk(path)
        return mount.fs.getxattr(ino, key)

    def listxattr(self, path: str) -> List[str]:
        self._sys()
        mount, ino = self._walk(path)
        return mount.fs.listxattr(ino)

    def removexattr(self, path: str, key: str) -> None:
        self._sys()
        mount, ino, rel = self._resolve(path)
        mount.fs.removexattr(ino, key)
        self._mark_inode_record(mount, rel, ino)
