"""stat(2)-style structures and file-mode constants for the simulated VFS."""

from __future__ import annotations

from dataclasses import dataclass, replace

# File type bits (matching POSIX <sys/stat.h>).
S_IFMT = 0o170000
S_IFDIR = 0o040000
S_IFREG = 0o100000
S_IFLNK = 0o120000

# Directory entry types (matching <dirent.h>).
DT_UNKNOWN = 0
DT_DIR = 4
DT_REG = 8
DT_LNK = 10

_TYPE_NAMES = {S_IFDIR: "dir", S_IFREG: "file", S_IFLNK: "symlink"}


def file_type_name(mode: int) -> str:
    """Human-readable name for the file-type bits of ``mode``."""
    return _TYPE_NAMES.get(mode & S_IFMT, f"type?{mode & S_IFMT:o}")


def mode_to_dtype(mode: int) -> int:
    """Map stat mode bits to a getdents d_type value."""
    kind = mode & S_IFMT
    if kind == S_IFDIR:
        return DT_DIR
    if kind == S_IFREG:
        return DT_REG
    if kind == S_IFLNK:
        return DT_LNK
    return DT_UNKNOWN


@dataclass(frozen=True)
class StatResult:
    """The observable metadata of one inode.

    The fields mirror ``struct stat``.  The MCFS abstraction function
    (Algorithm 1) hashes only the *important* subset -- mode, size, nlink,
    uid, gid -- and deliberately omits timestamps and block placement,
    which vary between file systems without indicating bugs.
    """

    st_ino: int
    st_mode: int
    st_nlink: int
    st_uid: int
    st_gid: int
    st_size: int
    st_blocks: int
    st_atime: float
    st_mtime: float
    st_ctime: float

    @property
    def is_dir(self) -> bool:
        return (self.st_mode & S_IFMT) == S_IFDIR

    @property
    def is_file(self) -> bool:
        return (self.st_mode & S_IFMT) == S_IFREG

    @property
    def is_symlink(self) -> bool:
        return (self.st_mode & S_IFMT) == S_IFLNK

    def with_updates(self, **changes) -> "StatResult":
        return replace(self, **changes)


@dataclass(frozen=True)
class Dirent:
    """One getdents entry: name, inode number, and entry type."""

    name: str
    ino: int
    dtype: int


@dataclass(frozen=True)
class StatVFS:
    """statfs(2)-style file-system usage summary."""

    block_size: int
    blocks_total: int
    blocks_free: int
    files_total: int
    files_free: int

    @property
    def bytes_free(self) -> int:
        return self.block_size * self.blocks_free

    @property
    def bytes_total(self) -> int:
        return self.block_size * self.blocks_total
