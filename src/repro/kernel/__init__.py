"""A miniature POSIX kernel: VFS, caches, mount table, file descriptors.

This package is the substrate on which the simulated file systems run and
against which MCFS issues "system calls".  Its caching layers (dentry and
attribute caches, plus each file system's private write-back caches) are
deliberately faithful enough to reproduce the paper's central challenge:
restoring on-disk state underneath a mounted file system leaves the caches
incoherent and corrupts the file system (section 3.2), and only a full
unmount/remount -- or a file-system-level checkpoint/restore API paired
with cache invalidation -- avoids it.
"""

from repro.kernel.stat import (
    DT_DIR,
    DT_LNK,
    DT_REG,
    Dirent,
    S_IFDIR,
    S_IFLNK,
    S_IFMT,
    S_IFREG,
    StatResult,
    StatVFS,
    file_type_name,
)
from repro.kernel.vfs import FileSystemType, Mount, MountedFileSystem
from repro.kernel.kernel import Kernel, OpenFile

__all__ = [
    "Kernel",
    "OpenFile",
    "FileSystemType",
    "Mount",
    "MountedFileSystem",
    "StatResult",
    "StatVFS",
    "Dirent",
    "S_IFDIR",
    "S_IFREG",
    "S_IFLNK",
    "S_IFMT",
    "DT_DIR",
    "DT_REG",
    "DT_LNK",
    "file_type_name",
]
