"""The kernel's dentry cache (positive and negative entries).

The dcache memoises ``(mount, parent inode, name) -> child inode`` so that
repeated path walks avoid calling into the file system.  Negative entries
memoise confirmed-absent names.  This is exactly the cache that goes stale
in the paper's section 3.2: when the model checker restores an older disk
state without unmounting, the dcache may still hold a "recently created"
directory the restored disk knows nothing about -- and the FUSE bug of
section 6 (mkdir failing with EEXIST for a directory that does not exist)
is a stale *positive* entry surviving a VeriFS restore that forgot to call
the invalidation API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class DentryStats:
    hits: int = 0
    misses: int = 0
    negative_hits: int = 0
    invalidations: int = 0


class _Negative:
    """Sentinel stored for negative (confirmed-absent) entries.

    Copy/deepcopy return the singleton so identity checks (``entry is
    NEGATIVE``) survive VM-snapshot deep copies of a kernel.
    """

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<negative dentry>"

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self


NEGATIVE = _Negative()

Key = Tuple[int, int, str]  # (mount_id, parent_ino, name)


class DentryCache:
    """Positive + negative dentry cache with explicit invalidation."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._entries: Dict[Key, object] = {}
        self.stats = DentryStats()

    # -- lookups --------------------------------------------------------------
    def get(self, mount_id: int, parent_ino: int, name: str):
        """Return the cached child ino, ``NEGATIVE``, or ``None`` (miss)."""
        if not self.enabled:
            return None
        entry = self._entries.get((mount_id, parent_ino, name))
        if entry is None:
            self.stats.misses += 1
            return None
        if entry is NEGATIVE:
            self.stats.negative_hits += 1
        else:
            self.stats.hits += 1
        return entry

    def insert(self, mount_id: int, parent_ino: int, name: str, ino: int) -> None:
        if self.enabled:
            self._entries[(mount_id, parent_ino, name)] = ino

    def insert_negative(self, mount_id: int, parent_ino: int, name: str) -> None:
        if self.enabled:
            self._entries[(mount_id, parent_ino, name)] = NEGATIVE

    # -- invalidation -----------------------------------------------------------
    def invalidate_entry(self, mount_id: int, parent_ino: int, name: str) -> None:
        """Drop one entry (the fuse_lowlevel_notify_inval_entry analogue)."""
        if self._entries.pop((mount_id, parent_ino, name), None) is not None:
            self.stats.invalidations += 1

    def invalidate_inode(self, mount_id: int, ino: int) -> None:
        """Drop every entry that resolves to ``ino`` on ``mount_id``."""
        stale = [
            key
            for key, entry in self._entries.items()
            if key[0] == mount_id and entry is not NEGATIVE and entry == ino
        ]
        for key in stale:
            del self._entries[key]
            self.stats.invalidations += 1

    def invalidate_mount(self, mount_id: int) -> None:
        """Drop all entries of a mount (unmount purges its dentries)."""
        stale = [key for key in self._entries if key[0] == mount_id]
        for key in stale:
            del self._entries[key]
            self.stats.invalidations += 1

    def entry_count(self, mount_id: Optional[int] = None) -> int:
        if mount_id is None:
            return len(self._entries)
        return sum(1 for key in self._entries if key[0] == mount_id)
