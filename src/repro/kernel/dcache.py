"""The kernel's dentry cache (positive and negative entries).

The dcache memoises ``(mount, parent inode, name) -> (child inode,
d_type)`` so that repeated path walks avoid calling into the file system.
The file-type byte rides along exactly as ``d_type`` does in a real
dentry: an inode's type is immutable for its lifetime, so a positive
entry can answer the walker's is-directory / is-symlink questions without
a ``getattr`` round trip, and it goes stale under precisely the same
rules as the name-to-inode mapping it is attached to.  Negative entries
memoise confirmed-absent names.  This is exactly the cache that goes stale
in the paper's section 3.2: when the model checker restores an older disk
state without unmounting, the dcache may still hold a "recently created"
directory the restored disk knows nothing about -- and the FUSE bug of
section 6 (mkdir failing with EEXIST for a directory that does not exist)
is a stale *positive* entry surviving a VeriFS restore that forgot to call
the invalidation API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class DentryStats:
    hits: int = 0
    misses: int = 0
    negative_hits: int = 0
    invalidations: int = 0


class _Negative:
    """Sentinel stored for negative (confirmed-absent) entries.

    Copy/deepcopy return the singleton so identity checks (``entry is
    NEGATIVE``) survive VM-snapshot deep copies of a kernel.
    """

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<negative dentry>"

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self


NEGATIVE = _Negative()

#: d_type placeholder for a dentry whose inode type is not yet known
#: (mirrors <dirent.h> DT_UNKNOWN; the walker fills it in lazily).
DT_UNKNOWN = 0

Key = Tuple[int, str]  # (parent_ino, name), within one mount's shard


class DentryCache:
    """Positive + negative dentry cache with explicit invalidation.

    Entries are sharded by mount, mirroring how real dentries hang off
    their superblock: whole-mount invalidation (unmount, and the VeriFS
    restore notify path that runs once per explored state) drops the
    shard in O(1) instead of scanning every cached name in the system,
    and per-inode invalidation scans only the owning mount's entries.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._shards: Dict[int, Dict[Key, object]] = {}
        self.stats = DentryStats()

    # -- lookups --------------------------------------------------------------
    def get(self, mount_id: int, parent_ino: int, name: str):
        """Return ``(child_ino, d_type)``, ``NEGATIVE``, or ``None`` (miss)."""
        if not self.enabled:
            return None
        shard = self._shards.get(mount_id)
        entry = shard.get((parent_ino, name)) if shard is not None else None
        if entry is None:
            self.stats.misses += 1
            return None
        if entry is NEGATIVE:
            self.stats.negative_hits += 1
        else:
            self.stats.hits += 1
        return entry

    def insert(self, mount_id: int, parent_ino: int, name: str, ino: int,
               dtype: int = DT_UNKNOWN) -> None:
        if self.enabled:
            shard = self._shards.get(mount_id)
            if shard is None:
                shard = self._shards[mount_id] = {}
            shard[(parent_ino, name)] = (ino, dtype)

    def insert_negative(self, mount_id: int, parent_ino: int, name: str) -> None:
        if self.enabled:
            shard = self._shards.get(mount_id)
            if shard is None:
                shard = self._shards[mount_id] = {}
            shard[(parent_ino, name)] = NEGATIVE

    # -- invalidation -----------------------------------------------------------
    def invalidate_entry(self, mount_id: int, parent_ino: int, name: str) -> None:
        """Drop one entry (the fuse_lowlevel_notify_inval_entry analogue)."""
        shard = self._shards.get(mount_id)
        if shard is not None and shard.pop((parent_ino, name), None) is not None:
            self.stats.invalidations += 1

    def invalidate_inode(self, mount_id: int, ino: int) -> None:
        """Drop every entry that resolves to ``ino`` on ``mount_id``."""
        shard = self._shards.get(mount_id)
        if shard is None:
            return
        stale = [
            key
            for key, entry in shard.items()
            if entry is not NEGATIVE and entry[0] == ino
        ]
        for key in stale:
            del shard[key]
            self.stats.invalidations += 1

    def invalidate_mount(self, mount_id: int) -> None:
        """Drop all entries of a mount (unmount purges its dentries)."""
        shard = self._shards.pop(mount_id, None)
        if shard:
            self.stats.invalidations += len(shard)

    def entry_count(self, mount_id: Optional[int] = None) -> int:
        if mount_id is None:
            return sum(len(shard) for shard in self._shards.values())
        return len(self._shards.get(mount_id, ()))
