"""SimExt4-specific behaviour: the journal and its crash guarantees."""

import pytest

from repro.clock import SimClock
from repro.errors import EINVAL, FsError
from repro.fs.ext2 import Ext2FileSystemType
from repro.fs.ext4 import Ext4FileSystemType, Ext4Geometry, MountedExt4
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_WRONLY
from repro.storage import RAMBlockDevice


@pytest.fixture
def fx(clock):
    kernel = Kernel(clock)
    fstype = Ext4FileSystemType()
    device = RAMBlockDevice(256 * 1024, clock=clock, name="ram0")
    fstype.mkfs(device)
    kernel.mount(fstype, device, "/mnt/ext4")
    return kernel, device, fstype


class TestGeometry:
    def test_journal_region_reserved(self):
        plain = Ext2FileSystemType()
        journaled = Ext4FileSystemType()
        geo2 = __import__("repro.fs.ext2", fromlist=["Ext2Geometry"]).Ext2Geometry(256 * 1024, 1024)
        geo4 = Ext4Geometry(256 * 1024, 1024, 16)
        assert geo4.first_data_block == geo2.first_data_block + 16
        assert geo4.journal_start == geo2.first_data_block

    def test_less_usable_space_than_ext2(self, clock):
        """The capacity difference that motivates free-space equalization."""
        kernel = Kernel(clock)
        for name, fstype in (("ext2", Ext2FileSystemType()), ("ext4", Ext4FileSystemType())):
            device = RAMBlockDevice(256 * 1024, clock=clock, name=name)
            fstype.mkfs(device)
            kernel.mount(fstype, device, f"/mnt/{name}")
        assert (kernel.statfs("/mnt/ext4").bytes_free
                < kernel.statfs("/mnt/ext2").bytes_free)

    def test_mount_rejects_ext2_magic(self, clock):
        device = RAMBlockDevice(256 * 1024, clock=clock)
        Ext2FileSystemType().mkfs(device)
        with pytest.raises(FsError) as excinfo:
            Ext4FileSystemType().mount(device)
        assert excinfo.value.code == EINVAL


class TestJournal:
    def test_sync_writes_journal_then_home(self, fx):
        kernel, device, _ = fx
        kernel.close(kernel.open("/mnt/ext4/f", O_CREAT))
        fs = kernel.mount_at("/mnt/ext4").fs
        writes_before = device.stats.write_requests
        fs.sync()
        # journal descriptor + data + commit + checkpoint writes
        assert device.stats.write_requests > writes_before

    def test_crash_before_flush_loses_nothing_committed(self, fx):
        """Dropping the cache after a sync (crash) must preserve state."""
        kernel, device, fstype = fx
        kernel.close(kernel.open("/mnt/ext4/f", O_CREAT))
        fs = kernel.mount_at("/mnt/ext4").fs
        fs.sync()
        fs.cache.drop()  # simulated crash: no unmount, caches gone
        recovered = fstype.mount(device)
        assert recovered.lookup(recovered.ROOT_INO, "f") > 0
        assert recovered.check_consistency() == []

    def test_journal_replay_applies_committed_txn(self, fx):
        """A committed-but-unretired transaction must replay at mount."""
        kernel, device, fstype = fx
        kernel.close(kernel.open("/mnt/ext4/f", O_CREAT))
        fs = kernel.mount_at("/mnt/ext4").fs
        # run the journal write but crash before the checkpoint reaches
        # home locations: emulate by writing journal records manually
        import struct
        from repro.fs.ext4 import JOURNAL_COMMIT, JOURNAL_DESCRIPTOR, JOURNAL_HEADER_FMT, JOURNAL_MAGIC
        fs.sync()
        geo = fs.geo
        target_block = geo.first_data_block + 1
        payload = b"J" * 64
        header = struct.pack(JOURNAL_HEADER_FMT, JOURNAL_MAGIC, JOURNAL_DESCRIPTOR, 1, 99)
        header += struct.pack("<I", target_block)
        device.write_block(geo.journal_start, 1024, header)
        device.write_block(geo.journal_start + 1, 1024, payload)
        commit = struct.pack(JOURNAL_HEADER_FMT, JOURNAL_MAGIC, JOURNAL_COMMIT, 1, 99)
        device.write_block(geo.journal_start + 2, 1024, commit)
        remounted = fstype.mount(device)
        assert remounted.cache.read_block(target_block)[:64] == payload

    def test_uncommitted_txn_not_replayed(self, fx):
        kernel, device, fstype = fx
        fs = kernel.mount_at("/mnt/ext4").fs
        fs.sync()
        import struct
        from repro.fs.ext4 import JOURNAL_DESCRIPTOR, JOURNAL_HEADER_FMT, JOURNAL_MAGIC
        geo = fs.geo
        target_block = geo.first_data_block + 1
        original = device.read_block(target_block, 1024)
        header = struct.pack(JOURNAL_HEADER_FMT, JOURNAL_MAGIC, JOURNAL_DESCRIPTOR, 1, 99)
        header += struct.pack("<I", target_block)
        device.write_block(geo.journal_start, 1024, header)
        device.write_block(geo.journal_start + 1, 1024, b"J" * 64)
        # no commit record -> replay must skip it
        remounted = fstype.mount(device)
        assert remounted.cache.read_block(target_block) == original

    def test_lost_and_found_present(self, fx):
        kernel, _, _ = fx
        assert kernel.stat("/mnt/ext4/lost+found").is_dir

    def test_dir_size_block_multiple_like_ext2(self, fx):
        kernel, _, _ = fx
        kernel.mkdir("/mnt/ext4/d")
        assert kernel.stat("/mnt/ext4/d").st_size % 1024 == 0
