"""Tests for the programmatic conformance battery."""

import pytest

from repro.conformance import ConformanceFailure, check_conformance
from repro.fs import (
    Ext2FileSystemType,
    Ext4FileSystemType,
    Jffs2FileSystemType,
    XfsFileSystemType,
)
from repro.storage import RAMBlockDevice
from repro.storage.mtd import MTDDevice


class TestAllShippedFilesystemsConform:
    def test_ext2(self):
        failures = check_conformance(
            Ext2FileSystemType,
            lambda clock: RAMBlockDevice(256 * 1024, clock=clock))
        assert failures == [], [str(f) for f in failures]

    def test_ext4(self):
        failures = check_conformance(
            Ext4FileSystemType,
            lambda clock: RAMBlockDevice(256 * 1024, clock=clock))
        assert failures == [], [str(f) for f in failures]

    def test_xfs(self):
        failures = check_conformance(
            XfsFileSystemType,
            lambda clock: RAMBlockDevice(16 * 1024 * 1024, clock=clock))
        assert failures == [], [str(f) for f in failures]

    def test_jffs2(self):
        failures = check_conformance(
            Jffs2FileSystemType,
            lambda clock: MTDDevice(256 * 1024, clock=clock))
        assert failures == [], [str(f) for f in failures]


class TestBatteryCatchesBugs:
    """The battery must actually detect the bug families it documents."""

    def _broken_truncate_fs(self):
        """An ext2 whose expanding truncate leaks stale data."""
        from repro.fs.ext2 import Ext2FileSystemType as Base, MountedExt2

        class BrokenMounted(MountedExt2):
            def _truncate_data(self, inode, size):
                # buggy driver: adjust the size but never clear anything,
                # so shrink-then-grow exposes stale bytes (the VeriFS1 bug)
                inode.size = size

        class BrokenType(Base):
            name = "broken-ext2"

            def mount(self, device, kernel=None):
                return self._apply_tuning(
                    BrokenMounted(device, self.block_size,
                                  cache=self._make_cache(device)))

        return BrokenType

    def test_detects_truncate_stale_data(self):
        failures = check_conformance(
            self._broken_truncate_fs(),
            lambda clock: RAMBlockDevice(256 * 1024, clock=clock))
        assert any(f.check == "truncate-grow-zeroes" for f in failures), \
            [str(f) for f in failures]

    def test_failure_renders(self):
        failure = ConformanceFailure("some-check", "went wrong")
        assert "some-check" in str(failure)
        assert "went wrong" in str(failure)

    def test_missing_optional_features_are_not_failures(self):
        """A driver without links/xattrs passes (like VeriFS1 would):
        ENOTSUP is a capability statement, not a conformance violation."""
        from repro.fs.ext2 import Ext2FileSystemType as Base, MountedExt2
        from repro.errors import ENOTSUP, FsError

        class Minimal(MountedExt2):
            def rename(self, *a, **k):
                raise FsError(ENOTSUP, "no rename")

            def link(self, *a, **k):
                raise FsError(ENOTSUP, "no links")

            def symlink(self, *a, **k):
                raise FsError(ENOTSUP, "no symlinks")

            def setxattr(self, *a, **k):
                raise FsError(ENOTSUP, "no xattrs")

        class MinimalType(Base):
            name = "minimal"

            def mount(self, device, kernel=None):
                return self._apply_tuning(
                    Minimal(device, self.block_size,
                            cache=self._make_cache(device)))

        failures = check_conformance(
            MinimalType, lambda clock: RAMBlockDevice(256 * 1024, clock=clock))
        assert failures == [], [str(f) for f in failures]
