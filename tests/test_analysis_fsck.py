"""Offline fsck checkers: clean images stay silent, injections get caught.

The three canonical corruption classes -- a leaked block, an
over-counted link, a dangling dirent -- are injected into otherwise
healthy ext2 images; each must be caught by exactly its checker class
and nothing else.  Clean images of every backend must produce zero
findings, so the oracle never cries wolf during exploration.
"""

from __future__ import annotations

import pytest

from repro.analysis import check_image, check_images, check_mounted, detect_fstype
from repro.analysis.findings import Finding, finding_from_dict
from repro.cli import main as cli_main
from repro.errors import EINVAL, FsError
from repro.fs.ext2 import ROOT_INO, Ext2FileSystemType, MountedExt2
from repro.fs.jffs2 import NODE_MAGIC
from repro.kernel.fdtable import O_CREAT, O_WRONLY
from repro.kernel.stat import DT_REG


def populate(fx) -> None:
    """A small, representative tree: dirs, files, links where supported."""
    k = fx.kernel
    k.mkdir(fx.path("/d"))
    k.mkdir(fx.path("/d/sub"))
    fd = k.open(fx.path("/d/f"), O_CREAT | O_WRONLY)
    k.write(fd, b"payload " * 64)
    k.close(fd)
    fd = k.open(fx.path("/top"), O_CREAT | O_WRONLY)
    k.write(fd, b"x")
    k.close(fd)
    if fx.supports_links:
        k.link(fx.path("/d/f"), fx.path("/d/hard"))
        k.symlink("f", fx.path("/d/sym"))


def synced_image(fx) -> bytes:
    populate(fx)
    fx.fs().sync()
    return fx.device.snapshot_image()


# ------------------------------------------------------------ clean images --
def test_clean_image_has_no_findings(mounted_block_fs):
    image = synced_image(mounted_block_fs)
    findings = check_image(image)
    assert findings == [], [f.describe() for f in findings]


def test_clean_tree_passes_generic_checker(mounted_fs):
    populate(mounted_fs)
    findings = check_mounted(mounted_fs.fs())
    assert findings == [], [f.describe() for f in findings]


def test_detect_fstype(mounted_block_fs):
    image = synced_image(mounted_block_fs)
    assert detect_fstype(image) == mounted_block_fs.name
    assert detect_fstype(b"\x00" * 64) is None


def test_unknown_image_reports_unknown_format():
    findings = check_image(b"garbage!" * 16)
    assert [f.invariant for f in findings] == ["unknown-format"]


# ------------------------------------- corruption-injection fixtures (ext2) --
@pytest.fixture
def ext2_fx(mount_factory):
    return mount_factory("ext2")


@pytest.fixture
def leaked_block_image(ext2_fx) -> bytes:
    """An allocated block no reachable inode references."""
    populate(ext2_fx)
    fs = ext2_fx.fs()
    fs.block_bitmap.set(fs.block_bitmap.find_free())
    fs.sync()
    return ext2_fx.device.snapshot_image()


@pytest.fixture
def overcounted_nlink_image(ext2_fx) -> bytes:
    """A file whose stored nlink exceeds its dirent count."""
    populate(ext2_fx)
    fs = ext2_fx.fs()
    ino = fs.lookup(ROOT_INO, "top")
    inode = fs._load_inode(ino)
    inode.nlink += 1
    fs._store_inode(inode)
    fs.sync()
    return ext2_fx.device.snapshot_image()


@pytest.fixture
def dangling_dirent_image(ext2_fx) -> bytes:
    """A dirent pointing at an inode that was never allocated."""
    populate(ext2_fx)
    fs = ext2_fx.fs()
    root = fs._load_inode(ROOT_INO)
    fs._dir_add_entry(root, "ghost", 55, DT_REG)
    fs.sync()
    return ext2_fx.device.snapshot_image()


def test_leaked_block_caught_by_exactly_its_class(leaked_block_image):
    findings = check_image(leaked_block_image)
    assert {f.invariant for f in findings} == {"block-leak"}
    (finding,) = findings
    assert finding.checker == "fsck.ext2"
    assert finding.severity == "error"
    assert finding.location.startswith("block ")


def test_overcounted_nlink_caught_by_exactly_its_class(overcounted_nlink_image):
    findings = check_image(overcounted_nlink_image)
    assert {f.invariant for f in findings} == {"nlink-mismatch"}
    (finding,) = findings
    assert finding.detail["stored"] == finding.detail["recomputed"] + 1


def test_dangling_dirent_caught_by_exactly_its_class(dangling_dirent_image):
    findings = check_image(dangling_dirent_image)
    assert {f.invariant for f in findings} == {"dangling-dirent"}
    (finding,) = findings
    assert finding.detail["name"] == "ghost"


def test_finding_serialisation_roundtrip(leaked_block_image):
    (finding,) = check_image(leaked_block_image)
    clone = finding_from_dict(finding.to_dict())
    assert clone == finding
    assert "block-leak" in clone.describe()


# ------------------------------------------------- other backends' checkers --
def test_jffs2_crc_corruption_detected(mount_factory):
    fx = mount_factory("jffs2")
    image = bytearray(synced_image(fx))
    # flip a data byte inside the first node's body (past the header)
    assert int.from_bytes(image[:2], "little") == NODE_MAGIC
    image[20] ^= 0xFF
    findings = check_image(bytes(image))
    assert "node-crc" in {f.invariant for f in findings}


def test_xfs_leaked_block_detected(mount_factory):
    fx = mount_factory("xfs")
    populate(fx)
    fs = fx.fs()
    fs.bitmap.set(fs.bitmap.find_free(start=fs.geo.first_data_block))
    fs.sync()
    findings = check_image(fx.device.snapshot_image())
    assert {f.invariant for f in findings} == {"block-leak"}
    assert findings[0].checker == "fsck.xfs"


# -------------------------------------------------------- truncated images --
def test_truncated_image_yields_clean_finding(ext2_fx):
    image = synced_image(ext2_fx)
    findings = check_image(image[: len(image) // 4], fstype="ext2")
    assert "superblock-geometry" in {f.invariant for f in findings}


def test_mounting_truncated_image_raises_einval(ext2_fx, clock):
    from repro.storage import RAMBlockDevice

    image = synced_image(ext2_fx)
    small = RAMBlockDevice(len(image) // 4, clock=clock, name="small")
    small.restore_image(image[: len(image) // 4])
    with pytest.raises(FsError) as excinfo:
        MountedExt2(small, 1024)
    assert excinfo.value.errno == EINVAL
    assert "truncated" in str(excinfo.value)


# ------------------------------------------------------------- worker pool --
def test_pool_preserves_input_order(mount_factory, leaked_block_image):
    clean = synced_image(mount_factory("ext4"))
    jobs = [clean, leaked_block_image, clean, leaked_block_image]
    for workers in (1, 3):
        results = check_images(jobs, max_workers=workers)
        assert [sorted({f.invariant for f in r}) for r in results] == [
            [], ["block-leak"], [], ["block-leak"],
        ]


def test_pool_accepts_job_dicts(leaked_block_image):
    results = check_images([{"image": leaked_block_image, "fstype": "ext2"}])
    assert [f.invariant for f in results[0]] == ["block-leak"]


# --------------------------------------------------------------------- CLI --
def test_cli_fsck_exit_codes(tmp_path, leaked_block_image, mount_factory,
                             capsys):
    clean = synced_image(mount_factory("ext2"))
    good = tmp_path / "good.img"
    bad = tmp_path / "bad.img"
    good.write_bytes(clean)
    bad.write_bytes(leaked_block_image)
    assert cli_main(["fsck", str(good)]) == 0
    assert cli_main(["fsck", str(good), str(bad)]) == 1
    out = capsys.readouterr().out
    assert "clean" in out and "block-leak" in out


def test_finding_validation():
    with pytest.raises(ValueError):
        Finding(checker="x", invariant="y", message="z", severity="fatal")
