"""Tests for the model-checking engine: memory model, table, explorer."""

import pytest

from repro.clock import Cost, SimClock
from repro.mc.explorer import ExplorationTarget, Explorer, PropertyViolation
from repro.mc.hashtable import VisitedStateTable
from repro.mc.memory import MemoryModel, OutOfMemoryError


class TestMemoryModel:
    def make(self, clock=None, ram=10, swap=10, state=1):
        return MemoryModel(clock=clock or SimClock(), ram_bytes=ram,
                           swap_bytes=swap, state_bytes=state)

    def test_capacities(self):
        memory = self.make(ram=100, swap=50, state=10)
        assert memory.ram_capacity_states == 10
        assert memory.total_capacity_states == 15

    def test_not_swapping_until_ram_full(self):
        memory = self.make(ram=3, swap=10, state=1)
        for _ in range(3):
            memory.store_state()
        assert not memory.swapping
        memory.store_state()
        assert memory.swapping
        assert memory.swap_used_bytes == 1

    def test_hit_ratio_one_in_ram(self):
        memory = self.make(ram=10, swap=10)
        memory.store_state()
        assert memory.ram_hit_ratio() == 1.0

    def test_hit_ratio_degrades_with_swap(self):
        memory = self.make(ram=2, swap=100, state=1)
        for _ in range(50):
            memory.store_state()
        assert memory.ram_hit_ratio() < 1.0

    def test_locality_raises_hit_ratio(self):
        low = self.make(ram=2, swap=100)
        low.locality = 0.0
        high = self.make(ram=2, swap=100)
        high.locality = 0.95
        for memory in (low, high):
            for _ in range(50):
                memory.store_state()
        assert high.ram_hit_ratio() > low.ram_hit_ratio()

    def test_out_of_memory(self):
        memory = self.make(ram=2, swap=2, state=1)
        for _ in range(4):
            memory.store_state()
        with pytest.raises(OutOfMemoryError):
            memory.store_state()

    def test_swap_touch_costs_more(self):
        clock = SimClock()
        fits = MemoryModel(clock=clock, ram_bytes=1000, swap_bytes=0, state_bytes=1)
        fits.store_state()
        ram_cost = clock.now
        clock2 = SimClock()
        swamped = MemoryModel(clock=clock2, ram_bytes=1, swap_bytes=1000,
                              state_bytes=1, locality=0.0)
        for _ in range(100):
            swamped.store_state()
        assert clock2.now / 100 > ram_cost


class TestVisitedStateTable:
    def test_add_new_true_then_false(self):
        table = VisitedStateTable()
        assert table.add("h1") is True
        assert table.add("h1") is False
        assert len(table) == 1

    def test_contains(self):
        table = VisitedStateTable()
        table.add("h1")
        assert "h1" in table
        assert "h2" not in table

    def test_visit_depth_improvement_triggers_expand(self):
        table = VisitedStateTable()
        assert table.visit("h", depth=3) == (True, True)
        assert table.visit("h", depth=3) == (False, False)
        assert table.visit("h", depth=1) == (False, True)  # shallower: re-expand
        assert table.visit("h", depth=2) == (False, False)

    def test_resize_happens_and_charges(self):
        clock = SimClock()
        memory = MemoryModel(clock=clock, ram_bytes=1 << 30, state_bytes=1)
        table = VisitedStateTable(memory=memory, initial_buckets=8)
        events = []
        table.resize_hooks.append(events.append)
        for index in range(20):
            table.add(f"h{index}")
        assert table.stats.resizes >= 1
        assert events and events[0] == 16
        assert clock.by_category.get("hash-resize", 0) > 0

    def test_duplicate_stats(self):
        table = VisitedStateTable()
        table.add("a")
        table.add("a")
        table.add("a")
        assert table.stats.inserts == 1
        assert table.stats.duplicate_hits == 2

    def test_clear(self):
        table = VisitedStateTable()
        table.add("a")
        table.clear()
        assert len(table) == 0


class CounterTarget(ExplorationTarget):
    """A tiny deterministic system: a bounded counter with +1/+2 actions.

    States are 0..limit; action 'a' adds 1, 'b' adds 2 (saturating).
    Perfect for asserting exhaustive coverage.
    """

    def __init__(self, limit=5, clock=None, poison=None):
        self.value = 0
        self.limit = limit
        self.clock = clock or SimClock()
        self.poison = poison  # value that triggers a violation
        self.applied = 0

    def actions(self):
        return ["a", "b"]

    def apply(self, action):
        self.applied += 1
        self.clock.charge(0.001, "op")
        self.value = min(self.limit, self.value + (1 if action == "a" else 2))
        if self.poison is not None and self.value == self.poison:
            raise PropertyViolation(f"hit poison value {self.value}")

    def checkpoint(self):
        return self.value

    def restore(self, token):
        self.value = token

    def abstract_state(self):
        return f"v={self.value}"


class TestExplorerDFS:
    def test_exhaustive_coverage(self):
        target = CounterTarget(limit=5)
        explorer = Explorer(target, target.clock, max_depth=6)
        stats = explorer.run_dfs()
        assert stats.unique_states == 6  # 0..5 inclusive
        assert stats.violation is None
        assert stats.stopped_reason == "state space exhausted"

    def test_depth_bound_limits_reach(self):
        target = CounterTarget(limit=10)
        explorer = Explorer(target, target.clock, max_depth=2)
        stats = explorer.run_dfs()
        # with two +1/+2 steps we can reach at most value 4
        assert stats.unique_states == 5  # 0,1,2,3,4

    def test_violation_halts(self):
        target = CounterTarget(limit=5, poison=3)
        explorer = Explorer(target, target.clock, max_depth=6)
        stats = explorer.run_dfs()
        assert stats.violation is not None
        assert stats.stopped_reason == "property violation"

    def test_operation_budget(self):
        target = CounterTarget(limit=50)
        explorer = Explorer(target, target.clock, max_depth=50, max_operations=10)
        stats = explorer.run_dfs()
        assert stats.operations <= 11
        assert "budget" in stats.stopped_reason

    def test_restore_rewinds_between_branches(self):
        target = CounterTarget(limit=5)
        explorer = Explorer(target, target.clock, max_depth=3)
        explorer.run_dfs()
        assert target.value == 0  # back at the root after full exploration

    def test_time_budget(self):
        target = CounterTarget(limit=500)
        explorer = Explorer(target, target.clock, max_depth=500,
                            sim_time_budget=0.05)
        stats = explorer.run_dfs()
        assert stats.stopped_reason == "time budget"

    def test_checkpoint_restore_balance(self):
        target = CounterTarget(limit=4)
        explorer = Explorer(target, target.clock, max_depth=5)
        stats = explorer.run_dfs()
        assert stats.checkpoints == stats.restores


class TestExplorerRandom:
    def test_same_seed_same_walk(self):
        results = []
        for _ in range(2):
            target = CounterTarget(limit=8)
            explorer = Explorer(target, target.clock, max_depth=6,
                                max_operations=60, seed=7)
            stats = explorer.run_random()
            results.append((stats.operations, stats.unique_states, target.value))
        assert results[0] == results[1]

    def test_different_seed_different_walk(self):
        outcomes = set()
        for seed in range(5):
            target = CounterTarget(limit=30)
            explorer = Explorer(target, target.clock, max_depth=10,
                                max_operations=40, seed=seed)
            explorer.run_random()
            outcomes.add(target.value)
        assert len(outcomes) > 1

    def test_violation_halts_random(self):
        target = CounterTarget(limit=10, poison=4)
        explorer = Explorer(target, target.clock, max_depth=8,
                            max_operations=10_000, seed=3)
        stats = explorer.run_random()
        assert stats.violation is not None

    def test_samples_collected(self):
        target = CounterTarget(limit=100)
        explorer = Explorer(target, target.clock, max_depth=10,
                            max_operations=100, seed=1, sample_every=10)
        stats = explorer.run_random()
        assert len(stats.samples) == 10
        times = [sample[0] for sample in stats.samples]
        assert times == sorted(times)

    def test_ops_per_second_positive(self):
        target = CounterTarget(limit=10)
        explorer = Explorer(target, target.clock, max_depth=5,
                            max_operations=50, seed=2)
        stats = explorer.run_random()
        assert stats.ops_per_second > 0
