"""The per-state fsck oracle: silent corruption halts the exploration.

A deliberately broken ext2 whose block-free path leaks (``_free_block``
is a no-op) stays POSIX-indistinguishable from the stock driver -- the
cross-file-system comparison never fires.  With the oracle on, the
leaked blocks in the raw image are caught, the run stops with a
``corruption`` report carrying structured findings, and the trace
replays deterministically.
"""

from __future__ import annotations

import pytest

from repro.analysis.oracle import FsckCorruptionError, FsckOracle
from repro.clock import SimClock
from repro.core.mcfs import MCFS, MCFSOptions
from repro.core.report import DiscrepancyReport
from repro.fs.ext2 import Ext2FileSystemType, MountedExt2
from repro.mc.strategies import RemountStrategy
from repro.storage import RAMBlockDevice

SMALL_DEV = 256 * 1024


class LeakyMountedExt2(MountedExt2):
    """Never returns freed blocks to the bitmap: a silent space leak."""

    def _free_block(self, index: int) -> None:
        pass


class LeakyExt2Type(Ext2FileSystemType):
    name = "ext2"

    def mount(self, device, kernel=None):
        return LeakyMountedExt2(device, self.block_size,
                                cache=self._make_cache(device))


def build_mcfs(fsck_every, seed_leak=True):
    clock = SimClock()
    mcfs = MCFS(clock, MCFSOptions(fsck_every=fsck_every))
    mcfs.add_block_filesystem(
        "ext2-good", Ext2FileSystemType(),
        RAMBlockDevice(SMALL_DEV, clock=clock, name="ram0"),
        strategy=RemountStrategy())
    mcfs.add_block_filesystem(
        "ext2-leaky", LeakyExt2Type() if seed_leak else Ext2FileSystemType(),
        RAMBlockDevice(SMALL_DEV, clock=clock, name="ram1"),
        strategy=RemountStrategy())
    return mcfs


def run_until_caught():
    return build_mcfs(fsck_every=1).run_random(max_operations=400, seed=7)


def test_oracle_catches_silent_leak_as_corruption():
    result = run_until_caught()
    assert result.found_discrepancy
    assert result.report.kind == "corruption"
    assert isinstance(result.stats.violation, FsckCorruptionError)
    assert result.stats.stopped_reason == "property violation"
    assert {f.invariant for f in result.report.findings} == {"block-leak"}
    assert "ext2-leaky" in result.report.summary
    # the trace is replayable: the log holds the operations on the path
    # to the corrupt state (restores truncate abandoned branches)
    assert result.report.operations()
    assert len(result.report.operations()) <= result.report.operations_executed
    assert result.report.operations_executed < 400


def test_oracle_report_roundtrips_with_findings():
    report = run_until_caught().report
    clone = DiscrepancyReport.from_dict(report.to_dict())
    assert [f.to_dict() for f in clone.findings] == \
        [f.to_dict() for f in report.findings]
    assert [op.name for op in clone.operations()] == \
        [op.name for op in report.operations()]
    assert "fsck findings" in str(clone)
    assert "block-leak" in str(clone)


def test_oracle_run_is_deterministic():
    first, second = run_until_caught(), run_until_caught()
    assert first.report.summary == second.report.summary
    assert [op.describe() for op in first.report.operations()] == \
        [op.describe() for op in second.report.operations()]


def test_clean_pair_passes_oracle_and_counts_sweeps():
    result = build_mcfs(fsck_every=5, seed_leak=False).run_random(
        max_operations=40, seed=3)
    assert not result.found_discrepancy
    assert result.stats.fsck_checks == 40 // 5


def test_oracle_disabled_misses_the_leak():
    """Without the oracle the leak is invisible: that is the point."""
    result = build_mcfs(fsck_every=None).run_random(max_operations=120, seed=7)
    assert not result.found_discrepancy


def test_oracle_charges_simulated_time():
    mcfs = build_mcfs(fsck_every=1, seed_leak=False)
    mcfs.run_random(max_operations=10, seed=1)
    assert mcfs.clock.by_category.get("fsck", 0.0) > 0.0


def test_oracle_audits_deviceless_backends_too():
    from repro.verifs import VeriFS1, VeriFS2

    clock = SimClock()
    mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False,
                                   fsck_every=4))
    mcfs.add_verifs("verifs1", VeriFS1())
    mcfs.add_verifs("verifs2", VeriFS2())
    result = mcfs.run_random(max_operations=40, seed=2)
    assert not result.found_discrepancy
    assert result.stats.fsck_checks == 10


def test_oracle_standalone_returns_findings():
    mcfs = build_mcfs(fsck_every=None, seed_leak=False)
    mcfs._prepare()
    oracle = FsckOracle(mcfs.engine())
    assert oracle() == []
    assert oracle.checks_run == 1
    assert oracle.images_checked == 2


def test_oracle_standalone_raises_on_corruption():
    mcfs = build_mcfs(fsck_every=None, seed_leak=False)
    mcfs._prepare()
    fut = mcfs.futs[0]
    fs = fut.kernel.mount_at(fut.mountpoint).fs
    fs.block_bitmap.set(fs.block_bitmap.find_free())
    with pytest.raises(FsckCorruptionError) as excinfo:
        FsckOracle(mcfs.engine())()
    assert {f.invariant for f in excinfo.value.findings} == {"block-leak"}
    assert excinfo.value.report.kind == "corruption"
