"""Additional explorer/swarm mechanics not covered by the basic suite."""

import pytest

from repro.clock import SimClock
from repro.mc.explorer import ExplorationTarget, Explorer, PropertyViolation
from repro.mc.hashtable import VisitedStateTable
from repro.mc.memory import MemoryModel, OutOfMemoryError
from repro.mc.swarm import SwarmVerifier


class GridTarget(ExplorationTarget):
    """A 2-D grid walker: actions move right/up, saturating at `limit`.

    right/up commute (independent) -- handy for POR checks too.
    """

    def __init__(self, limit=3, clock=None):
        self.x = 0
        self.y = 0
        self.limit = limit
        self.clock = clock or SimClock()

    def actions(self):
        return ["right", "up"]

    def apply(self, action):
        self.clock.charge(0.001, "op")
        if action == "right":
            self.x = min(self.limit, self.x + 1)
        else:
            self.y = min(self.limit, self.y + 1)

    def checkpoint(self):
        return (self.x, self.y)

    def restore(self, token):
        self.x, self.y = token

    def abstract_state(self):
        return f"{self.x},{self.y}"

    def independent(self, first, second):
        return first != second  # right and up always commute


class TestDFSWithPOR:
    def test_por_preserves_grid_coverage(self):
        full_target = GridTarget()
        full = Explorer(full_target, full_target.clock, max_depth=6).run_dfs()
        por_target = GridTarget()
        por = Explorer(por_target, por_target.clock, max_depth=6).run_dfs(por=True)
        assert por.unique_states == full.unique_states == 16  # 4x4 grid
        assert por.operations < full.operations
        assert por.por_pruned > 0

    def test_por_with_no_independence_changes_nothing(self):
        class Dependent(GridTarget):
            def independent(self, first, second):
                return False

        a, b = Dependent(), Dependent()
        full = Explorer(a, a.clock, max_depth=4).run_dfs()
        por = Explorer(b, b.clock, max_depth=4).run_dfs(por=True)
        assert por.operations == full.operations
        assert por.por_pruned == 0


class TestBudgetsAndHooks:
    def test_max_unique_states_budget(self):
        target = GridTarget(limit=50)
        explorer = Explorer(target, target.clock, max_depth=100,
                            max_unique_states=5)
        stats = explorer.run_dfs()
        assert stats.stopped_reason == "state budget"
        assert stats.unique_states >= 5

    def test_sample_hook_invoked(self):
        calls = []
        target = GridTarget(limit=100)
        explorer = Explorer(target, target.clock, max_depth=50,
                            max_operations=40, sample_every=10,
                            sample_hook=lambda stats: calls.append(stats.operations))
        explorer.run_random()
        assert calls == [10, 20, 30, 40]

    def test_samples_carry_swap_usage(self):
        clock = SimClock()
        memory = MemoryModel(clock=clock, ram_bytes=4, swap_bytes=4000,
                             state_bytes=1)
        target = GridTarget(limit=100, clock=clock)
        visited = VisitedStateTable(memory=memory)
        explorer = Explorer(target, clock, visited=visited, max_depth=50,
                            max_operations=60, sample_every=20)
        stats = explorer.run_random()
        assert stats.samples
        assert stats.samples[-1][2] >= 0  # swap bytes recorded

    def test_out_of_memory_stops_dfs(self):
        clock = SimClock()
        memory = MemoryModel(clock=clock, ram_bytes=3, swap_bytes=2,
                             state_bytes=1)
        target = GridTarget(limit=20, clock=clock)
        visited = VisitedStateTable(memory=memory)
        explorer = Explorer(target, clock, visited=visited, max_depth=30)
        stats = explorer.run_dfs()
        assert stats.stopped_reason == "out of memory"

    def test_elapsed_and_rate_properties(self):
        target = GridTarget()
        explorer = Explorer(target, target.clock, max_depth=4)
        stats = explorer.run_dfs()
        assert stats.elapsed > 0
        assert stats.ops_per_second == pytest.approx(
            stats.operations / stats.elapsed)


class TestRandomWalkEdgeCases:
    def test_no_enabled_actions_stops(self):
        class Dead(GridTarget):
            def actions(self):
                return []

        target = Dead()
        explorer = Explorer(target, target.clock, max_depth=5,
                            max_operations=100)
        stats = explorer.run_random()
        assert stats.stopped_reason == "no enabled actions"
        assert stats.operations == 0

    def test_zero_backtrack_probability_walks_straight(self):
        target = GridTarget(limit=1000)
        explorer = Explorer(target, target.clock, max_depth=10_000,
                            max_operations=50, seed=1)
        explorer.run_random(backtrack_probability=0.0)
        # never backtracked through a revisit: x+y equals operations
        assert target.x + target.y == 50

    def test_high_backtrack_probability_still_terminates(self):
        target = GridTarget(limit=5)
        explorer = Explorer(target, target.clock, max_depth=5,
                            max_operations=100, seed=2)
        stats = explorer.run_random(backtrack_probability=0.95)
        assert stats.operations == 100


class TestSwarmDetails:
    @staticmethod
    def _factory(seed):
        target = GridTarget(limit=6)
        return target, target.clock

    def test_member_depth_diversification(self):
        swarm = SwarmVerifier(self._factory, members=3, max_depth=2,
                              max_operations=30, mode="dfs")
        result = swarm.run()
        depths = [member.stats.max_depth_reached for member in result.members]
        assert len(set(depths)) > 1  # members got different bounds

    def test_union_at_least_each_member(self):
        swarm = SwarmVerifier(self._factory, members=3, max_depth=4,
                              max_operations=40)
        result = swarm.run()
        union = result.union_coverage
        for member in result.members:
            assert member.coverage <= union

    def test_violation_stops_spawning(self):
        class Poison(GridTarget):
            def apply(self, action):
                super().apply(action)
                if (self.x, self.y) == (2, 1):
                    raise PropertyViolation("hit (2,1)")

        def factory(seed):
            target = Poison(limit=6)
            return target, target.clock

        swarm = SwarmVerifier(factory, members=10, max_depth=8,
                              max_operations=10_000)
        result = swarm.run()
        assert result.first_violation() is not None
        assert len(result.members) < 10  # stopped early
