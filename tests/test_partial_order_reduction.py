"""Tests for sleep-set partial-order reduction (§2)."""

import pytest

from repro import MCFS, MCFSOptions, SimClock, VeriFS1, VeriFS2, VeriFSBug
from repro.core.ops import Operation, OperationCatalog


class TestIndependenceRelation:
    cat = OperationCatalog

    def test_disjoint_paths_commute(self):
        a = Operation("create_file", ("/f0", 0o644))
        b = Operation("mkdir", ("/d1", 0o755))
        assert self.cat.independent(a, b)

    def test_same_path_conflicts(self):
        a = Operation("write_file", ("/f0", 0, 512, 65))
        b = Operation("truncate", ("/f0", 100))
        assert not self.cat.independent(a, b)

    def test_ancestor_conflicts(self):
        a = Operation("mkdir", ("/d0", 0o755))
        b = Operation("create_file", ("/d0/f2", 0o644))
        assert not self.cat.independent(a, b)
        assert not self.cat.independent(b, a)

    def test_rename_touches_both_ends(self):
        a = Operation("rename", ("/f0", "/f1"))
        assert not self.cat.independent(a, Operation("unlink", ("/f0",)))
        assert not self.cat.independent(a, Operation("unlink", ("/f1",)))
        assert self.cat.independent(a, Operation("mkdir", ("/d0", 0o755)))

    def test_relation_is_symmetric(self):
        operations = OperationCatalog(include_extended=True).operations()
        for a in operations[:12]:
            for b in operations[:12]:
                assert self.cat.independent(a, b) == self.cat.independent(b, a)

    def test_prefix_name_is_not_ancestor(self):
        # /f0 vs /f01: name-prefix but not path-ancestor -> independent
        a = Operation("unlink", ("/f0",))
        b = Operation("unlink", ("/f01",))
        assert self.cat.independent(a, b)


def _run(por: bool, bug=None, depth: int = 3):
    clock = SimClock()
    mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
    mcfs.add_verifs("v1", VeriFS1())
    mcfs.add_verifs("v2", VeriFS2(bugs=[bug] if bug else []))
    return mcfs.run_dfs(max_depth=depth, max_operations=500_000, por=por)


class TestPORSearch:
    def test_preserves_state_coverage(self):
        full = _run(por=False)
        reduced = _run(por=True)
        assert reduced.unique_states == full.unique_states
        assert full.stats.stopped_reason == reduced.stats.stopped_reason

    def test_executes_fewer_transitions(self):
        full = _run(por=False)
        reduced = _run(por=True)
        assert reduced.operations < full.operations
        assert reduced.stats.por_pruned > 0

    def test_full_dfs_prunes_nothing(self):
        full = _run(por=False)
        assert full.stats.por_pruned == 0

    def test_still_finds_bugs(self):
        result = _run(por=True, bug=VeriFSBug.WRITE_HOLE_STALE)
        assert result.found_discrepancy
        assert result.report.failing_operation.operation.name == "write_file"

    def test_por_is_cheaper_in_sim_time_too(self):
        full = _run(por=False)
        reduced = _run(por=True)
        assert reduced.sim_time < full.sim_time
