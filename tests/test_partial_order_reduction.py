"""Tests for sleep-set partial-order reduction (§2)."""

import pytest

from repro import MCFS, MCFSOptions, SimClock, VeriFS1, VeriFS2, VeriFSBug
from repro.core.ops import Operation, OperationCatalog


class TestIndependenceRelation:
    cat = OperationCatalog

    def test_disjoint_paths_commute(self):
        a = Operation("create_file", ("/f0", 0o644))
        b = Operation("mkdir", ("/d1", 0o755))
        assert self.cat.independent(a, b)

    def test_same_path_conflicts(self):
        a = Operation("write_file", ("/f0", 0, 512, 65))
        b = Operation("truncate", ("/f0", 100))
        assert not self.cat.independent(a, b)

    def test_ancestor_conflicts(self):
        a = Operation("mkdir", ("/d0", 0o755))
        b = Operation("create_file", ("/d0/f2", 0o644))
        assert not self.cat.independent(a, b)
        assert not self.cat.independent(b, a)

    def test_rename_touches_both_ends(self):
        a = Operation("rename", ("/f0", "/f1"))
        assert not self.cat.independent(a, Operation("unlink", ("/f0",)))
        assert not self.cat.independent(a, Operation("unlink", ("/f1",)))
        assert self.cat.independent(a, Operation("mkdir", ("/d0", 0o755)))

    def test_relation_is_symmetric(self):
        operations = OperationCatalog(include_extended=True).operations()
        for a in operations[:12]:
            for b in operations[:12]:
                assert self.cat.independent(a, b) == self.cat.independent(b, a)

    def test_prefix_name_is_not_ancestor(self):
        # /f0 vs /f01: name-prefix but not path-ancestor -> independent
        a = Operation("unlink", ("/f0",))
        b = Operation("unlink", ("/f01",))
        assert self.cat.independent(a, b)

    def test_symlink_touches_only_the_link_path(self):
        """Regression: symlink creation stores the target as an
        uninterpreted string -- it must not be reported as touched, or
        symlink("/f0", "/sym0") wrongly serialises against every /f0
        operation and sleep-set reductions shrink."""
        link = Operation("symlink", ("/f0", "/sym0"))
        assert self.cat.paths_touched(link) == ("/sym0",)
        # commutes with operations on the *target* path ...
        assert self.cat.independent(link, Operation("unlink", ("/f0",)))
        assert self.cat.independent(
            link, Operation("write_file", ("/f0", 0, 512, 65)))
        # ... but still conflicts with operations on the link path
        assert not self.cat.independent(link, Operation("unlink", ("/sym0",)))

    def test_open_flags_touches_its_path(self):
        op = Operation("open_flags", ("/f0", 0o100 | 0o200))
        assert self.cat.paths_touched(op) == ("/f0",)
        assert not self.cat.independent(op, Operation("unlink", ("/f0",)))
        assert self.cat.independent(op, Operation("mkdir", ("/d1", 0o755)))


class TestCommutationSoundness:
    """Operations declared independent must actually commute: executing
    both orders from the same state must land in the same abstract state
    (the soundness condition sleep-set POR relies on)."""

    @staticmethod
    def _fresh_fut():
        from repro.core.futs import make_verifs_fut

        clock = SimClock()
        return make_verifs_fut("v", VeriFS2(), clock)

    @staticmethod
    def _state_after(catalog, first, second):
        from repro.core.abstraction import AbstractionOptions

        fut = TestCommutationSoundness._fresh_fut()
        # a populated starting state so most operations act on real files
        for op in (Operation("create_file", ("/f0", 0o644)),
                   Operation("write_file", ("/f0", 0, 512, 65)),
                   Operation("create_file", ("/f1", 0o644)),
                   Operation("mkdir", ("/d0", 0o755)),
                   Operation("create_file", ("/d0/f2", 0o644))):
            catalog.execute(fut, op)
        catalog.execute(fut, first)
        catalog.execute(fut, second)
        return fut.abstract_state(AbstractionOptions())

    def test_independent_pairs_commute(self):
        catalog = OperationCatalog(include_extended=True)
        operations = catalog.operations()
        checked = 0
        for i, a in enumerate(operations):
            for b in operations[i + 1:]:
                if not catalog.independent(a, b):
                    continue
                checked += 1
                forward = self._state_after(catalog, a, b)
                backward = self._state_after(catalog, b, a)
                assert forward == backward, (a.describe(), b.describe())
        assert checked > 50  # the relation must not be vacuously empty

    def test_symlink_target_pairs_commute(self):
        """The pairs the symlink paths_touched fix newly declares
        independent really do commute."""
        catalog = OperationCatalog(include_extended=True)
        link = Operation("symlink", ("/f0", "/sym0"))
        for other in (Operation("unlink", ("/f0",)),
                      Operation("truncate", ("/f0", 100)),
                      Operation("write_file", ("/f0", 0, 512, 65))):
            assert catalog.independent(link, other)
            assert (self._state_after(catalog, link, other)
                    == self._state_after(catalog, other, link))


def _run(por: bool, bug=None, depth: int = 3):
    clock = SimClock()
    mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
    mcfs.add_verifs("v1", VeriFS1())
    mcfs.add_verifs("v2", VeriFS2(bugs=[bug] if bug else []))
    return mcfs.run_dfs(max_depth=depth, max_operations=500_000, por=por)


class TestPORSearch:
    def test_preserves_state_coverage(self):
        full = _run(por=False)
        reduced = _run(por=True)
        assert reduced.unique_states == full.unique_states
        assert full.stats.stopped_reason == reduced.stats.stopped_reason

    def test_executes_fewer_transitions(self):
        full = _run(por=False)
        reduced = _run(por=True)
        assert reduced.operations < full.operations
        assert reduced.stats.por_pruned > 0

    def test_full_dfs_prunes_nothing(self):
        full = _run(por=False)
        assert full.stats.por_pruned == 0

    def test_still_finds_bugs(self):
        result = _run(por=True, bug=VeriFSBug.WRITE_HOLE_STALE)
        assert result.found_discrepancy
        assert result.report.failing_operation.operation.name == "write_file"

    def test_por_is_cheaper_in_sim_time_too(self):
        full = _run(por=False)
        reduced = _run(por=True)
        assert reduced.sim_time < full.sim_time
