"""Determinism linter: rule units, pragma allowlisting, CI enforcement.

The last test is the gate: it runs ``python -m repro lint --strict``
over the installed package exactly the way CI does, so any future
nondeterminism hazard (unseeded RNG, wall-clock read, set-order
dependence) fails the tier-1 suite until fixed or justified inline.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import repro
from repro.analysis.lint import iter_python_files, lint_source, run_lint


def lint(snippet: str):
    return lint_source(textwrap.dedent(snippet), "snippet.py")


def invariants(snippet: str):
    return [f.invariant for f in lint(snippet)]


# ---------------------------------------------------------------- the rules --
def test_unseeded_module_global_random():
    assert invariants("""
        import random
        x = random.randint(0, 5)
    """) == ["unseeded-random"]


def test_unseeded_random_constructor():
    assert invariants("""
        import random
        rng = random.Random()
    """) == ["unseeded-random"]


def test_seeded_random_is_fine():
    assert invariants("""
        import random
        rng = random.Random(1234)
        value = rng.random()
    """) == []


def test_from_import_random_functions():
    assert invariants("""
        from random import choice
        pick = choice([1, 2, 3])
    """) == ["unseeded-random"]


def test_wall_clock_calls():
    assert invariants("""
        import time
        from datetime import datetime
        a = time.time()
        b = time.perf_counter()
        c = datetime.now()
    """) == ["wall-clock"] * 3


def test_from_import_wall_clock():
    assert invariants("""
        from time import monotonic
        t = monotonic()
    """) == ["wall-clock"]


def test_time_sleep_is_not_flagged():
    assert invariants("""
        import time
        time.sleep(0)
    """) == []


def test_builtin_hash():
    assert invariants("x = hash('key')") == ["builtin-hash"]


def test_unordered_iteration_over_set():
    assert invariants("""
        def f():
            items = {3, 1, 2}
            return [i for i in items]
    """) == ["unordered-iteration"]


def test_sorted_set_iteration_is_fine():
    assert invariants("""
        def f(items):
            seen = set(items)
            return [i for i in sorted(seen)]
    """) == []


def test_set_rebound_to_list_is_fine():
    assert invariants("""
        def f(items):
            seen = set(items)
            seen = sorted(seen)
            return [i for i in seen]
    """) == []


def test_direct_set_expression_iteration():
    assert invariants("""
        for name in {"b", "a"}:
            print(name)
    """) == ["unordered-iteration"]


def test_raw_visited_state_access():
    assert invariants("count = len(table._seen)") == ["raw-visited-state"]


def test_raw_visited_state_allowed_inside_mc_package():
    path = os.path.join(os.path.dirname(repro.__file__),
                        "mc", "hashtable.py")
    findings = run_lint([path])
    assert not [f for f in findings if f.invariant == "raw-visited-state"]


def test_visited_table_public_api_is_fine():
    assert invariants("seen = table.export_seen()") == []


def test_raw_entry_cache_access():
    assert invariants("store = cache._merkle") == ["raw-entry-cache"]
    assert invariants("memo = record._enc_memo") == ["raw-entry-cache"]


def test_raw_entry_cache_allowed_inside_abstraction_module():
    path = os.path.join(os.path.dirname(repro.__file__),
                        "core", "abstraction.py")
    findings = run_lint([path])
    assert not [f for f in findings if f.invariant == "raw-entry-cache"]


def test_entry_cache_public_api_is_fine():
    assert invariants("records = cache.refresh(kernel, '/mnt', mount)") == []
    assert invariants("cache.invalidate()") == []


def test_syntax_error_is_reported_not_raised():
    assert invariants("def broken(:\n") == ["syntax-error"]


def test_unsorted_fs_listing():
    assert invariants("""
        import os
        names = os.listdir("/tmp")
    """) == ["unsorted-fs-listing"]


def test_unsorted_fs_listing_variants():
    assert invariants("""
        import glob
        import os
        a = glob.glob("*.img")
        b = glob.iglob("*.img")
        c = os.scandir(".")
    """) == ["unsorted-fs-listing"] * 3


def test_from_import_listing_and_alias():
    assert invariants("""
        from os import listdir as ls
        names = ls("/tmp")
    """) == ["unsorted-fs-listing"]


def test_iterdir_listing():
    assert invariants("""
        def walk(path):
            return [p for p in path.iterdir()]
    """) == ["unsorted-fs-listing"]


def test_sorted_listing_is_fine():
    assert invariants("""
        import os
        import glob
        names = sorted(os.listdir("/tmp"))
        images = sorted(glob.glob("*.img"))
    """) == []


def test_set_pop():
    assert invariants("""
        def f(items):
            pending = set(items)
            return pending.pop()
    """) == ["set-pop"]


def test_set_pop_on_literal():
    assert invariants("""
        def f():
            work = {1, 2, 3}
            while work:
                work.pop()
    """) == ["set-pop"]


def test_dict_and_list_pop_are_fine():
    assert invariants("""
        def f(mapping, items):
            a = mapping.pop("key")
            b = items.pop()
            c = mapping.pop("key", None)
            return a, b, c
    """) == []


def test_set_rebound_before_pop_is_fine():
    assert invariants("""
        def f(items):
            work = set(items)
            work = sorted(work)
            return work.pop()
    """) == []


# ------------------------------------------------------------------ pragmas --
def test_pragma_with_justification_suppresses():
    assert invariants("""
        def f(items):
            seen = set(items)
            for i in seen:  # det-lint: allow[unordered-iteration] order-free count
                pass
    """) == []


def test_bare_pragma_is_itself_a_finding():
    assert invariants("""
        def f(items):
            seen = set(items)
            for i in seen:  # det-lint: allow[unordered-iteration]
                pass
    """) == ["bare-pragma"]


def test_unused_pragma_is_warned():
    findings = lint("""
        value = 1  # det-lint: allow[wall-clock] no clock here at all
    """)
    assert [f.invariant for f in findings] == ["unused-pragma"]
    assert findings[0].severity == "warn"


def test_pragma_in_docstring_is_ignored():
    assert invariants('''
        def f():
            """Example: use # det-lint: allow[wall-clock] reason here."""
            return 1
    ''') == []


def test_wrong_rule_pragma_does_not_suppress():
    assert invariants("""
        import time
        t = time.time()  # det-lint: allow[unordered-iteration] wrong rule
    """) == ["unused-pragma", "wall-clock"]


# ------------------------------------------------------------ the codebase --
def test_repro_package_lints_clean():
    findings = run_lint()
    assert findings == [], "\n".join(f.describe() for f in findings)


def test_runner_walks_the_whole_package():
    files = iter_python_files(run_lint.__globals__["default_paths"]())
    names = {os.path.basename(f) for f in files}
    assert {"explorer.py", "ext2.py", "cli.py", "clock.py"} <= names
    assert len(files) > 40


def test_cli_lint_strict_passes_as_in_ci():
    """The CI gate: ``python -m repro lint --strict`` must exit 0."""
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--strict"],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s), 0 error(s)" in proc.stdout
