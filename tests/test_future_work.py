"""Tests for the paper's §7 future-work features, implemented here:

* majority voting across >= 3 file systems;
* the VFS-level checkpoint/restore API for kernel file systems;
* resumable checking (persisting the visited-state table);
* behavioural coverage tracking.
"""

import os

import pytest

from repro import (
    CoverageTracker,
    Ext2FileSystemType,
    Ext4FileSystemType,
    MCFS,
    MCFSOptions,
    RAMBlockDevice,
    SimClock,
    VeriFS1,
    VeriFS2,
    VeriFSBug,
    VfsCheckpointStrategy,
    vote_on_outcomes,
    vote_on_states,
)
from repro.core.integrity import Outcome
from repro.core.ops import Operation, OperationCatalog
from repro.core.voting import Verdict, describe_verdict
from repro.errors import ENOENT, ENOSPC
from repro.mc.hashtable import VisitedStateTable
from repro.mc.persistence import load_checker_state, save_checker_state


class TestMajorityVoting:
    def test_unanimous(self):
        verdict = vote_on_outcomes({
            "a": Outcome.success(0), "b": Outcome.success(0), "c": Outcome.success(0),
        })
        assert verdict.unanimous
        assert verdict.decisive

    def test_outlier_identified(self):
        verdict = vote_on_outcomes({
            "a": Outcome.success(0), "b": Outcome.success(0),
            "c": Outcome.failure(ENOSPC),
        })
        assert verdict.suspects == ["c"]
        assert verdict.decisive

    def test_different_errnos_are_different_votes(self):
        verdict = vote_on_outcomes({
            "a": Outcome.failure(ENOENT), "b": Outcome.failure(ENOENT),
            "c": Outcome.failure(ENOSPC),
        })
        assert verdict.suspects == ["c"]

    def test_two_way_tie_is_indecisive(self):
        verdict = vote_on_outcomes({
            "a": Outcome.success(0), "b": Outcome.failure(ENOENT),
        })
        assert not verdict.decisive
        assert len(verdict.suspects) == 1

    def test_state_vote(self):
        verdict = vote_on_states({"a": "h1", "b": "h1", "c": "h2"})
        assert verdict.suspects == ["c"]

    def test_describe_formats(self):
        assert "agree" in describe_verdict(Verdict(suspects=[], majority=["a"]))
        assert "culprit" in describe_verdict(
            Verdict(suspects=["c"], majority=["a", "b"], decisive=True))
        assert "tie" in describe_verdict(
            Verdict(suspects=["b"], majority=["a"], decisive=False))

    def test_end_to_end_names_the_buggy_fs(self):
        clock = SimClock()
        mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False,
                                       majority_voting=True))
        mcfs.add_verifs("verifs1", VeriFS1())
        mcfs.add_block_filesystem("ext4", Ext4FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock))
        mcfs.add_verifs("buggy", VeriFS2(bugs=[VeriFSBug.SIZE_UPDATE_ON_CAPACITY_ONLY]))
        result = mcfs.run_dfs(max_depth=3, max_operations=100_000)
        assert result.found_discrepancy
        assert result.report.suspects == ["buggy"]
        assert "culprit" in str(result.report)

    def test_voting_off_means_no_suspects(self):
        clock = SimClock()
        mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
        mcfs.add_verifs("verifs1", VeriFS1())
        mcfs.add_verifs("buggy", VeriFS2(bugs=[VeriFSBug.SIZE_UPDATE_ON_CAPACITY_ONLY]))
        result = mcfs.run_dfs(max_depth=3, max_operations=100_000)
        assert result.found_discrepancy
        assert result.report.suspects == []


class TestVfsCheckpointStrategy:
    def _fut(self, clock):
        from repro.core.futs import make_block_fut
        return make_block_fut("ext2", Ext2FileSystemType(),
                              RAMBlockDevice(256 * 1024, clock=clock), clock)

    def test_restore_is_exact_without_remount(self, clock):
        from repro.core.abstraction import AbstractionOptions
        fut = self._fut(clock)
        strategy = VfsCheckpointStrategy()
        options = AbstractionOptions()
        before = fut.abstract_state(options)
        token = strategy.checkpoint(fut)
        fut.kernel.mkdir(fut.mountpoint + "/later")
        strategy.restore(fut, token)
        assert fut.abstract_state(options) == before
        assert fut.remount_count == 0  # the whole point

    def test_restored_fs_is_consistent(self, clock):
        from repro.kernel.fdtable import O_CREAT, O_WRONLY
        fut = self._fut(clock)
        strategy = VfsCheckpointStrategy()
        fd = fut.kernel.open(fut.mountpoint + "/f", O_CREAT | O_WRONLY)
        fut.kernel.write(fd, b"kept")
        fut.kernel.close(fd)
        token = strategy.checkpoint(fut)
        fut.kernel.unlink(fut.mountpoint + "/f")
        strategy.restore(fut, token)
        assert fut.kernel.stat(fut.mountpoint + "/f").st_size == 4
        assert fut.check_consistency() == []
        # continue operating after the restore
        fut.kernel.mkdir(fut.mountpoint + "/d")
        fut.remount()
        assert fut.check_consistency() == []

    def test_token_is_reusable(self, clock):
        fut = self._fut(clock)
        strategy = VfsCheckpointStrategy()
        token = strategy.checkpoint(fut)
        fut.kernel.mkdir(fut.mountpoint + "/a")
        strategy.restore(fut, token)
        fut.kernel.mkdir(fut.mountpoint + "/b")
        strategy.restore(fut, token)
        names = [e.name for e in fut.kernel.getdents(fut.mountpoint)]
        assert names == ["lost+found"]

    def test_full_check_run_is_clean_and_remount_free(self):
        clock = SimClock()
        mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
        mcfs.add_block_filesystem("ext2", Ext2FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock),
                                  strategy=VfsCheckpointStrategy())
        mcfs.add_block_filesystem("ext4", Ext4FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock),
                                  strategy=VfsCheckpointStrategy())
        result = mcfs.run_dfs(max_depth=2, max_operations=2_000)
        assert not result.found_discrepancy, str(result.report)
        assert all(fut.remount_count == 0 for fut in mcfs.futs)

    def test_faster_than_remount_strategy(self):
        def measure(strategy_factory):
            clock = SimClock()
            mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
            for label, fstype in (("ext2", Ext2FileSystemType()),
                                  ("ext4", Ext4FileSystemType())):
                mcfs.add_block_filesystem(
                    label, fstype, RAMBlockDevice(256 * 1024, clock=clock),
                    strategy=strategy_factory())
            return mcfs.run_random(max_operations=150, seed=9).ops_per_second

        from repro.mc.strategies import RemountStrategy
        assert measure(VfsCheckpointStrategy) > measure(RemountStrategy)

    def test_requires_a_device(self, clock):
        from repro.core.futs import make_verifs_fut
        from repro.errors import FsError
        fut = make_verifs_fut("v", VeriFS2(), clock)
        with pytest.raises(FsError):
            VfsCheckpointStrategy().checkpoint(fut)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        table = VisitedStateTable()
        table.visit("aaa", 2)
        table.visit("bbb", 0)
        path = str(tmp_path / "state.json")
        save_checker_state(path, table, operations_completed=42, runs=3)
        snapshot = load_checker_state(path)
        assert snapshot is not None
        assert len(snapshot.visited) == 2
        assert "aaa" in snapshot.visited
        assert snapshot.visited._seen["aaa"] == 2
        assert snapshot.operations_completed == 42
        assert snapshot.runs == 3

    def test_missing_file_returns_none(self, tmp_path):
        assert load_checker_state(str(tmp_path / "nope.json")) is None

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "buckets": 8, "seen": {}}')
        with pytest.raises(ValueError):
            load_checker_state(str(path))

    def test_save_is_atomic_no_tmp_left(self, tmp_path):
        table = VisitedStateTable()
        table.add("x")
        path = str(tmp_path / "state.json")
        save_checker_state(path, table)
        assert not os.path.exists(path + ".tmp")

    def test_resumed_run_skips_known_states(self, tmp_path):
        state_file = str(tmp_path / "checker.json")

        def fresh():
            clock = SimClock()
            mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
            mcfs.add_verifs("v1", VeriFS1())
            mcfs.add_verifs("v2", VeriFS2())
            return mcfs

        first = fresh().run_dfs(max_depth=2, state_file=state_file)
        snapshot = load_checker_state(state_file)
        assert snapshot.runs == 1
        states_after_first = len(snapshot.visited)
        assert states_after_first >= first.unique_states

        # resuming over an identical space discovers nothing new
        second = fresh().run_dfs(max_depth=2, state_file=state_file)
        assert second.unique_states == 0
        snapshot = load_checker_state(state_file)
        assert snapshot.runs == 2
        assert len(snapshot.visited) == states_after_first

    def test_resume_accumulates_operation_count(self, tmp_path):
        state_file = str(tmp_path / "checker.json")

        def fresh():
            clock = SimClock()
            mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
            mcfs.add_verifs("v1", VeriFS1())
            mcfs.add_verifs("v2", VeriFS2())
            return mcfs

        fresh().run_random(max_operations=100, seed=1, state_file=state_file)
        fresh().run_random(max_operations=150, seed=2, state_file=state_file)
        snapshot = load_checker_state(state_file)
        assert snapshot.operations_completed == 250


class TestCoverage:
    def test_records_operations_and_outcomes(self):
        catalog = OperationCatalog(include_extended=False)
        tracker = CoverageTracker(catalog)
        op = catalog.operations()[0]
        tracker.record(op, {"a": Outcome.success(0), "b": Outcome.success(0)})
        tracker.record(op, {"a": Outcome.failure(ENOENT), "b": Outcome.failure(ENOENT)})
        report = tracker.report()
        assert report.operations_covered == 1
        assert (op.name, "ok") in report.outcome_pairs
        assert (op.name, "ENOENT") in report.outcome_pairs
        assert report.error_paths_seen == 1

    def test_out_of_catalog_operations_are_counted(self):
        """Ops executed but absent from the catalog must be surfaced,
        not silently dropped from both sides of the percentage."""
        catalog = OperationCatalog(include_extended=False)
        tracker = CoverageTracker(catalog)
        known = catalog.operations()[0]
        foreign = Operation("write_file", ("/not-in-pool", 0, 4097, 65))
        assert foreign not in set(catalog.operations())
        tracker.record(known, {"a": Outcome.success(0)})
        tracker.record(foreign, {"a": Outcome.success(4097)})
        report = tracker.report()
        assert report.operations_covered == 1
        assert report.operations_total == len(catalog.operations())
        assert report.out_of_catalog == 1
        assert "out of catalog" in report.render()

    def test_out_of_catalog_silent_when_none(self):
        catalog = OperationCatalog(include_extended=False)
        tracker = CoverageTracker(catalog)
        tracker.record(catalog.operations()[0], {"a": Outcome.success(0)})
        report = tracker.report()
        assert report.out_of_catalog == 0
        assert "out of catalog" not in report.render()

    def test_per_class_counts(self):
        tracker = CoverageTracker()
        op = Operation("mkdir", ("/d", 0o755))
        tracker.record(op, {"a": Outcome.success(0)})
        tracker.record(op, {"a": Outcome.failure(ENOSPC)})
        executions, pairs = tracker.per_class_counts()
        assert executions["mkdir"] == 2
        assert pairs["mkdir"] == 2  # ok + ENOSPC

    def test_divergent_pairs_detected(self):
        tracker = CoverageTracker()
        op = Operation("mkdir", ("/d", 0o755))
        tracker.record(op, {"a": Outcome.success(0), "b": Outcome.failure(ENOSPC)})
        divergent = tracker.report().divergent_pairs()
        assert ("mkdir", "ENOSPC") in divergent["a"]
        assert ("mkdir", "ok") in divergent["b"]

    def test_full_run_reaches_full_operation_coverage(self):
        clock = SimClock()
        mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False,
                                       track_coverage=True))
        mcfs.add_verifs("v1", VeriFS1())
        mcfs.add_verifs("v2", VeriFS2())
        mcfs.run_dfs(max_depth=2, max_operations=5_000)
        report = mcfs.coverage_report()
        assert report.operation_coverage == 1.0
        assert report.error_paths_seen > 0

    def test_render_is_readable(self):
        clock = SimClock()
        mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False,
                                       track_coverage=True))
        mcfs.add_verifs("v1", VeriFS1())
        mcfs.add_verifs("v2", VeriFS2())
        mcfs.run_random(max_operations=150, seed=4)
        text = mcfs.coverage_report().render()
        assert "operation coverage" in text
        assert "outcome pairs" in text

    def test_coverage_off_raises(self):
        clock = SimClock()
        mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
        mcfs.add_verifs("v1", VeriFS1())
        mcfs.add_verifs("v2", VeriFS2())
        with pytest.raises(ValueError):
            mcfs.coverage_report()
