"""Tests for the write-back LRU buffer cache."""

import pytest

from repro.clock import SimClock
from repro.errors import FsError
from repro.fs.base import BufferCache, pack_dirent, unpack_dirents
from repro.storage import RAMBlockDevice


@pytest.fixture
def device():
    return RAMBlockDevice(64 * 1024, clock=SimClock())


@pytest.fixture
def cache(device):
    return BufferCache(device, 1024, capacity_blocks=4)


class TestWriteBack:
    def test_write_is_deferred(self, cache, device):
        cache.write_block(0, b"cached")
        assert device.read(0, 6) == b"\x00" * 6  # not on device yet

    def test_flush_persists(self, cache, device):
        cache.write_block(0, b"cached")
        cache.flush()
        assert device.read(0, 6) == b"cached"

    def test_read_hits_cache(self, cache, device):
        cache.write_block(0, b"cached")
        device.write(0, b"stale!")
        assert cache.read_block(0)[:6] == b"cached"

    def test_read_miss_goes_to_device(self, cache, device):
        device.write(0, b"ondisk")
        assert cache.read_block(0)[:6] == b"ondisk"
        assert cache.stats.misses == 1

    def test_drop_discards_dirty(self, cache, device):
        cache.write_block(0, b"gone")
        cache.drop()
        assert cache.read_block(0)[:4] == b"\x00\x00\x00\x00"

    def test_flush_clears_dirty_set(self, cache):
        cache.write_block(0, b"x")
        cache.flush()
        assert cache.dirty_count == 0

    def test_oversized_write_rejected(self, cache):
        with pytest.raises(FsError):
            cache.write_block(0, b"x" * 2048)

    def test_out_of_range_block_rejected(self, cache):
        with pytest.raises(FsError):
            cache.read_block(10_000)


class TestLRUEviction:
    def test_capacity_enforced(self, cache):
        for block in range(6):
            cache.read_block(block)
        assert cache.cached_count <= 4
        assert cache.stats.evictions == 2

    def test_eviction_writes_back_dirty(self, cache, device):
        cache.write_block(0, b"dirty0")
        for block in range(1, 6):
            cache.read_block(block)  # push block 0 out
        assert device.read(0, 6) == b"dirty0"

    def test_lru_order_respects_recency(self, cache):
        for block in range(4):
            cache.read_block(block)
        cache.read_block(0)  # refresh block 0
        cache.read_block(4)  # evicts block 1, not 0
        assert 0 in cache._cache
        assert 1 not in cache._cache

    def test_stale_reread_after_eviction(self, cache, device):
        """The §3.2 mechanism: after eviction, a block re-reads the device --
        so an under-the-mount image restore becomes visible."""
        cache.write_block(0, b"old")
        cache.flush()
        for block in range(1, 6):
            cache.read_block(block)
        device.write(0, b"new")  # "restored" behind the cache's back
        assert cache.read_block(0)[:3] == b"new"


class TestDirentHelpers:
    def test_roundtrip(self):
        data = pack_dirent(5, 8, "hello") + pack_dirent(9, 4, "dir")
        assert unpack_dirents(data) == [(5, 8, "hello"), (9, 4, "dir")]

    def test_zero_ino_terminates(self):
        data = pack_dirent(5, 8, "keep") + b"\x00" * 10 + pack_dirent(6, 8, "lost")
        assert unpack_dirents(data) == [(5, 8, "keep")]

    def test_unicode_names(self):
        data = pack_dirent(1, 8, "héllo")
        assert unpack_dirents(data) == [(1, 8, "héllo")]

    def test_name_too_long_rejected(self):
        with pytest.raises(ValueError):
            pack_dirent(1, 8, "x" * 300)

    def test_empty_stream(self):
        assert unpack_dirents(b"") == []
        assert unpack_dirents(b"\x00" * 64) == []
