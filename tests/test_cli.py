"""Tests for the command-line interface."""

import pytest

from repro.cli import BUG_PAIRS, FILESYSTEMS, main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in FILESYSTEMS:
            assert name in output
        assert "remount" in output
        assert "write-hole-stale" in output


class TestCheck:
    def test_clean_pair_exits_zero(self, capsys):
        code = main(["check", "--fs", "verifs1", "--fs", "verifs2",
                     "--mode", "dfs", "--depth", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "no discrepancies found" in output
        assert "operations" in output

    def test_single_fs_rejected(self, capsys):
        assert main(["check", "--fs", "ext2"]) == 2
        assert "at least twice" in capsys.readouterr().err

    def test_unknown_fs_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "--fs", "ext2", "--fs", "reiserfs",
                  "--depth", "1"])

    def test_duplicate_fs_names_get_unique_labels(self, capsys):
        code = main(["check", "--fs", "verifs2", "--fs", "verifs2",
                     "--mode", "random", "--max-ops", "50"])
        assert code == 0

    def test_kernel_pair(self, capsys):
        code = main(["check", "--fs", "ext2", "--fs", "ext4",
                     "--mode", "random", "--max-ops", "60"])
        assert code == 0

    def test_explicit_strategy(self, capsys):
        code = main(["check", "--fs", "ext2", "--fs", "ext4",
                     "--strategy", "vfs-api",
                     "--mode", "random", "--max-ops", "60"])
        assert code == 0

    def test_coverage_flag(self, capsys):
        code = main(["check", "--fs", "verifs1", "--fs", "verifs2",
                     "--mode", "random", "--max-ops", "80", "--coverage"])
        assert code == 0
        assert "operation coverage" in capsys.readouterr().out

    def test_voting_flag_three_way(self, capsys):
        code = main(["check", "--fs", "verifs1", "--fs", "ext4",
                     "--fs", "verifs2", "--voting",
                     "--mode", "random", "--max-ops", "60"])
        assert code == 0

    def test_state_file_roundtrip(self, tmp_path, capsys):
        state_file = str(tmp_path / "state.json")
        assert main(["check", "--fs", "verifs1", "--fs", "verifs2",
                     "--mode", "dfs", "--depth", "2",
                     "--state-file", state_file]) == 0
        capsys.readouterr()
        assert main(["check", "--fs", "verifs1", "--fs", "verifs2",
                     "--mode", "dfs", "--depth", "2",
                     "--state-file", state_file]) == 0
        output = capsys.readouterr().out
        assert "new states : 0" in output  # resumed: nothing re-explored


class TestBugdemo:
    def test_every_bug_reproducible(self, capsys):
        for bug_id in BUG_PAIRS:
            code = main(["bugdemo", "--bug", bug_id])
            output = capsys.readouterr().out
            assert code == 1, bug_id  # exit 1 = discrepancy found
            assert "MCFS discrepancy" in output, bug_id

    def test_unknown_bug(self, capsys):
        assert main(["bugdemo", "--bug", "not-a-bug"]) == 2
        assert "unknown bug" in capsys.readouterr().err
