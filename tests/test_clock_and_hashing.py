"""Tests for the virtual clock and hashing helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.clock import Cost, SimClock
from repro.util.hashing import md5_hex, md5_of_iter, stable_hash64


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_charge_advances(self):
        clock = SimClock()
        clock.charge(1.5, "io")
        clock.charge(0.5, "io")
        assert clock.now == 2.0

    def test_categories_accumulate(self):
        clock = SimClock()
        clock.charge(1.0, "io")
        clock.charge(2.0, "mount")
        clock.charge(3.0, "io")
        assert clock.by_category == {"io": 4.0, "mount": 2.0}

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge(-1.0)

    def test_elapsed_since(self):
        clock = SimClock()
        start = clock.now
        clock.charge(5.0)
        assert clock.elapsed_since(start) == 5.0

    def test_reset(self):
        clock = SimClock()
        clock.charge(1.0, "x")
        clock.reset()
        assert clock.now == 0.0
        assert clock.by_category == {}

    def test_snapshot_is_a_copy(self):
        clock = SimClock()
        clock.charge(1.0, "x")
        snap = clock.snapshot()
        clock.charge(1.0, "x")
        assert snap == {"x": 1.0}

    def test_cost_ordering_matches_paper(self):
        # the latency hierarchy the evaluation depends on
        assert Cost.RAM_ACCESS < Cost.SSD_ACCESS < Cost.HDD_ACCESS
        assert Cost.IOCTL_CHECKPOINT < Cost.MOUNT_FIXED < Cost.VM_CHECKPOINT
        assert Cost.RAM_STATE_TOUCH < Cost.SWAP_STATE_TOUCH


class TestHashing:
    def test_md5_known_value(self):
        assert md5_hex(b"") == "d41d8cd98f00b204e9800998ecf8427e"

    def test_md5_concatenates(self):
        assert md5_hex(b"ab", b"cd") == md5_hex(b"abcd")

    def test_md5_accepts_str(self):
        assert md5_hex("abc") == md5_hex(b"abc")

    def test_md5_of_iter_matches(self):
        chunks = [b"a", b"bc", b"def"]
        assert md5_of_iter(chunks) == md5_hex(b"abcdef")

    def test_stable_hash64_deterministic(self):
        assert stable_hash64("hello") == stable_hash64("hello")

    def test_stable_hash64_fits_64_bits(self):
        assert 0 <= stable_hash64("x") < 2**64


@given(st.binary(max_size=200), st.binary(max_size=200))
def test_property_md5_split_invariant(a, b):
    assert md5_hex(a, b) == md5_hex(a + b)


@given(st.text(max_size=64))
def test_property_stable_hash_stable(text):
    assert stable_hash64(text) == stable_hash64(text)
