"""Determinism guarantees and virtual-time accounting."""

import pytest

from repro import (
    Ext2FileSystemType,
    Ext4FileSystemType,
    MCFS,
    MCFSOptions,
    RAMBlockDevice,
    SimClock,
    VeriFS1,
    VeriFS2,
    VeriFSBug,
)


def build_buggy(seed_independent=True):
    clock = SimClock()
    mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
    mcfs.add_verifs("verifs1", VeriFS1())
    mcfs.add_verifs("verifs2", VeriFS2(bugs=[VeriFSBug.WRITE_HOLE_STALE]))
    return mcfs


class TestDeterminism:
    def test_dfs_is_fully_deterministic(self):
        """Two identical runs produce identical reports, ops, and time."""
        results = [build_buggy().run_dfs(max_depth=3, max_operations=100_000)
                   for _ in range(2)]
        a, b = results
        assert a.operations == b.operations
        assert a.unique_states == b.unique_states
        assert a.sim_time == b.sim_time
        assert str(a.report) == str(b.report)

    def test_random_same_seed_same_everything(self):
        def run(seed):
            clock = SimClock()
            mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
            mcfs.add_verifs("a", VeriFS1())
            mcfs.add_verifs("b", VeriFS2())
            result = mcfs.run_random(max_operations=300, seed=seed)
            return result.unique_states, result.sim_time, clock.snapshot()

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_kernel_fs_runs_deterministic(self):
        def run():
            clock = SimClock()
            mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
            mcfs.add_block_filesystem("ext2", Ext2FileSystemType(),
                                      RAMBlockDevice(256 * 1024, clock=clock))
            mcfs.add_block_filesystem("ext4", Ext4FileSystemType(),
                                      RAMBlockDevice(256 * 1024, clock=clock))
            result = mcfs.run_dfs(max_depth=2, max_operations=1500)
            return result.operations, result.unique_states, result.sim_time

        assert run() == run()

    def test_abstract_state_is_host_independent_constant(self):
        """A fixed history must hash to a fixed digest -- traces and
        persisted visited tables depend on it."""
        from repro.core.abstraction import abstract_state
        from repro.kernel import Kernel
        from repro.kernel.fdtable import O_CREAT, O_WRONLY
        from repro.verifs.mounting import mount_verifs

        digests = set()
        for _ in range(2):
            clock = SimClock()
            kernel = Kernel(clock)
            mount_verifs(kernel, VeriFS2(clock=clock), "/mnt/v")
            fd = kernel.open("/mnt/v/f", O_CREAT | O_WRONLY)
            kernel.write(fd, b"fixed")
            kernel.close(fd)
            kernel.mkdir("/mnt/v/d")
            digests.add(abstract_state(kernel, "/mnt/v"))
        assert len(digests) == 1


class TestTimeAccounting:
    def test_categories_cover_all_time(self):
        clock = SimClock()
        mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
        mcfs.add_block_filesystem("ext2", Ext2FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock))
        mcfs.add_block_filesystem("ext4", Ext4FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock))
        mcfs.run_random(max_operations=100, seed=1)
        breakdown = clock.snapshot()
        assert sum(breakdown.values()) == pytest.approx(clock.now)
        # the big cost centres of a remount-strategy run are all present
        for category in ("syscall", "mount", "umount", "state-tracking", "ram-io"):
            assert category in breakdown, breakdown.keys()

    def test_verifs_run_charges_fuse_and_ioctls(self):
        clock = SimClock()
        mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
        mcfs.add_verifs("a", VeriFS1())
        mcfs.add_verifs("b", VeriFS2())
        mcfs.run_random(max_operations=100, seed=1)
        breakdown = clock.snapshot()
        assert breakdown.get("fuse-transport", 0) > 0
        assert breakdown.get("verifs-checkpoint", 0) > 0
        # and, crucially, NO device-state tracking (the paper's reason ii)
        assert "state-tracking" not in breakdown

    def test_sim_time_unaffected_by_host_speed(self):
        """Identical logical work yields identical simulated time, however
        long the host took (the clock only moves via charge())."""
        import time
        clock = SimClock()
        mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
        mcfs.add_verifs("a", VeriFS2())
        mcfs.add_verifs("b", VeriFS2())
        result = mcfs.run_random(max_operations=50, seed=2)
        before = clock.now
        time.sleep(0.01)  # host time passes; simulated time must not
        assert clock.now == before
