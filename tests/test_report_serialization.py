"""Tests for discrepancy-report trace files (save / load / replay)."""

import pytest

from repro import MCFS, MCFSOptions, SimClock, VeriFS1, VeriFS2, VeriFSBug
from repro.core.integrity import Outcome
from repro.core.ops import Operation
from repro.core.report import (
    DiscrepancyReport,
    LoggedOperation,
    operation_from_dict,
    operation_to_dict,
    replay,
)
from repro.errors import ENOENT


class TestOperationSerialization:
    def test_simple_roundtrip(self):
        operation = Operation("truncate", ("/f0", 2048))
        assert operation_from_dict(operation_to_dict(operation)) == operation

    def test_bytes_args_roundtrip(self):
        operation = Operation("setxattr", ("/f0", "user.k", b"\x00\xff bin"))
        restored = operation_from_dict(operation_to_dict(operation))
        assert restored == operation
        assert isinstance(restored.args[2], bytes)

    def test_dict_is_json_safe(self):
        import json
        operation = Operation("setxattr", ("/f0", "user.k", b"\x01\x02"))
        json.dumps(operation_to_dict(operation))  # must not raise


def _real_report() -> DiscrepancyReport:
    clock = SimClock()
    mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
    mcfs.add_verifs("verifs1", VeriFS1())
    mcfs.add_verifs("verifs2", VeriFS2(bugs=[VeriFSBug.SIZE_UPDATE_ON_CAPACITY_ONLY]))
    result = mcfs.run_dfs(max_depth=3, max_operations=100_000)
    assert result.found_discrepancy
    return result.report


class TestReportRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        report = _real_report()
        path = str(tmp_path / "trace.json")
        report.save(path)
        loaded = DiscrepancyReport.load(path)
        assert loaded.kind == report.kind
        assert loaded.summary == report.summary
        assert loaded.operations() == report.operations()
        assert loaded.operations_executed == report.operations_executed
        assert loaded.ending_states == report.ending_states
        for original, restored in zip(report.operation_log, loaded.operation_log):
            assert original.outcomes == restored.outcomes

    def test_loaded_trace_replays_and_reproduces(self, tmp_path):
        report = _real_report()
        path = str(tmp_path / "trace.json")
        report.save(path)
        loaded = DiscrepancyReport.load(path)

        clock = SimClock()
        fresh = MCFS(clock, MCFSOptions(include_extended_operations=False))
        fresh.add_verifs("verifs1", VeriFS1())
        fresh.add_verifs("verifs2",
                         VeriFS2(bugs=[VeriFSBug.SIZE_UPDATE_ON_CAPACITY_ONLY]))
        engine = fresh.engine()
        replay(loaded.operations(), engine.futs, engine.catalog)
        options = fresh.options.abstraction
        states = [fut.abstract_state(options) for fut in engine.futs]
        assert states[0] != states[1]  # the bug reproduces from the trace

    def test_handcrafted_report_renders_after_roundtrip(self):
        report = DiscrepancyReport(
            kind="outcome",
            summary="a -> ok(0) but b -> error(ENOENT)",
            operation_log=[LoggedOperation(
                operation=Operation("unlink", ("/f0",)),
                outcomes={"a": Outcome.success(0), "b": Outcome.failure(ENOENT)},
            )],
            operations_executed=7,
            sim_time=1.25,
            suspects=["b"],
        )
        restored = DiscrepancyReport.from_dict(report.to_dict())
        text = str(restored)
        assert "ENOENT" in text
        assert "suspected culprit" in text
        assert "unlink" in text
