"""Tests for discrepancy-report trace files (save / load / replay).

The property-test half of this file pins the lossless-round-trip
contract: any report MCFS can construct -- including state diffs, fsck
findings, voting suspects, and a full explorer schedule -- must survive
``to_dict`` -> JSON -> ``from_dict`` bit for bit.  Trail files depend on
this; a lossy round trip would silently change what a replay is asked to
reproduce.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro import MCFS, MCFSOptions, SimClock, VeriFS1, VeriFS2, VeriFSBug
from repro.analysis.findings import Finding
from repro.core.integrity import Outcome, StateDiff
from repro.core.ops import Operation
from repro.core.report import (
    DiscrepancyReport,
    LoggedOperation,
    RunSummary,
    operation_from_dict,
    operation_to_dict,
    replay,
    schedule_event_from_dict,
    schedule_event_to_dict,
)
from repro.errors import ENOENT
from repro.mc import trace


class TestOperationSerialization:
    def test_simple_roundtrip(self):
        operation = Operation("truncate", ("/f0", 2048))
        assert operation_from_dict(operation_to_dict(operation)) == operation

    def test_bytes_args_roundtrip(self):
        operation = Operation("setxattr", ("/f0", "user.k", b"\x00\xff bin"))
        restored = operation_from_dict(operation_to_dict(operation))
        assert restored == operation
        assert isinstance(restored.args[2], bytes)

    def test_dict_is_json_safe(self):
        import json
        operation = Operation("setxattr", ("/f0", "user.k", b"\x01\x02"))
        json.dumps(operation_to_dict(operation))  # must not raise


def _real_report() -> DiscrepancyReport:
    clock = SimClock()
    mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
    mcfs.add_verifs("verifs1", VeriFS1())
    mcfs.add_verifs("verifs2", VeriFS2(bugs=[VeriFSBug.SIZE_UPDATE_ON_CAPACITY_ONLY]))
    result = mcfs.run_dfs(max_depth=3, max_operations=100_000)
    assert result.found_discrepancy
    return result.report


class TestReportRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        report = _real_report()
        path = str(tmp_path / "trace.json")
        report.save(path)
        loaded = DiscrepancyReport.load(path)
        assert loaded.kind == report.kind
        assert loaded.summary == report.summary
        assert loaded.operations() == report.operations()
        assert loaded.operations_executed == report.operations_executed
        assert loaded.ending_states == report.ending_states
        for original, restored in zip(report.operation_log, loaded.operation_log):
            assert original.outcomes == restored.outcomes

    def test_loaded_trace_replays_and_reproduces(self, tmp_path):
        report = _real_report()
        path = str(tmp_path / "trace.json")
        report.save(path)
        loaded = DiscrepancyReport.load(path)

        clock = SimClock()
        fresh = MCFS(clock, MCFSOptions(include_extended_operations=False))
        fresh.add_verifs("verifs1", VeriFS1())
        fresh.add_verifs("verifs2",
                         VeriFS2(bugs=[VeriFSBug.SIZE_UPDATE_ON_CAPACITY_ONLY]))
        engine = fresh.engine()
        replay(loaded.operations(), engine.futs, engine.catalog)
        options = fresh.options.abstraction
        states = [fut.abstract_state(options) for fut in engine.futs]
        assert states[0] != states[1]  # the bug reproduces from the trace

    def test_handcrafted_report_renders_after_roundtrip(self):
        report = DiscrepancyReport(
            kind="outcome",
            summary="a -> ok(0) but b -> error(ENOENT)",
            operation_log=[LoggedOperation(
                operation=Operation("unlink", ("/f0",)),
                outcomes={"a": Outcome.success(0), "b": Outcome.failure(ENOENT)},
            )],
            operations_executed=7,
            sim_time=1.25,
            suspects=["b"],
        )
        restored = DiscrepancyReport.from_dict(report.to_dict())
        text = str(restored)
        assert "ENOENT" in text
        assert "suspected culprit" in text
        assert "unlink" in text


# ------------------------------------------------ hypothesis strategies --

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12)
paths = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789/._-", min_size=1,
    max_size=20)
hashes = st.text(alphabet="0123456789abcdef", max_size=32)
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
arg_values = st.one_of(
    st.integers(min_value=-2**31, max_value=2**31),
    st.binary(max_size=16),
    paths,
    st.booleans(),
    st.none(),
)

operations = st.builds(
    Operation,
    name=names,
    args=st.lists(arg_values, max_size=4).map(tuple),
)

outcomes = st.builds(
    Outcome,
    ok=st.booleans(),
    value=st.one_of(st.none(), st.integers(), st.binary(max_size=8)),
    errno=st.one_of(st.none(), st.integers(min_value=1, max_value=40)),
)

logged_operations = st.builds(
    LoggedOperation,
    operation=operations,
    outcomes=st.dictionaries(names, outcomes, max_size=3),
)

state_diffs = st.builds(
    StateDiff,
    only_in_first=st.lists(paths, max_size=3),
    only_in_second=st.lists(paths, max_size=3),
    attribute_mismatches=st.lists(paths, max_size=3),
    content_mismatches=st.lists(paths, max_size=3),
)

findings = st.builds(
    Finding,
    checker=names,
    invariant=names,
    message=paths,
    severity=st.sampled_from(("info", "warn", "error")),
    location=paths,
    detail=st.dictionaries(names, st.one_of(st.integers(), paths),
                           max_size=3),
)

schedule_events = st.one_of(
    operations.map(lambda op: (trace.OP, op)),
    st.just((trace.CHECK,)),
    st.just((trace.FSCK,)),
    st.integers(min_value=0, max_value=999).map(
        lambda n: (trace.CHECKPOINT, n)),
    st.integers(min_value=0, max_value=999).map(
        lambda n: (trace.RESTORE, n)),
)

reports = st.builds(
    DiscrepancyReport,
    kind=st.sampled_from(("outcome", "state", "corruption")),
    summary=paths,
    operation_log=st.lists(logged_operations, max_size=4),
    state_diff=st.one_of(st.none(), state_diffs),
    starting_state=hashes,
    ending_states=st.dictionaries(names, hashes, max_size=3),
    operations_executed=st.integers(min_value=0, max_value=10**6),
    sim_time=finite_floats,
    suspects=st.lists(names, max_size=3),
    findings=st.lists(findings, max_size=3),
    schedule=st.one_of(st.none(), st.lists(schedule_events, max_size=8)),
)

run_summaries = st.builds(
    RunSummary,
    operations=st.integers(min_value=0, max_value=10**9),
    unique_states=st.integers(min_value=0, max_value=10**9),
    sim_time=finite_floats,
    ops_per_second=finite_floats,
    stopped_reason=paths,
    revisited_states=st.integers(min_value=0, max_value=10**6),
    duplicate_hits=st.integers(min_value=0, max_value=10**6),
    duplicate_hit_ratio=finite_floats,
    fsck_checks=st.integers(min_value=0, max_value=10**6),
    show_fsck=st.booleans(),
    bytes_snapshotted=st.integers(min_value=0, max_value=10**12),
    bytes_restored=st.integers(min_value=0, max_value=10**12),
    snapshot_dedup_ratio=finite_floats,
    omission_possible=st.booleans(),
    omission_probability=finite_floats,
    store_bits_per_state=finite_floats,
    trail_path=st.one_of(st.none(), paths),
    minimized_operations=st.one_of(
        st.none(), st.integers(min_value=0, max_value=10**6)),
)


def through_json(document):
    """Force an actual JSON round trip, not just a dict copy."""
    return json.loads(json.dumps(document, allow_nan=False))


class TestScheduleEventRoundTrip:
    @settings(max_examples=50)
    @given(schedule_events)
    def test_round_trip(self, event):
        encoded = through_json(schedule_event_to_dict(event))
        assert schedule_event_from_dict(encoded) == event


class TestStateDiffRoundTrip:
    @settings(max_examples=50)
    @given(state_diffs)
    def test_round_trip(self, diff):
        assert StateDiff.from_dict(through_json(diff.to_dict())) == diff

    def test_from_dict_tolerates_missing_keys(self):
        assert StateDiff.from_dict({}) == StateDiff()


class TestDiscrepancyReportRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(reports)
    def test_round_trip_is_lossless(self, report):
        restored = DiscrepancyReport.from_dict(through_json(report.to_dict()))
        assert restored == report

    @settings(max_examples=25, deadline=None)
    @given(reports)
    def test_state_diff_and_schedule_survive(self, report):
        # the regression this class exists for: state_diff used to be
        # dropped by to_dict entirely
        restored = DiscrepancyReport.from_dict(through_json(report.to_dict()))
        assert restored.state_diff == report.state_diff
        assert restored.schedule == report.schedule

    def test_legacy_document_without_new_fields(self):
        # documents written before state_diff/schedule serialisation
        # existed must still load
        report = DiscrepancyReport.from_dict(
            {"kind": "state", "summary": "states differ"})
        assert report.state_diff is None
        assert report.schedule is None


class TestRunSummaryRoundTrip:
    @settings(max_examples=50)
    @given(run_summaries)
    def test_round_trip_is_lossless(self, summary):
        assert RunSummary.from_dict(through_json(summary.to_dict())) == summary

    @settings(max_examples=10)
    @given(run_summaries)
    def test_render_mentions_trail_when_set(self, summary):
        rendered = summary.render()
        if summary.trail_path:
            assert summary.trail_path in rendered
        if summary.minimized_operations is not None:
            assert "minimized" in rendered
