"""Tests for workload presets and the sequence generator."""

import pytest

from repro import MCFS, MCFSOptions, SimClock, VeriFS2
from repro.core.futs import make_verifs_fut
from repro.core.ops import OperationCatalog, ParameterPool
from repro.workload import (
    DATA_HEAVY,
    DEEP_TREE,
    DEFAULT,
    METADATA_HEAVY,
    PRESETS,
    SequenceGenerator,
    preset,
)


class TestPresets:
    def test_lookup_by_name(self):
        assert preset("data-heavy") is DATA_HEAVY
        assert preset("default") is DEFAULT

    def test_unknown_preset_lists_options(self):
        with pytest.raises(KeyError) as excinfo:
            preset("nope")
        assert "data-heavy" in str(excinfo.value)

    def test_all_presets_build_catalogs(self):
        for name, pool in PRESETS.items():
            catalog = OperationCatalog(pool=pool)
            assert len(catalog) > 0, name

    def test_metadata_heavy_is_namespace_dominated(self):
        catalog = OperationCatalog(pool=METADATA_HEAVY, include_extended=False)
        names = [op.name for op in catalog.operations()]
        namespace_ops = sum(1 for n in names
                            if n in ("create_file", "mkdir", "rmdir", "unlink"))
        data_ops = sum(1 for n in names if n in ("write_file", "truncate"))
        assert namespace_ops > data_ops

    def test_data_heavy_is_data_dominated(self):
        catalog = OperationCatalog(pool=DATA_HEAVY, include_extended=False)
        names = [op.name for op in catalog.operations()]
        data_ops = sum(1 for n in names if n in ("write_file", "truncate"))
        namespace_ops = sum(1 for n in names
                            if n in ("create_file", "mkdir", "rmdir", "unlink"))
        assert data_ops > namespace_ops

    def test_presets_drive_clean_runs(self):
        """Every preset must be usable for a clean cross-check."""
        from repro import VeriFS1
        for name, pool in PRESETS.items():
            clock = SimClock()
            mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False,
                                           pool=pool))
            mcfs.add_verifs("a", VeriFS2())
            mcfs.add_verifs("b", VeriFS2())
            result = mcfs.run_random(max_operations=120, seed=3)
            assert not result.found_discrepancy, (name, str(result.report)[:200])


class TestSequenceGenerator:
    def test_same_seed_same_sequence(self):
        a = SequenceGenerator(seed=42).take(25)
        b = SequenceGenerator(seed=42).take(25)
        assert a == b

    def test_different_seed_differs(self):
        a = SequenceGenerator(seed=1).take(25)
        b = SequenceGenerator(seed=2).take(25)
        assert a != b

    def test_reset_rewinds(self):
        generator = SequenceGenerator(seed=7)
        first = generator.take(10)
        generator.reset()
        assert generator.take(10) == first

    def test_stream_is_endless(self):
        stream = SequenceGenerator(seed=1).stream()
        operations = [next(stream) for _ in range(100)]
        assert len(operations) == 100

    def test_operations_come_from_catalog(self):
        generator = SequenceGenerator(seed=5, include_extended=False)
        catalog_ops = set(generator.catalog.operations())
        for operation in generator.take(50):
            assert operation in catalog_ops

    def test_apply_to_executes_on_fut(self):
        clock = SimClock()
        fut = make_verifs_fut("v", VeriFS2(), clock)
        generator = SequenceGenerator(seed=9, include_extended=False)
        outcomes = generator.apply_to(fut, generator.take(30))
        assert len(outcomes) == 30
        assert any(outcome.ok for outcome in outcomes)

    def test_reset_does_not_perturb_live_stream(self):
        """Regression: a half-consumed stream() iterator used to keep
        reading self._rng through the attribute, so reset() silently
        rewound the live iterator too."""
        generator = SequenceGenerator(seed=11)
        reference = list(SequenceGenerator(seed=11).take(40))
        stream = generator.stream()
        first_half = [next(stream) for _ in range(20)]
        generator.reset()  # must not touch the live iterator
        second_half = [next(stream) for _ in range(20)]
        assert first_half + second_half == reference

    def test_stream_starts_at_current_position(self):
        """A stream forks the RNG where the generator stands, so take()
        followed by stream() continues the same sequence."""
        a = SequenceGenerator(seed=13)
        b = SequenceGenerator(seed=13)
        prefix = a.take(15)
        assert prefix == b.take(15)
        stream = a.stream()
        assert [next(stream) for _ in range(10)] == b.take(10)

    def test_two_streams_are_independent(self):
        generator = SequenceGenerator(seed=17)
        first = generator.stream()
        second = generator.stream()
        assert [next(first) for _ in range(25)] == [
            next(second) for _ in range(25)
        ]

    def test_profiled_generator_is_deterministic(self):
        a = SequenceGenerator(seed=19, profile="write-heavy").take(30)
        b = SequenceGenerator(seed=19, profile="write-heavy").take(30)
        assert a == b
        names = {op.name for op in a}
        assert "write_file" in names

    def test_boundary_profile_augments_pool(self):
        generator = SequenceGenerator(seed=1, profile="boundary")
        assert 4097 in generator.catalog.pool.write_sizes
        assert 4096 in generator.catalog.pool.write_offsets
