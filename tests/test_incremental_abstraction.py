"""Incremental abstraction hashing must be bit-identical to a full walk.

The EntryCache rebuilds only what the mount's dirty-path tracking says
changed; the full walk re-reads everything.  If they ever disagree --
after any operation, on any file system, or across a checkpoint/restore
-- the model checker would hash states wrong and silently merge or split
them.  These properties drive randomized operation sequences through the
kernel on every file-system family and assert the two paths agree at
every single step.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Ext2FileSystemType,
    Ext4FileSystemType,
    Jffs2FileSystemType,
    MTDDevice,
    RAMBlockDevice,
    SimClock,
    VeriFS2,
    XfsFileSystemType,
)
from repro.core.abstraction import (
    AbstractionOptions,
    collect_entries,
    hash_entries,
)
from repro.core.futs import make_block_fut, make_verifs_fut
from repro.errors import FsError
from repro.kernel.fdtable import O_CREAT, O_RDWR, O_TRUNC
from repro.mc.strategies import IoctlStrategy, RemountStrategy

OPTIONS = AbstractionOptions()
#: a second cacheable variant, standing in for the engine's
#: ``matching_options`` -- it must share the cache's walk via its own
#: digest lane and still hash bit-identically to a reference walk
MATCHING = AbstractionOptions(include_owner=False, include_xattrs=False)

NAMES = ("a", "b", "c", "sub")
PAYLOADS = (b"", b"x", b"hello world", b"Z" * 700)


def build_fut(family: str):
    clock = SimClock()
    if family == "verifs2":
        return make_verifs_fut("verifs2", VeriFS2(), clock)
    if family == "jffs2":
        device = MTDDevice(256 * 1024, clock=clock, name="mtd0")
        return make_block_fut("jffs2", Jffs2FileSystemType(), device, clock)
    if family == "xfs":
        device = RAMBlockDevice(16 * 1024 * 1024, clock=clock, name="dev0")
        return make_block_fut("xfs", XfsFileSystemType(), device, clock)
    fstype = {"ext2": Ext2FileSystemType, "ext4": Ext4FileSystemType}[family]()
    device = RAMBlockDevice(256 * 1024, clock=clock, name="dev0")
    return make_block_fut(family, fstype, device, clock)


def apply_op(fut, op) -> None:
    """Run one scripted operation; FsError outcomes are legal states."""
    kernel, root = fut.kernel, fut.mountpoint
    kind = op[0]
    try:
        if kind == "create":
            fd = kernel.open(f"{root}/{op[1]}", O_CREAT | O_RDWR)
            kernel.write(fd, op[2])
            kernel.close(fd)
        elif kind == "append":
            fd = kernel.open(f"{root}/{op[1]}", O_RDWR)
            kernel.pwrite(fd, op[2], op[3])
            kernel.close(fd)
        elif kind == "overwrite":
            fd = kernel.open(f"{root}/{op[1]}", O_RDWR | O_TRUNC)
            kernel.write(fd, op[2])
            kernel.close(fd)
        elif kind == "mkdir":
            kernel.mkdir(f"{root}/{op[1]}")
        elif kind == "rmdir":
            kernel.rmdir(f"{root}/{op[1]}")
        elif kind == "unlink":
            kernel.unlink(f"{root}/{op[1]}")
        elif kind == "rename":
            kernel.rename(f"{root}/{op[1]}", f"{root}/{op[2]}")
        elif kind == "symlink":
            kernel.symlink(op[1], f"{root}/{op[2]}")
        elif kind == "link":
            kernel.link(f"{root}/{op[1]}", f"{root}/{op[2]}")
        elif kind == "chmod":
            kernel.chmod(f"{root}/{op[1]}", op[2])
        elif kind == "truncate":
            kernel.truncate(f"{root}/{op[1]}", op[2])
        elif kind == "remount":
            fut.remount()
    except FsError:
        pass


def assert_incremental_matches(fut) -> None:
    incremental = fut.abstract_state(OPTIONS, incremental=True)
    full = fut.abstract_state(OPTIONS, incremental=False)
    assert incremental == full, (
        f"{fut.label}: incremental hash diverged from full walk"
    )


def assert_digests_match_reference(fut) -> None:
    """The memoized fast path vs the reference walk, both variants."""
    records, state_hash, match_hash = fut.entries_digests(
        OPTIONS, MATCHING, incremental=True)
    assert records is None  # cache route: records stay inside the cache
    reference = collect_entries(fut.kernel, fut.mountpoint, OPTIONS)
    assert state_hash == hash_entries(reference, OPTIONS), (
        f"{fut.label}: memoized digest diverged from reference hash"
    )
    assert match_hash == hash_entries(reference, MATCHING), (
        f"{fut.label}: matching-variant digest diverged from reference"
    )


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.sampled_from(NAMES),
                  st.sampled_from(PAYLOADS)),
        st.tuples(st.just("append"), st.sampled_from(NAMES),
                  st.sampled_from(PAYLOADS), st.integers(0, 900)),
        st.tuples(st.just("overwrite"), st.sampled_from(NAMES),
                  st.sampled_from(PAYLOADS)),
        st.tuples(st.just("mkdir"), st.sampled_from(NAMES)),
        st.tuples(st.just("rmdir"), st.sampled_from(NAMES)),
        st.tuples(st.just("unlink"), st.sampled_from(NAMES)),
        st.tuples(st.just("rename"), st.sampled_from(NAMES),
                  st.sampled_from(NAMES)),
        st.tuples(st.just("symlink"), st.sampled_from(NAMES),
                  st.sampled_from(NAMES)),
        st.tuples(st.just("link"), st.sampled_from(NAMES),
                  st.sampled_from(NAMES)),
        st.tuples(st.just("chmod"), st.sampled_from(NAMES),
                  st.sampled_from((0o600, 0o755))),
        st.tuples(st.just("truncate"), st.sampled_from(NAMES),
                  st.integers(0, 1200)),
        st.tuples(st.just("remount")),
    ),
    min_size=1, max_size=12,
)

FAMILIES = ("ext2", "ext4", "xfs", "jffs2", "verifs2")


class TestIncrementalEqualsFullWalk:
    @pytest.mark.parametrize("family", FAMILIES)
    @settings(max_examples=12, deadline=None)
    @given(ops=OPS)
    def test_every_step_matches(self, family, ops):
        fut = build_fut(family)
        assert_incremental_matches(fut)  # fresh mount: full walk seeds cache
        for op in ops:
            apply_op(fut, op)
            assert_incremental_matches(fut)

    @pytest.mark.parametrize("family", FAMILIES)
    @settings(max_examples=8, deadline=None)
    @given(ops=OPS, more=OPS)
    def test_matches_across_checkpoint_restore(self, family, ops, more):
        """Exact-restore strategies may reinstate the cache; after the
        rollback the incremental hash must still equal a fresh walk."""
        fut = build_fut(family)
        strategy = IoctlStrategy() if family == "verifs2" else RemountStrategy()
        for op in ops:
            apply_op(fut, op)
        assert_incremental_matches(fut)

        token = strategy.checkpoint(fut)
        abstraction = (fut.snapshot_abstraction()
                       if strategy.restores_exactly(fut) else None)
        reference = fut.abstract_state(OPTIONS, incremental=False)

        for op in more:
            apply_op(fut, op)
            assert_incremental_matches(fut)

        strategy.restore(fut, token)
        fut.restore_abstraction(abstraction)
        assert_incremental_matches(fut)
        assert fut.abstract_state(OPTIONS, incremental=True) == reference

    def test_cache_hit_skips_syscalls(self):
        """Unchanged mount + unchanged generation = zero-walk refresh."""
        fut = build_fut("ext2")
        apply_op(fut, ("create", "a", b"hello world"))
        fut.abstract_state(OPTIONS, incremental=True)
        before = fut.kernel.syscall_count
        fut.abstract_state(OPTIONS, incremental=True)
        assert fut.kernel.syscall_count == before

    def test_uncacheable_options_fall_back_to_full_walks(self):
        timestamps = AbstractionOptions(track_timestamps=True)
        fut = build_fut("ext2")
        apply_op(fut, ("create", "a", b"x"))
        fut.abstract_state(timestamps, incremental=True)
        assert fut._entry_cache is None  # never built for uncacheable options


class TestMemoizedDigestsEqualReference:
    """The hot path (`entries_digests`) vs the reference
    ``hash_entries(collect_entries(...))`` walk."""

    @pytest.mark.parametrize("family", FAMILIES)
    @settings(max_examples=10, deadline=None)
    @given(ops=OPS)
    def test_both_variants_match_at_every_step(self, family, ops):
        fut = build_fut(family)
        assert_digests_match_reference(fut)
        for op in ops:
            apply_op(fut, op)
            assert_digests_match_reference(fut)

    @pytest.mark.parametrize("family", ("ext2", "verifs2"))
    @settings(max_examples=8, deadline=None)
    @given(ops=OPS, more=OPS, after=OPS)
    def test_matches_across_checkpoint_restore_interleavings(
        self, family, ops, more, after
    ):
        """Digest lanes must survive snapshot/restore: hash, checkpoint,
        mutate + hash, roll back, mutate again -- the memoized path must
        track the reference walk through the whole interleaving."""
        fut = build_fut(family)
        strategy = IoctlStrategy() if family == "verifs2" else RemountStrategy()
        for op in ops:
            apply_op(fut, op)
        assert_digests_match_reference(fut)

        token = strategy.checkpoint(fut)
        abstraction = (fut.snapshot_abstraction()
                       if strategy.restores_exactly(fut) else None)
        _, reference_hash, reference_match = fut.entries_digests(
            OPTIONS, MATCHING, incremental=True)

        for op in more:
            apply_op(fut, op)
            assert_digests_match_reference(fut)

        strategy.restore(fut, token)
        fut.restore_abstraction(abstraction)
        assert_digests_match_reference(fut)
        _, restored_hash, restored_match = fut.entries_digests(
            OPTIONS, MATCHING, incremental=True)
        assert (restored_hash, restored_match) == (
            reference_hash, reference_match)

        for op in after:
            apply_op(fut, op)
            assert_digests_match_reference(fut)

    def test_without_workarounds_falls_back_to_full_walk(self):
        """``sort_entries=False`` defeats the sorted Merkle store: the
        naive-abstraction ablation must take the full-walk route and
        still hash correctly."""
        naive = OPTIONS.without_workarounds()
        fut = build_fut("ext2")
        apply_op(fut, ("create", "a", b"x"))
        apply_op(fut, ("mkdir", "sub"))
        records, state_hash, match_hash = fut.entries_digests(
            naive, naive, incremental=True)
        assert records is not None  # full-walk route returns its records
        assert fut._entry_cache is None
        reference = collect_entries(fut.kernel, fut.mountpoint, naive)
        assert state_hash == hash_entries(reference, naive)
        assert match_hash == state_hash

    def test_uncacheable_matching_variant_falls_back(self):
        """A timestamp-tracking *matching* variant poisons the cache
        route even when the primary options are cacheable: stale atimes
        would hash wrong, so the pair must walk fully."""
        timestamps = AbstractionOptions(track_timestamps=True)
        fut = build_fut("ext2")
        apply_op(fut, ("create", "a", b"x"))
        records, state_hash, match_hash = fut.entries_digests(
            OPTIONS, timestamps, incremental=True)
        assert records is not None
        # both hashes come from the one walk's records (a *later* walk
        # would see different atimes -- reading content bumps them,
        # which is exactly why this variant cannot ride the cache)
        assert state_hash == hash_entries(records, OPTIONS)
        assert match_hash == hash_entries(records, timestamps)
        assert state_hash == hash_entries(
            collect_entries(fut.kernel, fut.mountpoint, OPTIONS), OPTIONS)


class TestViewAndCheckpointMechanics:
    def test_returned_tuple_safe_across_refresh(self):
        """The record view is immutable and never edited in place: a
        tuple held across later mutations + refreshes must keep its
        original contents."""
        fut = build_fut("ext2")
        apply_op(fut, ("create", "a", b"old"))
        held = fut.collect_entries(OPTIONS, incremental=True)
        assert isinstance(held, tuple)
        frozen = list(held)

        apply_op(fut, ("overwrite", "a", b"new contents"))
        apply_op(fut, ("mkdir", "sub"))
        refreshed = fut.collect_entries(OPTIONS, incremental=True)
        assert list(held) == frozen  # the old view is untouched
        assert refreshed != held
        # and the refreshed view hashes like a from-scratch reference
        # walk (hash comparison: the reference walk's own reads bump
        # atimes, so record-level equality would be vacuously broken)
        reference = collect_entries(fut.kernel, fut.mountpoint, OPTIONS)
        assert [r.path for r in refreshed] == [r.path for r in reference]
        assert hash_entries(refreshed, OPTIONS) == hash_entries(
            reference, OPTIONS)

    def test_restore_does_no_per_record_work(self):
        """Satellite regression: rolling back to a matching token must
        not copy, re-sort, re-encode, or re-hash records -- O(1) rebind
        of the shared store, zero syscalls."""
        fut = build_fut("verifs2")
        strategy = IoctlStrategy()
        for op in (("create", "a", b"x"), ("mkdir", "sub"),
                   ("create", "b", b"y" * 200)):
            apply_op(fut, op)
        fut.entries_digests(OPTIONS, MATCHING, incremental=True)

        token = strategy.checkpoint(fut)
        abstraction = fut.snapshot_abstraction()
        baseline_hashes = fut.entries_digests(OPTIONS, MATCHING,
                                              incremental=True)[1:]

        apply_op(fut, ("overwrite", "a", b"diverged"))
        fut.entries_digests(OPTIONS, MATCHING, incremental=True)

        strategy.restore(fut, token)
        cache = fut._entry_cache
        counters_before = dict(cache.counters)
        syscalls_before = fut.kernel.syscall_count
        fut.restore_abstraction(abstraction)
        after = cache.counters
        assert fut.kernel.syscall_count == syscalls_before
        assert after["restores"] == counters_before["restores"] + 1
        for key in ("full_walks", "cow_clones", "records_encoded",
                    "blocks_hashed"):
            assert after[key] == counters_before[key], (
                f"restore did per-record work: {key}"
            )
        # the rolled-back digests are served from the shared store's
        # memo: bit-identical to the pre-divergence hashes
        assert fut.entries_digests(OPTIONS, MATCHING,
                                   incremental=True)[1:] == baseline_hashes

    def test_snapshot_is_o1_and_shares_structure(self):
        """Checkpoint stacks share one store until a mutation clones it."""
        fut = build_fut("ext2")
        apply_op(fut, ("create", "a", b"x"))
        fut.abstract_state(OPTIONS, incremental=True)
        cache = fut._entry_cache
        first = fut.snapshot_abstraction()
        second = fut.snapshot_abstraction()
        assert first.store is cache._merkle
        assert second.store is cache._merkle  # no copies taken
        clones_before = cache.counters["cow_clones"]

        apply_op(fut, ("create", "b", b"y"))
        fut.abstract_state(OPTIONS, incremental=True)
        # the mutation cloned exactly once; both tokens keep the old store
        assert cache.counters["cow_clones"] == clones_before + 1
        assert first.store is second.store
        assert cache._merkle is not first.store
