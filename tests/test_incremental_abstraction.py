"""Incremental abstraction hashing must be bit-identical to a full walk.

The EntryCache rebuilds only what the mount's dirty-path tracking says
changed; the full walk re-reads everything.  If they ever disagree --
after any operation, on any file system, or across a checkpoint/restore
-- the model checker would hash states wrong and silently merge or split
them.  These properties drive randomized operation sequences through the
kernel on every file-system family and assert the two paths agree at
every single step.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Ext2FileSystemType,
    Ext4FileSystemType,
    Jffs2FileSystemType,
    MTDDevice,
    RAMBlockDevice,
    SimClock,
    VeriFS2,
    XfsFileSystemType,
)
from repro.core.abstraction import AbstractionOptions
from repro.core.futs import make_block_fut, make_verifs_fut
from repro.errors import FsError
from repro.kernel.fdtable import O_CREAT, O_RDWR, O_TRUNC
from repro.mc.strategies import IoctlStrategy, RemountStrategy

OPTIONS = AbstractionOptions()

NAMES = ("a", "b", "c", "sub")
PAYLOADS = (b"", b"x", b"hello world", b"Z" * 700)


def build_fut(family: str):
    clock = SimClock()
    if family == "verifs2":
        return make_verifs_fut("verifs2", VeriFS2(), clock)
    if family == "jffs2":
        device = MTDDevice(256 * 1024, clock=clock, name="mtd0")
        return make_block_fut("jffs2", Jffs2FileSystemType(), device, clock)
    if family == "xfs":
        device = RAMBlockDevice(16 * 1024 * 1024, clock=clock, name="dev0")
        return make_block_fut("xfs", XfsFileSystemType(), device, clock)
    fstype = {"ext2": Ext2FileSystemType, "ext4": Ext4FileSystemType}[family]()
    device = RAMBlockDevice(256 * 1024, clock=clock, name="dev0")
    return make_block_fut(family, fstype, device, clock)


def apply_op(fut, op) -> None:
    """Run one scripted operation; FsError outcomes are legal states."""
    kernel, root = fut.kernel, fut.mountpoint
    kind = op[0]
    try:
        if kind == "create":
            fd = kernel.open(f"{root}/{op[1]}", O_CREAT | O_RDWR)
            kernel.write(fd, op[2])
            kernel.close(fd)
        elif kind == "append":
            fd = kernel.open(f"{root}/{op[1]}", O_RDWR)
            kernel.pwrite(fd, op[2], op[3])
            kernel.close(fd)
        elif kind == "overwrite":
            fd = kernel.open(f"{root}/{op[1]}", O_RDWR | O_TRUNC)
            kernel.write(fd, op[2])
            kernel.close(fd)
        elif kind == "mkdir":
            kernel.mkdir(f"{root}/{op[1]}")
        elif kind == "rmdir":
            kernel.rmdir(f"{root}/{op[1]}")
        elif kind == "unlink":
            kernel.unlink(f"{root}/{op[1]}")
        elif kind == "rename":
            kernel.rename(f"{root}/{op[1]}", f"{root}/{op[2]}")
        elif kind == "symlink":
            kernel.symlink(op[1], f"{root}/{op[2]}")
        elif kind == "link":
            kernel.link(f"{root}/{op[1]}", f"{root}/{op[2]}")
        elif kind == "chmod":
            kernel.chmod(f"{root}/{op[1]}", op[2])
        elif kind == "truncate":
            kernel.truncate(f"{root}/{op[1]}", op[2])
        elif kind == "remount":
            fut.remount()
    except FsError:
        pass


def assert_incremental_matches(fut) -> None:
    incremental = fut.abstract_state(OPTIONS, incremental=True)
    full = fut.abstract_state(OPTIONS, incremental=False)
    assert incremental == full, (
        f"{fut.label}: incremental hash diverged from full walk"
    )


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.sampled_from(NAMES),
                  st.sampled_from(PAYLOADS)),
        st.tuples(st.just("append"), st.sampled_from(NAMES),
                  st.sampled_from(PAYLOADS), st.integers(0, 900)),
        st.tuples(st.just("overwrite"), st.sampled_from(NAMES),
                  st.sampled_from(PAYLOADS)),
        st.tuples(st.just("mkdir"), st.sampled_from(NAMES)),
        st.tuples(st.just("rmdir"), st.sampled_from(NAMES)),
        st.tuples(st.just("unlink"), st.sampled_from(NAMES)),
        st.tuples(st.just("rename"), st.sampled_from(NAMES),
                  st.sampled_from(NAMES)),
        st.tuples(st.just("symlink"), st.sampled_from(NAMES),
                  st.sampled_from(NAMES)),
        st.tuples(st.just("link"), st.sampled_from(NAMES),
                  st.sampled_from(NAMES)),
        st.tuples(st.just("chmod"), st.sampled_from(NAMES),
                  st.sampled_from((0o600, 0o755))),
        st.tuples(st.just("truncate"), st.sampled_from(NAMES),
                  st.integers(0, 1200)),
        st.tuples(st.just("remount")),
    ),
    min_size=1, max_size=12,
)

FAMILIES = ("ext2", "ext4", "xfs", "jffs2", "verifs2")


class TestIncrementalEqualsFullWalk:
    @pytest.mark.parametrize("family", FAMILIES)
    @settings(max_examples=12, deadline=None)
    @given(ops=OPS)
    def test_every_step_matches(self, family, ops):
        fut = build_fut(family)
        assert_incremental_matches(fut)  # fresh mount: full walk seeds cache
        for op in ops:
            apply_op(fut, op)
            assert_incremental_matches(fut)

    @pytest.mark.parametrize("family", FAMILIES)
    @settings(max_examples=8, deadline=None)
    @given(ops=OPS, more=OPS)
    def test_matches_across_checkpoint_restore(self, family, ops, more):
        """Exact-restore strategies may reinstate the cache; after the
        rollback the incremental hash must still equal a fresh walk."""
        fut = build_fut(family)
        strategy = IoctlStrategy() if family == "verifs2" else RemountStrategy()
        for op in ops:
            apply_op(fut, op)
        assert_incremental_matches(fut)

        token = strategy.checkpoint(fut)
        abstraction = (fut.snapshot_abstraction()
                       if strategy.restores_exactly(fut) else None)
        reference = fut.abstract_state(OPTIONS, incremental=False)

        for op in more:
            apply_op(fut, op)
            assert_incremental_matches(fut)

        strategy.restore(fut, token)
        fut.restore_abstraction(abstraction)
        assert_incremental_matches(fut)
        assert fut.abstract_state(OPTIONS, incremental=True) == reference

    def test_cache_hit_skips_syscalls(self):
        """Unchanged mount + unchanged generation = zero-walk refresh."""
        fut = build_fut("ext2")
        apply_op(fut, ("create", "a", b"hello world"))
        fut.abstract_state(OPTIONS, incremental=True)
        before = fut.kernel.syscall_count
        fut.abstract_state(OPTIONS, incremental=True)
        assert fut.kernel.syscall_count == before

    def test_uncacheable_options_fall_back_to_full_walks(self):
        timestamps = AbstractionOptions(track_timestamps=True)
        fut = build_fut("ext2")
        apply_op(fut, ("create", "a", b"x"))
        fut.abstract_state(timestamps, incremental=True)
        assert fut._entry_cache is None  # never built for uncacheable options
