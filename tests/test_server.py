"""repro.server: campaign-as-a-service.

The load-bearing properties under test:

* **engine determinism** -- a server-run campaign explores exactly the
  state set of a one-shot ``DistributedChecker`` run of the same spec,
  and two identical scripted sessions produce byte-identical event
  streams (virtual clock, sequence numbers, payloads);
* **pause/resume** -- pausing at a unit boundary, restarting the engine
  from its spool, and resuming produces a result identical to an
  uninterrupted run (extending the ``tests/test_dist.py`` fingerprint
  harness across a daemon lifetime);
* **tenant budgets** -- an over-budget submission is forced onto a
  bitstate store sized to the remaining budget, and a tenant with no
  budget left at all is refused;
* **the wire** -- a real daemon on a real Unix socket serves concurrent
  clients: submission, watching (replay + live), pause/resume/cancel,
  and graceful shutdown that spools running jobs.
"""

import dataclasses
import json
import os
import threading

import pytest

from repro.dist import CheckSpec, DistributedChecker
from repro.dist.coordinator import DistResult
from repro.server import (
    BudgetExceeded,
    CampaignEngine,
    EngineConfig,
    InvalidTransition,
    ReproClient,
    ReproServer,
    SubmitRequest,
    UnknownJob,
)
from repro.server.protocol import JobEvent, decode_line, encode_line

SPEC = CheckSpec(
    filesystems=("verifs1", "verifs2"),
    units=4,
    base_seed=1,
    unit_operations=100,
    max_depth=8,
)

#: a chunkier spec with a known bug injected into the last file system
BUG_SPEC = dataclasses.replace(
    SPEC, units=6, unit_operations=150, verifs_bugs=("write-hole-stale",))


def fingerprint(dist):
    """Everything that must be invariant across fleets, crashes, and --
    new here -- pause/restart/resume cycles of the campaign server."""
    return (
        dist.visited_states,
        dist.total_operations,
        dist.discrepancy_signature(),
        sorted((unit.index, unit.operations, unit.unique_states)
               for unit in dist.unit_results),
    )


@pytest.fixture(scope="module")
def baseline():
    """The one-shot reference run every served campaign must reproduce."""
    return DistributedChecker(SPEC, workers=1).run()


@pytest.fixture(scope="module")
def bug_baseline():
    return DistributedChecker(BUG_SPEC, workers=1).run()


def submit(engine, spec=SPEC, **kwargs):
    return engine.submit(SubmitRequest(spec=spec.to_dict(), **kwargs))


# ------------------------------------------------------------ the engine --
class TestEngineBasics:
    def test_served_campaign_equals_one_shot(self, baseline):
        engine = CampaignEngine(EngineConfig(slots=1))
        job = submit(engine)
        engine.run_until_idle()
        assert job.state == "done"
        assert fingerprint(engine.result(job.job_id)) == \
            fingerprint(baseline)

    def test_concurrent_jobs_interleave_and_both_finish(self, baseline):
        engine = CampaignEngine(EngineConfig(slots=2))
        first = submit(engine)
        second = submit(engine)
        engine.run_until_idle()
        assert first.state == second.state == "done"
        for job in (first, second):
            assert fingerprint(engine.result(job.job_id)) == \
                fingerprint(baseline)
        # slices interleaved: first progress events alternate job ids
        progress = [event.job_id for event in engine.events
                    if event.kind == "progress"][:4]
        assert set(progress) == {first.job_id, second.job_id}

    def test_priority_orders_the_queue(self):
        engine = CampaignEngine(EngineConfig(slots=1))
        low = submit(engine, priority=0)
        high = submit(engine, priority=5)
        engine.step()  # admits exactly one job into the single slot
        assert engine.job(high.job_id).state == "running"
        assert engine.job(low.job_id).state == "queued"

    def test_discrepancies_are_counted_and_streamed(self, bug_baseline,
                                                    tmp_path):
        engine = CampaignEngine(EngineConfig(
            slots=1, trail_dir=str(tmp_path / "trails")))
        job = submit(engine, spec=BUG_SPEC)
        engine.run_until_idle()
        assert job.discrepancies == len(bug_baseline.discrepancies)
        kinds = [event.kind for event in engine.events]
        assert kinds.count("discrepancy") == job.discrepancies
        assert kinds.count("trail") == len(job.trail_paths)
        assert job.trail_paths
        assert all(os.path.exists(path) for path in job.trail_paths)
        assert fingerprint(engine.result(job.job_id)) == \
            fingerprint(bug_baseline)

    def test_fleet_job_equals_one_shot(self, baseline):
        engine = CampaignEngine(EngineConfig(slots=1))
        job = submit(engine, workers=2)
        engine.run_until_idle()
        assert job.state == "done"
        assert fingerprint(engine.result(job.job_id)) == \
            fingerprint(baseline)

    def test_unknown_job_and_bad_transitions_raise(self):
        engine = CampaignEngine(EngineConfig(slots=1))
        with pytest.raises(UnknownJob):
            engine.job("job-9999")
        job = submit(engine)
        engine.run_until_idle()
        with pytest.raises(InvalidTransition):
            engine.resume(job.job_id)  # done, not paused
        with pytest.raises(InvalidTransition):
            engine.cancel(job.job_id)  # already terminal

    def test_cancel_releases_the_slot(self, baseline):
        engine = CampaignEngine(EngineConfig(slots=1))
        doomed = submit(engine)
        survivor = submit(engine)
        engine.step()  # doomed starts
        engine.cancel(doomed.job_id)
        engine.run_until_idle()
        assert doomed.state == "cancelled"
        assert survivor.state == "done"
        assert fingerprint(engine.result(survivor.job_id)) == \
            fingerprint(baseline)
        with pytest.raises(InvalidTransition):
            engine.result(doomed.job_id)


# ------------------------------------------------------- event streaming --
class TestEventStream:
    def test_lifecycle_event_order(self):
        engine = CampaignEngine(EngineConfig(slots=1))
        job = submit(engine)
        engine.run_until_idle()
        kinds = [event.kind for event in engine.events
                 if event.kind not in ("heartbeat",)]
        assert kinds[0] == "submitted"
        assert kinds[1] == "started"
        assert kinds[-1] == "done"
        assert kinds.count("progress") == SPEC.units
        assert [event.seq for event in engine.events] == \
            list(range(len(engine.events)))
        assert all(event.job_id == job.job_id for event in engine.events)

    def test_identical_sessions_produce_identical_streams(self):
        """The virtual clock makes scripted scenarios replay exactly."""
        def run_session():
            engine = CampaignEngine(EngineConfig(slots=2))
            submit(engine, tenant="a")
            submit(engine, tenant="b", priority=3)
            engine.run_until_idle()
            return [json.dumps(event.to_dict(), sort_keys=True)
                    for event in engine.events]

        assert run_session() == run_session()

    def test_vtime_advances_with_campaign_sim_time(self):
        engine = CampaignEngine(EngineConfig(slots=1))
        submit(engine)
        engine.run_until_idle()
        done = [event for event in engine.events if event.kind == "done"]
        assert done[0].vtime > 0.0
        assert done[0].vtime == pytest.approx(engine.clock.now)

    def test_events_for_filters_by_job_and_seq(self):
        engine = CampaignEngine(EngineConfig(slots=2))
        first = submit(engine)
        second = submit(engine)
        engine.run_until_idle()
        only_second = engine.events_for(second.job_id)
        assert only_second
        assert all(event.job_id == second.job_id for event in only_second)
        tail = engine.events_for(first.job_id,
                                 from_seq=only_second[0].seq)
        assert all(event.seq >= only_second[0].seq for event in tail)


# -------------------------------------------------------- pause / resume --
class TestPauseResume:
    def test_pause_lands_at_unit_boundary(self):
        engine = CampaignEngine(EngineConfig(slots=1))
        job = submit(engine)
        engine.step()  # admit + first unit
        engine.pause(job.job_id)
        engine.step()  # the pause lands here, before another unit runs
        assert job.state == "paused"
        assert job.units_done == 1
        assert engine.step() is None  # nothing runnable while paused

    def test_resumed_run_is_identical_to_uninterrupted(self, baseline):
        engine = CampaignEngine(EngineConfig(slots=1))
        job = submit(engine)
        engine.step()
        engine.pause(job.job_id)
        engine.step()
        engine.resume(job.job_id)
        engine.run_until_idle()
        assert job.state == "done"
        assert fingerprint(engine.result(job.job_id)) == \
            fingerprint(baseline)

    def test_resume_after_engine_restart_is_identical(self, bug_baseline,
                                                      tmp_path):
        """The acceptance property: pause, kill the daemon, start a new
        one on the same spool, resume -- explored state set, operation
        total, and discrepancy signature all match the one-shot run."""
        spool = str(tmp_path / "spool")
        engine = CampaignEngine(EngineConfig(slots=1, spool_dir=spool))
        job = submit(engine, spec=BUG_SPEC)
        engine.step()
        engine.step()
        engine.pause(job.job_id)
        engine.step()
        assert job.state == "paused"
        assert 0 < job.units_done < BUG_SPEC.units
        del engine  # the daemon dies

        reborn = CampaignEngine(EngineConfig(slots=1, spool_dir=spool))
        restored = reborn.job(job.job_id)
        assert restored.state == "paused"
        assert restored.units_done == job.units_done
        reborn.resume(job.job_id)
        reborn.run_until_idle()
        assert fingerprint(reborn.result(job.job_id)) == \
            fingerprint(bug_baseline)

    def test_restart_after_crash_mid_run_recovers(self, baseline, tmp_path):
        """No graceful shutdown at all: the job was spooled *running*.
        Completed units are kept; the rest re-derive from the spec."""
        spool = str(tmp_path / "spool")
        engine = CampaignEngine(EngineConfig(slots=1, spool_dir=spool))
        job = submit(engine)
        engine.step()
        engine.step()  # two units done, still running, spool says so
        del engine  # simulated SIGKILL: no pause, no snapshot

        reborn = CampaignEngine(EngineConfig(slots=1, spool_dir=spool))
        assert reborn.job(job.job_id).state == "queued"
        reborn.run_until_idle()
        assert fingerprint(reborn.result(job.job_id)) == \
            fingerprint(baseline)

    def test_pause_of_queued_job_skips_admission(self):
        engine = CampaignEngine(EngineConfig(slots=1))
        running = submit(engine)
        queued = submit(engine)
        engine.step()
        engine.pause(queued.job_id)
        assert queued.state == "paused"
        engine.run_until_idle()
        assert running.state == "done"
        assert queued.state == "paused"
        engine.resume(queued.job_id)
        engine.run_until_idle()
        assert queued.state == "done"

    def test_lossy_store_pause_resume_round_trips(self, tmp_path):
        """v3 snapshot path: a bitstate campaign pauses and resumes
        through its own store record, not a seen-map it never kept."""
        spool = str(tmp_path / "spool")
        spec = dataclasses.replace(SPEC, state_store="bitstate:16384,3")
        one_shot = DistributedChecker(spec, workers=1).run()
        engine = CampaignEngine(EngineConfig(slots=1, spool_dir=spool))
        job = submit(engine, spec=spec)
        engine.step()
        engine.pause(job.job_id)
        engine.step()
        del engine
        reborn = CampaignEngine(EngineConfig(slots=1, spool_dir=spool))
        reborn.resume(job.job_id)
        reborn.run_until_idle()
        assert fingerprint(reborn.result(job.job_id)) == \
            fingerprint(one_shot)


# -------------------------------------------------------- tenant budgets --
class TestTenantBudgets:
    def test_within_budget_runs_as_requested(self):
        engine = CampaignEngine(EngineConfig(
            slots=1, tenant_budgets={"rich": 1 << 26}))
        job = submit(engine, tenant="rich")
        assert not job.store_forced
        assert job.effective_store == "exact"

    def test_over_budget_forces_bitstate(self):
        engine = CampaignEngine(EngineConfig(
            slots=1, tenant_budgets={"poor": 4096}))
        job = submit(engine, tenant="poor")
        assert job.store_forced
        assert job.effective_store.startswith("bitstate:")
        assert job.planned_store_bytes <= 4096
        kinds = [event.kind for event in engine.events]
        assert "store-forced" in kinds
        engine.run_until_idle()
        assert job.state == "done"

    def test_budget_is_aggregate_across_active_jobs(self):
        # SPEC's exact store plans 16000 bytes: one job fits under
        # 20000, two concurrent ones cannot
        engine = CampaignEngine(EngineConfig(
            slots=2, tenant_budgets={"team": 20_000}))
        first = submit(engine, tenant="team")
        assert not first.store_forced
        second = submit(engine, tenant="team")
        assert second.store_forced  # first's reservation is still held

    def test_finished_jobs_release_their_reservation(self):
        engine = CampaignEngine(EngineConfig(
            slots=1, tenant_budgets={"team": 20_000}))
        first = submit(engine, tenant="team")
        engine.run_until_idle()
        assert first.state == "done"
        second = submit(engine, tenant="team")
        assert not second.store_forced

    def test_exhausted_budget_refuses_admission(self):
        engine = CampaignEngine(EngineConfig(
            slots=1, tenant_budgets={"broke": 512}))
        with pytest.raises(BudgetExceeded):
            submit(engine, tenant="broke")

    def test_forced_campaign_still_equals_exact_when_collision_free(self):
        """At this campaign size the forced bitstate has no collisions,
        so even the lossy result matches the exact baseline -- and the
        omission probability is reported, not hidden."""
        engine = CampaignEngine(EngineConfig(
            slots=1, tenant_budgets={"poor": 8192}))
        job = submit(engine, tenant="poor")
        engine.run_until_idle()
        result = engine.result(job.job_id)
        exact = DistributedChecker(SPEC, workers=1).run()
        assert result.visited_states == exact.visited_states
        assert result.omission_possible


# ------------------------------------------------------------- the wire --
def encode_decode(document):
    return decode_line(encode_line(document))


class TestWireFraming:
    def test_encode_is_byte_stable(self):
        first = encode_line({"b": 1, "a": {"y": 2, "x": 3}})
        second = encode_line({"a": {"x": 3, "y": 2}, "b": 1})
        assert first == second

    def test_round_trip(self):
        document = {"op": "submit", "id": 7, "spec": {"units": 4}}
        assert encode_decode(document) == document

    def test_junk_raises_protocol_error(self):
        from repro.server.protocol import ProtocolError

        with pytest.raises(ProtocolError):
            decode_line(b"not json at all {")
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]")

    def test_job_event_round_trip(self):
        event = JobEvent(kind="progress", job_id="job-0001", seq=3,
                         vtime=1.5, payload={"unit": 2})
        assert JobEvent.from_dict(
            encode_decode(event.to_dict())) == event


@pytest.fixture()
def server(tmp_path):
    """A real daemon on a real Unix socket, running in a thread."""
    instance = ReproServer(
        socket_path=str(tmp_path / "repro.sock"),
        config=EngineConfig(slots=2,
                            spool_dir=str(tmp_path / "spool"),
                            trail_dir=str(tmp_path / "trails"),
                            tenant_budgets={"poor": 4096}))
    instance.start()  # bind before the loop thread: no connect race
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance._stopping = True
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestDaemon:
    def test_ping(self, server):
        with ReproClient(socket_path=server.socket_path) as client:
            reply = client.ping()
        assert reply["pong"] is True
        assert reply["version"] == 1

    def test_two_clients_submit_and_watch_concurrently(self, server,
                                                       baseline):
        with ReproClient(socket_path=server.socket_path) as one, \
                ReproClient(socket_path=server.socket_path) as two:
            first = one.submit(SPEC, tenant="a")
            second = two.submit(SPEC, tenant="poor")
            assert second["store_forced"]
            first_events = list(one.watch(first["job_id"]))
            second_events = list(two.watch(second["job_id"]))
            assert first_events[-1]["kind"] == "done"
            assert second_events[-1]["kind"] == "done"
            for job_id in (first["job_id"], second["job_id"]):
                served = DistResult.from_dict(one.result(job_id))
                assert fingerprint(served) == fingerprint(baseline)

    def test_watch_replays_for_late_subscribers(self, server):
        with ReproClient(socket_path=server.socket_path) as client:
            job = client.submit(SPEC)
            client.wait(job["job_id"])
            # a second client arrives after the job finished: the
            # replay alone must carry the whole lifecycle
            with ReproClient(socket_path=server.socket_path) as late:
                events = list(late.watch(job["job_id"]))
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "done"

    def test_watch_finished_job_beyond_its_events_returns(self, server):
        with ReproClient(socket_path=server.socket_path) as client:
            job = client.submit(SPEC)
            client.wait(job["job_id"])
            events = list(client.watch(job["job_id"], from_seq=10**9))
        assert events == []  # returns promptly instead of hanging

    def test_errors_come_back_as_failed_requests(self, server):
        from repro.server import RequestFailed

        with ReproClient(socket_path=server.socket_path) as client:
            with pytest.raises(RequestFailed, match="UnknownJob"):
                client.job("job-9999")
            # the first submit reserves most of tenant "poor"'s 4096
            # bytes; the second cannot fit even the smallest useful
            # forced store and is refused outright
            first = client.submit(SPEC, tenant="poor")
            client.pause(first["job_id"])  # hold the reservation
            with pytest.raises(RequestFailed, match="BudgetExceeded"):
                client.submit(SPEC, tenant="poor")

    def test_graceful_shutdown_spools_running_jobs(self, tmp_path,
                                                   baseline):
        """Daemon restart over the wire: pause-on-shutdown, new daemon
        on the same spool, resume, identical result."""
        spool = str(tmp_path / "spool")
        first = ReproServer(socket_path=str(tmp_path / "one.sock"),
                            config=EngineConfig(slots=1, spool_dir=spool))
        first.start()
        thread = threading.Thread(target=first.serve_forever, daemon=True)
        thread.start()
        with ReproClient(socket_path=first.socket_path) as client:
            job = client.submit(SPEC)
            for _ in range(500):
                if client.job(job["job_id"])["units_done"] > 0:
                    break
            client.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()

        second = ReproServer(socket_path=str(tmp_path / "two.sock"),
                             config=EngineConfig(slots=1, spool_dir=spool))
        restored = second.engine.job(job["job_id"])
        # tiny campaigns can beat the shutdown request; either way the
        # restarted daemon must end up with the one-shot result
        if restored.state == "paused":
            second.engine.resume(job["job_id"])
        second.engine.run_until_idle()
        assert second.engine.job(job["job_id"]).state == "done"
        assert fingerprint(second.engine.result(job["job_id"])) == \
            fingerprint(baseline)
