"""Copy-on-write device snapshots: sharing, accounting, restore.

The storage refactor keeps the public ``read``/``write``/
``snapshot_image``/``restore_image`` surface but stores data as a table
of refcounted immutable chunks.  These tests pin down the contract the
checkpoint hot path depends on: snapshots share untouched chunks, dirty
accounting counts exactly the rewritten bytes, and the new
``bytes_snapshotted``/``bytes_restored`` counters make snapshot traffic
visible (restores used to be invisible to every report).
"""

from __future__ import annotations

import pytest

from repro import RAMBlockDevice, SimClock
from repro.core.futs import make_block_fut
from repro.errors import DeviceError
from repro.fs.ext2 import Ext2FileSystemType
from repro.storage.device import DiskSnapshot
from repro.storage.fault import PowerCutDevice, PowerCutMTD
from repro.storage.mtd import MTDBlockAdapter, MTDDevice

CHUNK = 4096


def make_device(size=16 * CHUNK):
    return RAMBlockDevice(size, clock=SimClock(), name="dev")


class TestChunkSharing:
    def test_snapshot_shares_untouched_chunks(self):
        device = make_device()
        device.write(0, b"A" * CHUNK)
        first = device.snapshot_chunks()
        device.write(0, b"B" * CHUNK)
        second = device.snapshot_chunks()
        # chunk 0 diverged; every other chunk is the same object
        assert first.chunks[0] is not second.chunks[0]
        for index in range(1, len(first.chunks)):
            assert first.chunks[index] is second.chunks[index]

    def test_identical_rewrite_keeps_chunk_identity(self):
        device = make_device()
        device.write(0, b"A" * CHUNK)
        snapshot = device.snapshot_chunks()
        device.write(0, b"A" * CHUNK)  # same content: no COW copy
        assert device.dirty_bytes_since_snapshot == 0
        assert device.snapshot_chunks().chunks[0] is snapshot.chunks[0]

    def test_materialize_round_trips(self):
        device = make_device()
        device.write(100, b"payload")
        snapshot = device.snapshot_chunks()
        image = snapshot.materialize()
        assert len(image) == device.size_bytes
        assert image[100:107] == b"payload"
        assert image == device.snapshot_image()


class TestDirtyAccounting:
    def test_dirty_bytes_track_rewritten_chunks(self):
        device = make_device()
        assert device.dirty_bytes_since_snapshot == 0
        device.write(0, b"x")  # dirties one whole chunk
        assert device.dirty_bytes_since_snapshot == CHUNK
        device.write(1, b"y")  # same chunk: no growth
        assert device.dirty_bytes_since_snapshot == CHUNK
        device.write(CHUNK, b"z")  # second chunk
        assert device.dirty_bytes_since_snapshot == 2 * CHUNK

    def test_snapshot_clears_dirty_and_counts_copied_bytes(self):
        device = make_device()
        device.write(0, b"x")
        device.snapshot_chunks()
        assert device.stats.bytes_snapshotted == CHUNK
        assert device.dirty_bytes_since_snapshot == 0
        device.snapshot_chunks()  # nothing new: free
        assert device.stats.bytes_snapshotted == CHUNK

    def test_snapshot_image_counts_the_whole_device(self):
        device = make_device()
        device.snapshot_image()
        assert device.stats.bytes_snapshotted == device.size_bytes


class TestRestore:
    def test_restore_snapshot_returns_diverged_bytes(self):
        device = make_device()
        device.write(0, b"A" * CHUNK)
        snapshot = device.snapshot_chunks()
        device.write(0, b"B" * CHUNK)
        device.write(CHUNK, b"C" * CHUNK)
        changed = device.restore_snapshot(snapshot)
        assert changed == 2 * CHUNK
        assert device.stats.bytes_restored == 2 * CHUNK
        assert device.read(0, CHUNK) == b"A" * CHUNK
        assert device.read(CHUNK, 1) == b"\x00"

    def test_restore_snapshot_rejects_wrong_geometry(self):
        device = make_device()
        other = make_device(size=8 * CHUNK)
        with pytest.raises(DeviceError):
            device.restore_snapshot(other.snapshot_chunks())

    def test_restore_image_counts_only_diverged_chunks(self):
        device = make_device()
        device.write(0, b"A" * CHUNK)
        image = device.snapshot_image()
        device.stats.reset()
        device.write(2 * CHUNK, b"D" * CHUNK)
        device.restore_image(image)
        # chunk 0 already matches the image; only chunk 2 is rewritten
        assert device.stats.bytes_restored == CHUNK
        assert device.read(2 * CHUNK, CHUNK) == b"\x00" * CHUNK

    def test_restore_image_rejects_wrong_length(self):
        device = make_device()
        with pytest.raises(DeviceError):
            device.restore_image(b"short")


class TestMTDAndFaultProxies:
    def test_mtd_snapshot_chunks_are_erase_blocks(self):
        mtd = MTDDevice(64 * 1024, clock=SimClock(), name="mtd")
        snapshot = mtd.snapshot_chunks()
        assert snapshot.chunk_size == mtd.erase_block_size
        assert snapshot.materialize() == b"\xff" * mtd.size_bytes

    def test_mtd_erase_write_restore_round_trip(self):
        mtd = MTDDevice(64 * 1024, clock=SimClock(), name="mtd")
        snapshot = mtd.snapshot_chunks()
        mtd.write(0, b"\x00" * 16)  # program bits down from 0xFF
        assert mtd.dirty_bytes_since_snapshot == mtd.erase_block_size
        mtd.restore_snapshot(snapshot)
        assert mtd.read(0, 16) == b"\xff" * 16

    def test_mtd_block_adapter_delegates_to_mtd(self):
        mtd = MTDDevice(64 * 1024, clock=SimClock(), name="mtd")
        adapter = MTDBlockAdapter(mtd)
        adapter.write(0, b"hello")
        snapshot = adapter.snapshot_chunks()
        assert snapshot.device_name == mtd.name
        adapter.write(0, b"WORLD")
        adapter.restore_snapshot(snapshot)
        assert adapter.read(0, 5) == b"hello"

    def test_power_cut_proxies_delegate_cow_surface(self):
        inner = make_device()
        proxy = PowerCutDevice(inner)
        proxy.write(0, b"abc")
        assert proxy.dirty_bytes_since_snapshot == CHUNK
        snapshot = proxy.snapshot_chunks()
        proxy.write(0, b"xyz")
        assert proxy.restore_snapshot(snapshot) == CHUNK
        assert inner.read(0, 3) == b"abc"

        mtd_proxy = PowerCutMTD(MTDDevice(64 * 1024, clock=SimClock()))
        token = mtd_proxy.snapshot_chunks()
        assert isinstance(token, DiskSnapshot)


class TestVfsCheckpointRidesCow:
    def test_vfs_checkpoint_data_plane_is_a_chunk_grab(self):
        """The satellite fix: ``vfs_checkpoint`` used to deep-copy the
        device along with the driver; now the data plane is a shared
        DiskSnapshot and only the driver tables are copied."""
        clock = SimClock()
        device = RAMBlockDevice(256 * 1024, clock=clock, name="dev0")
        fut = make_block_fut("ext2", Ext2FileSystemType(), device, clock)
        token = fut.vfs_checkpoint()
        assert isinstance(token["image"], DiskSnapshot)
        # the snapshot's chunks are the device's own (shared, not copied)
        live = device.snapshot_chunks()
        assert all(a is b for a, b in zip(token["image"].chunks, live.chunks))
        # the driver copy is pinned to the same device object
        assert token["driver"].device is device
