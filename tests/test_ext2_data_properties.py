"""Model-based properties for the ext2/ext4 data path (indirect blocks).

The xfs module has its extent-algebra property suite; this is the same
treatment for the ext family's direct + single-indirect block mapping,
plus journal-specific invariants under random workloads.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import SimClock
from repro.errors import FsError
from repro.fs import Ext2FileSystemType, Ext4FileSystemType
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_RDWR, O_WRONLY
from repro.storage import RAMBlockDevice


def fresh(fstype_cls):
    clock = SimClock()
    kernel = Kernel(clock)
    fstype = fstype_cls()
    device = RAMBlockDevice(512 * 1024, clock=clock)
    fstype.mkfs(device)
    kernel.mount(fstype, device, "/m")
    return kernel


@pytest.mark.parametrize("fstype_cls", [Ext2FileSystemType, Ext4FileSystemType])
class TestDataPathAlgebra:
    @settings(max_examples=20, deadline=None)
    @given(script=st.lists(st.tuples(st.sampled_from(["write", "truncate"]),
                                     st.integers(0, 40_000),
                                     st.binary(min_size=1, max_size=3_000)),
                           min_size=1, max_size=10))
    def test_content_matches_bytearray_model(self, fstype_cls, script):
        kernel = fresh(fstype_cls)
        fd = kernel.open("/m/f", O_CREAT | O_RDWR)
        model = bytearray()
        for op, position, payload in script:
            if op == "write":
                try:
                    kernel.pwrite(fd, payload, position)
                except FsError:
                    continue  # EFBIG/ENOSPC: model unchanged
                end = position + len(payload)
                if len(model) < position:
                    model.extend(b"\x00" * (position - len(model)))
                if len(model) < end:
                    model.extend(b"\x00" * (end - len(model)))
                model[position:end] = payload
            else:
                size = position % 30_000
                try:
                    kernel.ftruncate(fd, size)
                except FsError:
                    continue
                if size <= len(model):
                    del model[size:]
                else:
                    model.extend(b"\x00" * (size - len(model)))
        assert kernel.fstat(fd).st_size == len(model)
        assert kernel.pread(fd, len(model) + 16, 0) == bytes(model)
        kernel.close(fd)
        assert kernel.mount_at("/m").fs.check_consistency() == []

    @settings(max_examples=12, deadline=None)
    @given(writes=st.lists(st.tuples(st.integers(0, 40_000),
                                     st.binary(min_size=1, max_size=2_000)),
                           min_size=1, max_size=8))
    def test_content_survives_remount(self, fstype_cls, writes):
        kernel = fresh(fstype_cls)
        fd = kernel.open("/m/f", O_CREAT | O_WRONLY)
        model = bytearray()
        for position, payload in writes:
            try:
                kernel.pwrite(fd, payload, position)
            except FsError:
                continue
            end = position + len(payload)
            if len(model) < end:
                model.extend(b"\x00" * (end - len(model)))
            if len(model) < position:
                model.extend(b"\x00" * (position - len(model)))
            model[position:end] = payload
        kernel.close(fd)
        kernel.remount("/m")
        fd = kernel.open("/m/f")
        assert kernel.pread(fd, len(model) + 1, 0) == bytes(model)
        kernel.close(fd)

    @settings(max_examples=10, deadline=None)
    @given(sizes=st.lists(st.integers(0, 16_000), min_size=2, max_size=8))
    def test_block_accounting_balances(self, fstype_cls, sizes):
        """Grow/shrink cycles must return every freed block: after
        truncating to zero, free space equals the starting free space."""
        kernel = fresh(fstype_cls)
        baseline = kernel.statfs("/m").blocks_free
        fd = kernel.open("/m/f", O_CREAT | O_WRONLY)
        for size in sizes:
            try:
                kernel.pwrite(fd, b"z" * min(size, 4000), max(0, size - 4000))
                kernel.ftruncate(fd, size)
            except FsError:
                break
        kernel.ftruncate(fd, 0)
        kernel.close(fd)
        kernel.unlink("/m/f")
        assert kernel.statfs("/m").blocks_free == baseline
        assert kernel.mount_at("/m").fs.check_consistency() == []
