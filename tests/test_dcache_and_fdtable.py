"""Direct unit tests for the dentry cache and fd table."""

import copy

import pytest

from repro.errors import EBADF, EMFILE, FsError
from repro.kernel.dcache import DentryCache, NEGATIVE
from repro.kernel.stat import DT_DIR, DT_UNKNOWN
from repro.kernel.fdtable import (
    FDTable,
    O_APPEND,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    OpenFile,
)


class TestDentryCache:
    def test_miss_returns_none(self):
        cache = DentryCache()
        assert cache.get(1, 2, "name") is None
        assert cache.stats.misses == 1

    def test_positive_hit(self):
        cache = DentryCache()
        cache.insert(1, 2, "name", 99)
        assert cache.get(1, 2, "name") == (99, DT_UNKNOWN)
        assert cache.stats.hits == 1

    def test_positive_hit_remembers_dtype(self):
        cache = DentryCache()
        cache.insert(1, 2, "name", 99, DT_DIR)
        assert cache.get(1, 2, "name") == (99, DT_DIR)

    def test_negative_hit(self):
        cache = DentryCache()
        cache.insert_negative(1, 2, "gone")
        assert cache.get(1, 2, "gone") is NEGATIVE
        assert cache.stats.negative_hits == 1

    def test_entries_keyed_by_mount(self):
        cache = DentryCache()
        cache.insert(1, 2, "name", 99)
        assert cache.get(7, 2, "name") is None

    def test_invalidate_entry(self):
        cache = DentryCache()
        cache.insert(1, 2, "name", 99)
        cache.invalidate_entry(1, 2, "name")
        assert cache.get(1, 2, "name") is None
        assert cache.stats.invalidations == 1

    def test_invalidate_inode_drops_all_aliases(self):
        cache = DentryCache()
        cache.insert(1, 2, "a", 99)
        cache.insert(1, 3, "b", 99)  # hard link: same ino, another parent
        cache.insert(1, 2, "other", 50)
        cache.invalidate_inode(1, 99)
        assert cache.get(1, 2, "a") is None
        assert cache.get(1, 3, "b") is None
        assert cache.get(1, 2, "other") == (50, DT_UNKNOWN)

    def test_invalidate_inode_spares_negative_entries(self):
        cache = DentryCache()
        cache.insert_negative(1, 2, "gone")
        cache.invalidate_inode(1, 99)
        assert cache.get(1, 2, "gone") is NEGATIVE

    def test_invalidate_mount(self):
        cache = DentryCache()
        cache.insert(1, 2, "a", 9)
        cache.insert(2, 2, "a", 9)
        cache.invalidate_mount(1)
        assert cache.entry_count(1) == 0
        assert cache.entry_count(2) == 1

    def test_disabled_cache_never_stores(self):
        cache = DentryCache(enabled=False)
        cache.insert(1, 2, "name", 99)
        assert cache.get(1, 2, "name") is None

    def test_negative_sentinel_survives_deepcopy(self):
        """VM snapshots deep-copy the kernel; identity must hold."""
        cache = DentryCache()
        cache.insert_negative(1, 2, "gone")
        clone = copy.deepcopy(cache)
        assert clone.get(1, 2, "gone") is NEGATIVE


class TestFDTable:
    def test_allocates_from_three(self):
        table = FDTable()
        entry = table.allocate(1, 10, O_RDONLY)
        assert entry.fd == 3  # 0-2 are reserved for stdio

    def test_lowest_free_reused(self):
        table = FDTable()
        a = table.allocate(1, 10, O_RDONLY)
        b = table.allocate(1, 11, O_RDONLY)
        table.close(a.fd)
        c = table.allocate(1, 12, O_RDONLY)
        assert c.fd == a.fd

    def test_get_unknown_ebadf(self):
        with pytest.raises(FsError) as excinfo:
            FDTable().get(7)
        assert excinfo.value.code == EBADF

    def test_close_unknown_ebadf(self):
        with pytest.raises(FsError) as excinfo:
            FDTable().close(7)
        assert excinfo.value.code == EBADF

    def test_table_exhaustion_emfile(self):
        table = FDTable(max_fds=6)
        for _ in range(3):  # fds 3,4,5
            table.allocate(1, 1, O_RDONLY)
        with pytest.raises(FsError) as excinfo:
            table.allocate(1, 1, O_RDONLY)
        assert excinfo.value.code == EMFILE

    def test_open_fds_for_mount(self):
        table = FDTable()
        table.allocate(1, 10, O_RDONLY)
        table.allocate(2, 10, O_RDONLY)
        table.allocate(1, 11, O_RDONLY)
        assert len(table.open_fds_for_mount(1)) == 2
        assert table.open_count() == 3

    def test_access_mode_flags(self):
        read_only = OpenFile(fd=3, mount_id=1, ino=1, flags=O_RDONLY)
        write_only = OpenFile(fd=4, mount_id=1, ino=1, flags=O_WRONLY)
        read_write = OpenFile(fd=5, mount_id=1, ino=1, flags=O_RDWR)
        appender = OpenFile(fd=6, mount_id=1, ino=1, flags=O_WRONLY | O_APPEND)
        assert read_only.readable and not read_only.writable
        assert write_only.writable and not write_only.readable
        assert read_write.readable and read_write.writable
        assert appender.append
