"""POSIX-surface conformance tests, parametrized over every file system.

These run against ext2, ext4, xfs, jffs2, verifs1, and verifs2 through
the kernel's syscall interface -- the same surface MCFS compares.  Any
behaviour asserted here is behaviour MCFS's integrity checks rely on
being identical across implementations.
"""

import pytest

from repro.errors import (
    EEXIST,
    EINVAL,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
    ENOSYS,
    FsError,
)
from repro.kernel.fdtable import O_CREAT, O_RDWR, O_WRONLY


def create_file(fx, rel, data=b""):
    fd = fx.kernel.open(fx.path(rel), O_CREAT | O_RDWR)
    if data:
        fx.kernel.write(fd, data)
    fx.kernel.close(fd)


def read_file(fx, rel, length=1 << 20):
    fd = fx.kernel.open(fx.path(rel))
    try:
        return fx.kernel.read(fd, length)
    finally:
        fx.kernel.close(fd)


class TestFilesAndData:
    def test_create_read_write(self, mounted_fs):
        create_file(mounted_fs, "/f", b"hello world")
        assert read_file(mounted_fs, "/f") == b"hello world"

    def test_empty_file(self, mounted_fs):
        create_file(mounted_fs, "/f")
        assert read_file(mounted_fs, "/f") == b""
        assert mounted_fs.kernel.stat(mounted_fs.path("/f")).st_size == 0

    def test_overwrite_middle(self, mounted_fs):
        create_file(mounted_fs, "/f", b"aaaaaaaaaa")
        fd = mounted_fs.kernel.open(mounted_fs.path("/f"), O_WRONLY)
        mounted_fs.kernel.pwrite(fd, b"BB", 4)
        mounted_fs.kernel.close(fd)
        assert read_file(mounted_fs, "/f") == b"aaaaBBaaaa"

    def test_sparse_write_reads_zeros(self, mounted_fs):
        create_file(mounted_fs, "/f")
        fd = mounted_fs.kernel.open(mounted_fs.path("/f"), O_WRONLY)
        mounted_fs.kernel.pwrite(fd, b"end", 5000)
        mounted_fs.kernel.close(fd)
        data = read_file(mounted_fs, "/f")
        assert len(data) == 5003
        assert data[:5000] == b"\x00" * 5000
        assert data[5000:] == b"end"

    def test_read_past_eof_is_short(self, mounted_fs):
        create_file(mounted_fs, "/f", b"abc")
        fd = mounted_fs.kernel.open(mounted_fs.path("/f"))
        assert mounted_fs.kernel.pread(fd, 100, 2) == b"c"
        assert mounted_fs.kernel.pread(fd, 100, 3) == b""
        mounted_fs.kernel.close(fd)

    def test_multi_block_content(self, mounted_fs):
        payload = bytes(range(256)) * 40  # 10240 bytes, crosses blocks
        create_file(mounted_fs, "/f", payload)
        assert read_file(mounted_fs, "/f") == payload

    def test_write_updates_mtime(self, mounted_fs):
        create_file(mounted_fs, "/f", b"x")
        before = mounted_fs.kernel.stat(mounted_fs.path("/f")).st_mtime
        mounted_fs.clock.charge(1.0, "test")
        fd = mounted_fs.kernel.open(mounted_fs.path("/f"), O_WRONLY)
        mounted_fs.kernel.write(fd, b"y")
        mounted_fs.kernel.close(fd)
        assert mounted_fs.kernel.stat(mounted_fs.path("/f")).st_mtime > before


class TestTruncate:
    def test_shrink(self, mounted_fs):
        create_file(mounted_fs, "/f", b"0123456789")
        mounted_fs.kernel.truncate(mounted_fs.path("/f"), 4)
        assert read_file(mounted_fs, "/f") == b"0123"

    def test_expand_exposes_zeros(self, mounted_fs):
        create_file(mounted_fs, "/f", b"abc")
        mounted_fs.kernel.truncate(mounted_fs.path("/f"), 8)
        assert read_file(mounted_fs, "/f") == b"abc" + b"\x00" * 5

    def test_shrink_then_expand_exposes_zeros(self, mounted_fs):
        """The VeriFS1 truncate bug's signature: this must read zeros."""
        create_file(mounted_fs, "/f", b"ABCDEFGH")
        mounted_fs.kernel.truncate(mounted_fs.path("/f"), 2)
        mounted_fs.kernel.truncate(mounted_fs.path("/f"), 8)
        assert read_file(mounted_fs, "/f") == b"AB" + b"\x00" * 6

    def test_truncate_to_zero(self, mounted_fs):
        create_file(mounted_fs, "/f", b"data")
        mounted_fs.kernel.truncate(mounted_fs.path("/f"), 0)
        assert mounted_fs.kernel.stat(mounted_fs.path("/f")).st_size == 0

    def test_truncate_directory_eisdir(self, mounted_fs):
        mounted_fs.kernel.mkdir(mounted_fs.path("/d"))
        with pytest.raises(FsError) as excinfo:
            mounted_fs.kernel.truncate(mounted_fs.path("/d"), 0)
        assert excinfo.value.code == EISDIR

    def test_truncate_missing_enoent(self, mounted_fs):
        with pytest.raises(FsError) as excinfo:
            mounted_fs.kernel.truncate(mounted_fs.path("/nope"), 0)
        assert excinfo.value.code == ENOENT

    def test_shrink_then_hole_write_reads_zeros(self, mounted_fs):
        """The VeriFS2 write-hole bug's signature: the gap must be zeros."""
        create_file(mounted_fs, "/f", b"AAAA")
        mounted_fs.kernel.truncate(mounted_fs.path("/f"), 2)
        fd = mounted_fs.kernel.open(mounted_fs.path("/f"), O_WRONLY)
        mounted_fs.kernel.pwrite(fd, b"ZZ", 6)
        mounted_fs.kernel.close(fd)
        assert read_file(mounted_fs, "/f") == b"AA\x00\x00\x00\x00ZZ"

    def test_append_after_write_updates_size(self, mounted_fs):
        """The VeriFS2 size-update bug's signature: appends must be seen."""
        create_file(mounted_fs, "/f", b"AAAA")
        fd = mounted_fs.kernel.open(mounted_fs.path("/f"), O_WRONLY)
        mounted_fs.kernel.pwrite(fd, b"BB", 4)
        mounted_fs.kernel.close(fd)
        assert mounted_fs.kernel.stat(mounted_fs.path("/f")).st_size == 6
        assert read_file(mounted_fs, "/f") == b"AAAABB"


class TestDirectories:
    def test_mkdir_rmdir(self, mounted_fs):
        mounted_fs.kernel.mkdir(mounted_fs.path("/d"))
        assert mounted_fs.kernel.stat(mounted_fs.path("/d")).is_dir
        mounted_fs.kernel.rmdir(mounted_fs.path("/d"))
        with pytest.raises(FsError):
            mounted_fs.kernel.stat(mounted_fs.path("/d"))

    def test_mkdir_existing_eexist(self, mounted_fs):
        mounted_fs.kernel.mkdir(mounted_fs.path("/d"))
        with pytest.raises(FsError) as excinfo:
            mounted_fs.kernel.mkdir(mounted_fs.path("/d"))
        assert excinfo.value.code == EEXIST

    def test_mkdir_missing_parent_enoent(self, mounted_fs):
        with pytest.raises(FsError) as excinfo:
            mounted_fs.kernel.mkdir(mounted_fs.path("/no/such"))
        assert excinfo.value.code == ENOENT

    def test_rmdir_nonempty_enotempty(self, mounted_fs):
        mounted_fs.kernel.mkdir(mounted_fs.path("/d"))
        create_file(mounted_fs, "/d/f")
        with pytest.raises(FsError) as excinfo:
            mounted_fs.kernel.rmdir(mounted_fs.path("/d"))
        assert excinfo.value.code == ENOTEMPTY

    def test_rmdir_on_file_enotdir(self, mounted_fs):
        create_file(mounted_fs, "/f")
        with pytest.raises(FsError) as excinfo:
            mounted_fs.kernel.rmdir(mounted_fs.path("/f"))
        assert excinfo.value.code == ENOTDIR

    def test_unlink_on_dir_eisdir(self, mounted_fs):
        mounted_fs.kernel.mkdir(mounted_fs.path("/d"))
        with pytest.raises(FsError) as excinfo:
            mounted_fs.kernel.unlink(mounted_fs.path("/d"))
        assert excinfo.value.code == EISDIR

    def test_getdents_lists_children(self, mounted_fs):
        mounted_fs.kernel.mkdir(mounted_fs.path("/d"))
        create_file(mounted_fs, "/f")
        names = {entry.name for entry in mounted_fs.kernel.getdents(mounted_fs.mountpoint)}
        assert {"d", "f"} <= names

    def test_getdents_excludes_dot_entries(self, mounted_fs):
        names = {entry.name for entry in mounted_fs.kernel.getdents(mounted_fs.mountpoint)}
        assert "." not in names and ".." not in names

    def test_nested_directories(self, mounted_fs):
        mounted_fs.kernel.mkdir(mounted_fs.path("/a"))
        mounted_fs.kernel.mkdir(mounted_fs.path("/a/b"))
        mounted_fs.kernel.mkdir(mounted_fs.path("/a/b/c"))
        create_file(mounted_fs, "/a/b/c/deep", b"x")
        assert read_file(mounted_fs, "/a/b/c/deep") == b"x"

    def test_dir_nlink_counts_subdirs(self, mounted_fs):
        mounted_fs.kernel.mkdir(mounted_fs.path("/d"))
        base = mounted_fs.kernel.stat(mounted_fs.path("/d")).st_nlink
        assert base == 2
        mounted_fs.kernel.mkdir(mounted_fs.path("/d/sub"))
        assert mounted_fs.kernel.stat(mounted_fs.path("/d")).st_nlink == 3
        mounted_fs.kernel.rmdir(mounted_fs.path("/d/sub"))
        assert mounted_fs.kernel.stat(mounted_fs.path("/d")).st_nlink == 2


class TestUnlink:
    def test_unlink_removes(self, mounted_fs):
        create_file(mounted_fs, "/f", b"x")
        mounted_fs.kernel.unlink(mounted_fs.path("/f"))
        with pytest.raises(FsError) as excinfo:
            mounted_fs.kernel.stat(mounted_fs.path("/f"))
        assert excinfo.value.code == ENOENT

    def test_unlink_missing_enoent(self, mounted_fs):
        with pytest.raises(FsError) as excinfo:
            mounted_fs.kernel.unlink(mounted_fs.path("/nope"))
        assert excinfo.value.code == ENOENT

    def test_recreate_after_unlink(self, mounted_fs):
        create_file(mounted_fs, "/f", b"first")
        mounted_fs.kernel.unlink(mounted_fs.path("/f"))
        create_file(mounted_fs, "/f", b"second")
        assert read_file(mounted_fs, "/f") == b"second"


class TestRename:
    def test_simple_rename(self, mounted_fs):
        if not mounted_fs.supports_links:
            pytest.skip("verifs1 lacks rename")
        create_file(mounted_fs, "/a", b"data")
        mounted_fs.kernel.rename(mounted_fs.path("/a"), mounted_fs.path("/b"))
        assert read_file(mounted_fs, "/b") == b"data"
        with pytest.raises(FsError):
            mounted_fs.kernel.stat(mounted_fs.path("/a"))

    def test_rename_replaces_target(self, mounted_fs):
        if not mounted_fs.supports_links:
            pytest.skip("verifs1 lacks rename")
        create_file(mounted_fs, "/a", b"new")
        create_file(mounted_fs, "/b", b"old")
        mounted_fs.kernel.rename(mounted_fs.path("/a"), mounted_fs.path("/b"))
        assert read_file(mounted_fs, "/b") == b"new"

    def test_rename_dir_into_subtree_einval(self, mounted_fs):
        if not mounted_fs.supports_links:
            pytest.skip("verifs1 lacks rename")
        mounted_fs.kernel.mkdir(mounted_fs.path("/d"))
        mounted_fs.kernel.mkdir(mounted_fs.path("/d/sub"))
        with pytest.raises(FsError) as excinfo:
            mounted_fs.kernel.rename(mounted_fs.path("/d"), mounted_fs.path("/d/sub/x"))
        assert excinfo.value.code == EINVAL

    def test_rename_moves_directory_tree(self, mounted_fs):
        if not mounted_fs.supports_links:
            pytest.skip("verifs1 lacks rename")
        mounted_fs.kernel.mkdir(mounted_fs.path("/src"))
        create_file(mounted_fs, "/src/f", b"content")
        mounted_fs.kernel.mkdir(mounted_fs.path("/dst"))
        mounted_fs.kernel.rename(mounted_fs.path("/src"), mounted_fs.path("/dst/moved"))
        assert read_file(mounted_fs, "/dst/moved/f") == b"content"

    def test_rename_missing_source_enoent(self, mounted_fs):
        if not mounted_fs.supports_links:
            pytest.skip("verifs1 lacks rename")
        with pytest.raises(FsError) as excinfo:
            mounted_fs.kernel.rename(mounted_fs.path("/nope"), mounted_fs.path("/x"))
        assert excinfo.value.code == ENOENT

    def test_rename_onto_self_noop(self, mounted_fs):
        if not mounted_fs.supports_links:
            pytest.skip("verifs1 lacks rename")
        create_file(mounted_fs, "/a", b"data")
        mounted_fs.kernel.rename(mounted_fs.path("/a"), mounted_fs.path("/a"))
        assert read_file(mounted_fs, "/a") == b"data"


class TestLinks:
    def test_hard_link_shares_data(self, mounted_fs):
        if not mounted_fs.supports_links:
            pytest.skip("verifs1 lacks links")
        create_file(mounted_fs, "/a", b"shared")
        mounted_fs.kernel.link(mounted_fs.path("/a"), mounted_fs.path("/b"))
        assert read_file(mounted_fs, "/b") == b"shared"
        assert mounted_fs.kernel.stat(mounted_fs.path("/a")).st_nlink == 2
        assert (mounted_fs.kernel.stat(mounted_fs.path("/a")).st_ino
                == mounted_fs.kernel.stat(mounted_fs.path("/b")).st_ino)

    def test_unlink_one_name_keeps_data(self, mounted_fs):
        if not mounted_fs.supports_links:
            pytest.skip("verifs1 lacks links")
        create_file(mounted_fs, "/a", b"kept")
        mounted_fs.kernel.link(mounted_fs.path("/a"), mounted_fs.path("/b"))
        mounted_fs.kernel.unlink(mounted_fs.path("/a"))
        assert read_file(mounted_fs, "/b") == b"kept"
        assert mounted_fs.kernel.stat(mounted_fs.path("/b")).st_nlink == 1

    def test_link_to_dir_rejected(self, mounted_fs):
        if not mounted_fs.supports_links:
            pytest.skip("verifs1 lacks links")
        mounted_fs.kernel.mkdir(mounted_fs.path("/d"))
        with pytest.raises(FsError):
            mounted_fs.kernel.link(mounted_fs.path("/d"), mounted_fs.path("/d2"))

    def test_symlink_readlink(self, mounted_fs):
        if not mounted_fs.supports_links:
            pytest.skip("verifs1 lacks symlinks")
        mounted_fs.kernel.symlink("some/target", mounted_fs.path("/lnk"))
        assert mounted_fs.kernel.readlink(mounted_fs.path("/lnk")) == "some/target"

    def test_verifs1_rename_is_enosys(self, mount_factory):
        fx = mount_factory("verifs1")
        create_file(fx, "/a")
        with pytest.raises(FsError) as excinfo:
            fx.kernel.rename(fx.path("/a"), fx.path("/b"))
        assert excinfo.value.code == ENOSYS


class TestXattrs:
    def test_set_get_list_remove(self, mounted_fs):
        if not mounted_fs.supports_xattrs:
            pytest.skip("verifs1 lacks xattrs")
        create_file(mounted_fs, "/f")
        path = mounted_fs.path("/f")
        mounted_fs.kernel.setxattr(path, "user.alpha", b"one")
        mounted_fs.kernel.setxattr(path, "user.beta", b"\x00\xfe binary")
        assert mounted_fs.kernel.listxattr(path) == ["user.alpha", "user.beta"]
        assert mounted_fs.kernel.getxattr(path, "user.beta") == b"\x00\xfe binary"
        mounted_fs.kernel.removexattr(path, "user.alpha")
        assert mounted_fs.kernel.listxattr(path) == ["user.beta"]

    def test_get_missing_enodata(self, mounted_fs):
        if not mounted_fs.supports_xattrs:
            pytest.skip("verifs1 lacks xattrs")
        from repro.errors import ENODATA
        create_file(mounted_fs, "/f")
        with pytest.raises(FsError) as excinfo:
            mounted_fs.kernel.getxattr(mounted_fs.path("/f"), "user.none")
        assert excinfo.value.code == ENODATA

    def test_remove_missing_enodata(self, mounted_fs):
        if not mounted_fs.supports_xattrs:
            pytest.skip("verifs1 lacks xattrs")
        from repro.errors import ENODATA
        create_file(mounted_fs, "/f")
        with pytest.raises(FsError) as excinfo:
            mounted_fs.kernel.removexattr(mounted_fs.path("/f"), "user.none")
        assert excinfo.value.code == ENODATA

    def test_overwrite_value(self, mounted_fs):
        if not mounted_fs.supports_xattrs:
            pytest.skip("verifs1 lacks xattrs")
        create_file(mounted_fs, "/f")
        path = mounted_fs.path("/f")
        mounted_fs.kernel.setxattr(path, "user.k", b"old")
        mounted_fs.kernel.setxattr(path, "user.k", b"new")
        assert mounted_fs.kernel.getxattr(path, "user.k") == b"new"

    def test_xattrs_on_directories(self, mounted_fs):
        if not mounted_fs.supports_xattrs:
            pytest.skip("verifs1 lacks xattrs")
        mounted_fs.kernel.mkdir(mounted_fs.path("/d"))
        mounted_fs.kernel.setxattr(mounted_fs.path("/d"), "user.dir", b"yes")
        assert mounted_fs.kernel.getxattr(mounted_fs.path("/d"), "user.dir") == b"yes"

    def test_xattrs_survive_remount(self, mounted_block_fs):
        fx = mounted_block_fs
        create_file(fx, "/f")
        fx.kernel.setxattr(fx.path("/f"), "user.persist", b"across")
        fx.kernel.remount(fx.mountpoint)
        assert fx.kernel.getxattr(fx.path("/f"), "user.persist") == b"across"

    def test_xattrs_gone_after_unlink_and_recreate(self, mounted_fs):
        if not mounted_fs.supports_xattrs:
            pytest.skip("verifs1 lacks xattrs")
        create_file(mounted_fs, "/f")
        path = mounted_fs.path("/f")
        mounted_fs.kernel.setxattr(path, "user.k", b"v")
        mounted_fs.kernel.unlink(path)
        create_file(mounted_fs, "/f")
        assert mounted_fs.kernel.listxattr(path) == []


class TestStatfs:
    def test_statfs_sane(self, mounted_fs):
        usage = mounted_fs.kernel.statfs(mounted_fs.mountpoint)
        assert usage.block_size > 0
        assert usage.blocks_total >= usage.blocks_free >= 0

    def test_write_consumes_space(self, mounted_fs):
        if mounted_fs.name == "verifs1":
            pytest.skip("verifs1 has no storage limit")
        before = mounted_fs.kernel.statfs(mounted_fs.mountpoint).bytes_free
        create_file(mounted_fs, "/f", b"x" * 8192)
        after = mounted_fs.kernel.statfs(mounted_fs.mountpoint).bytes_free
        assert after < before


class TestPersistenceAcrossRemount:
    def test_data_survives_remount(self, mounted_block_fs):
        fx = mounted_block_fs
        fx.kernel.mkdir(fx.path("/d"))
        create_file(fx, "/d/f", b"persistent")
        fx.kernel.remount(fx.mountpoint)
        assert read_file(fx, "/d/f") == b"persistent"

    def test_metadata_survives_remount(self, mounted_block_fs):
        fx = mounted_block_fs
        create_file(fx, "/f", b"xyz")
        fx.kernel.chmod(fx.path("/f"), 0o600)
        fx.kernel.remount(fx.mountpoint)
        attrs = fx.kernel.stat(fx.path("/f"))
        assert attrs.st_mode & 0o7777 == 0o600
        assert attrs.st_size == 3

    def test_unlink_survives_remount(self, mounted_block_fs):
        fx = mounted_block_fs
        create_file(fx, "/f")
        fx.kernel.unlink(fx.path("/f"))
        fx.kernel.remount(fx.mountpoint)
        with pytest.raises(FsError):
            fx.kernel.stat(fx.path("/f"))

    def test_consistency_after_workout(self, mounted_block_fs):
        fx = mounted_block_fs
        for i in range(10):
            create_file(fx, f"/file{i}", bytes([i]) * (i * 100))
        fx.kernel.mkdir(fx.path("/d"))
        for i in range(0, 10, 2):
            fx.kernel.unlink(fx.path(f"/file{i}"))
        fx.kernel.remount(fx.mountpoint)
        assert fx.fs().check_consistency() == []
