"""SimXFS-specific behaviour: hash-order dirs, extents, dynamic inodes."""

import pytest

from repro.clock import SimClock
from repro.errors import EINVAL, FsError
from repro.fs.xfs import (
    XfsFileSystemType,
    XfsInode,
    INODE_SIZE,
    _dirent_record_size,
)
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_RDWR, O_WRONLY
from repro.storage import RAMBlockDevice
from repro.util.hashing import stable_hash64


@pytest.fixture
def fx(clock):
    kernel = Kernel(clock)
    fstype = XfsFileSystemType()
    device = RAMBlockDevice(16 * 1024 * 1024, clock=clock, name="ram0")
    fstype.mkfs(device)
    kernel.mount(fstype, device, "/mnt/xfs")
    return kernel, device, fstype


class TestMinimumSize:
    def test_small_device_rejected(self, clock):
        """The reason the paper patched brd: XFS needs 16MB minimum."""
        fstype = XfsFileSystemType()
        with pytest.raises(FsError) as excinfo:
            fstype.mkfs(RAMBlockDevice(256 * 1024, clock=clock))
        assert excinfo.value.code == EINVAL

    def test_exactly_16mb_accepted(self, clock):
        fstype = XfsFileSystemType()
        fstype.mkfs(RAMBlockDevice(16 * 1024 * 1024, clock=clock))


class TestObservableQuirks:
    def test_no_lost_and_found(self, fx):
        kernel, _, _ = fx
        assert kernel.getdents("/mnt/xfs") == []
        assert XfsFileSystemType().special_paths == ()

    def test_dir_size_is_entry_record_sum(self, fx):
        kernel, _, _ = fx
        kernel.mkdir("/mnt/xfs/d")
        kernel.close(kernel.open("/mnt/xfs/d/ab", O_CREAT))
        size = kernel.stat("/mnt/xfs/d").st_size
        expected = (_dirent_record_size(".") + _dirent_record_size("..")
                    + _dirent_record_size("ab"))
        assert size == expected
        assert size % 4096 != 0  # visibly not ext-style

    def test_getdents_hash_order(self, fx):
        kernel, _, _ = fx
        names = ["zebra", "alpha", "middle", "q1", "q2"]
        for name in names:
            kernel.close(kernel.open(f"/mnt/xfs/{name}", O_CREAT))
        listed = [e.name for e in kernel.getdents("/mnt/xfs")]
        assert listed == sorted(names, key=stable_hash64)

    def test_order_differs_from_insertion_generally(self, fx):
        kernel, _, _ = fx
        names = [f"file{i}" for i in range(8)]
        for name in names:
            kernel.close(kernel.open(f"/mnt/xfs/{name}", O_CREAT))
        listed = [e.name for e in kernel.getdents("/mnt/xfs")]
        assert set(listed) == set(names)
        assert listed != names  # hash order scrambles insertion order


class TestExtents:
    def test_inode_record_roundtrip(self):
        inode = XfsInode(33)
        inode.mode = 0o100644
        inode.size = 5000
        inode.extents = [(0, 100, 2), (5, 200, 1)]
        restored = XfsInode.unpack(33, inode.pack())
        assert restored.extents == inode.extents
        assert len(inode.pack()) == INODE_SIZE

    def test_sequential_writes_merge_extents(self, fx):
        kernel, _, _ = fx
        fd = kernel.open("/mnt/xfs/f", O_CREAT | O_WRONLY)
        kernel.write(fd, b"x" * (4096 * 5))  # five blocks, one extent run
        kernel.close(fd)
        fs = kernel.mount_at("/mnt/xfs").fs
        ino = kernel.stat("/mnt/xfs/f").st_ino
        inode = fs._load_inode(ino)
        assert len(inode.extents) <= 2
        assert inode.nblocks == 5

    def test_sparse_file_has_disjoint_extents(self, fx):
        kernel, _, _ = fx
        fd = kernel.open("/mnt/xfs/f", O_CREAT | O_WRONLY)
        kernel.pwrite(fd, b"a", 0)
        kernel.pwrite(fd, b"b", 10 * 4096)
        kernel.close(fd)
        fs = kernel.mount_at("/mnt/xfs").fs
        inode = fs._load_inode(kernel.stat("/mnt/xfs/f").st_ino)
        assert inode.nblocks == 2
        data = fs.read(inode.ino, 0, 11 * 4096)
        assert data[0:1] == b"a"
        assert data[4096] == 0  # hole reads zeros

    def test_extents_survive_remount(self, fx):
        kernel, _, _ = fx
        payload = bytes(range(256)) * 100
        fd = kernel.open("/mnt/xfs/f", O_CREAT | O_RDWR)
        kernel.write(fd, payload)
        kernel.close(fd)
        kernel.remount("/mnt/xfs")
        fd = kernel.open("/mnt/xfs/f")
        assert kernel.read(fd, len(payload)) == payload
        kernel.close(fd)


class TestDynamicInodes:
    def test_many_files_allocate_new_chunks(self, fx):
        kernel, _, _ = fx
        fs = kernel.mount_at("/mnt/xfs").fs
        chunks_before = len(fs.chunks)
        for i in range(40):  # more than INODES_PER_CHUNK
            kernel.close(kernel.open(f"/mnt/xfs/f{i}", O_CREAT))
        assert len(fs.chunks) > chunks_before

    def test_ino_encodes_location(self, fx):
        kernel, _, _ = fx
        kernel.close(kernel.open("/mnt/xfs/f", O_CREAT))
        fs = kernel.mount_at("/mnt/xfs").fs
        ino = kernel.stat("/mnt/xfs/f").st_ino
        chunk_block, slot = fs._ino_location(ino)
        assert fs._make_ino(chunk_block, slot) == ino

    def test_inode_reuse_after_unlink(self, fx):
        kernel, _, _ = fx
        kernel.close(kernel.open("/mnt/xfs/a", O_CREAT))
        ino_a = kernel.stat("/mnt/xfs/a").st_ino
        kernel.unlink("/mnt/xfs/a")
        kernel.close(kernel.open("/mnt/xfs/b", O_CREAT))
        assert kernel.stat("/mnt/xfs/b").st_ino == ino_a

    def test_inodes_survive_remount(self, fx):
        kernel, _, _ = fx
        for i in range(20):
            kernel.close(kernel.open(f"/mnt/xfs/f{i}", O_CREAT))
        kernel.remount("/mnt/xfs")
        for i in range(20):
            assert kernel.stat(f"/mnt/xfs/f{i}").is_file
        assert kernel.mount_at("/mnt/xfs").fs.check_consistency() == []
