"""Edge-case tests the broad POSIX-surface suite does not reach."""

import struct

import pytest

from repro.clock import SimClock
from repro.errors import EEXIST, EINVAL, ENODATA, ENOENT, FsError
from repro.fs import Ext2FileSystemType, Ext4FileSystemType, Jffs2FileSystemType
from repro.fs.jffs2 import HEADER_FMT, NODE_MAGIC, node_crc
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_RDWR, O_WRONLY
from repro.storage import RAMBlockDevice
from repro.storage.mtd import MTDDevice
from repro.verifs import VeriFS2
from repro.verifs.mounting import mount_verifs
from repro.verifs.verifs2 import XATTR_CREATE, XATTR_REPLACE


class TestExt2DirectoryMoves:
    @pytest.fixture
    def fx(self, clock):
        kernel = Kernel(clock)
        fstype = Ext2FileSystemType()
        device = RAMBlockDevice(256 * 1024, clock=clock)
        fstype.mkfs(device)
        kernel.mount(fstype, device, "/mnt/fs")
        return kernel

    def test_moving_directory_updates_dotdot(self, fx):
        fx.mkdir("/mnt/fs/a")
        fx.mkdir("/mnt/fs/b")
        fx.mkdir("/mnt/fs/a/child")
        fx.rename("/mnt/fs/a/child", "/mnt/fs/b/child")
        # parent link counts move with the child
        assert fx.stat("/mnt/fs/a").st_nlink == 2
        assert fx.stat("/mnt/fs/b").st_nlink == 3
        # survives remount (the on-disk ".." entry was rewritten)
        fx.remount("/mnt/fs")
        assert fx.stat("/mnt/fs/b/child").is_dir
        assert fx.mount_at("/mnt/fs").fs.check_consistency() == []

    def test_rename_replacing_empty_directory(self, fx):
        fx.mkdir("/mnt/fs/src")
        fx.mkdir("/mnt/fs/dst")
        fx.rename("/mnt/fs/src", "/mnt/fs/dst")
        assert fx.stat("/mnt/fs/dst").is_dir
        with pytest.raises(FsError):
            fx.stat("/mnt/fs/src")
        assert fx.mount_at("/mnt/fs").fs.check_consistency() == []

    def test_rename_nonempty_dir_target_refused(self, fx):
        fx.mkdir("/mnt/fs/src")
        fx.mkdir("/mnt/fs/dst")
        fx.close(fx.open("/mnt/fs/dst/keep", O_CREAT))
        with pytest.raises(FsError):
            fx.rename("/mnt/fs/src", "/mnt/fs/dst")

    def test_rename_file_over_directory_refused(self, fx):
        fx.close(fx.open("/mnt/fs/f", O_CREAT))
        fx.mkdir("/mnt/fs/d")
        with pytest.raises(FsError):
            fx.rename("/mnt/fs/f", "/mnt/fs/d")

    def test_deep_nesting_with_renames_stays_consistent(self, fx):
        fx.mkdir("/mnt/fs/a")
        fx.mkdir("/mnt/fs/a/b")
        fx.mkdir("/mnt/fs/a/b/c")
        fd = fx.open("/mnt/fs/a/b/c/f", O_CREAT | O_WRONLY)
        fx.write(fd, b"deep")
        fx.close(fd)
        fx.rename("/mnt/fs/a/b", "/mnt/fs/moved")
        fd = fx.open("/mnt/fs/moved/c/f")
        assert fx.read(fd, 10) == b"deep"
        fx.close(fd)
        fx.remount("/mnt/fs")
        assert fx.mount_at("/mnt/fs").fs.check_consistency() == []


class TestJffs2TornWrites:
    def make(self, clock):
        kernel = Kernel(clock)
        fstype = Jffs2FileSystemType()
        device = MTDDevice(256 * 1024, clock=clock)
        fstype.mkfs(device)
        kernel.mount(fstype, device, "/mnt/j")
        return kernel, device, fstype

    def test_garbage_after_log_is_ignored(self, clock):
        kernel, device, fstype = self.make(clock)
        kernel.close(kernel.open("/mnt/j/keep", O_CREAT))
        kernel.umount("/mnt/j")
        # simulate a torn write: a header with a bogus magic after the log
        fs_probe = fstype.mount(device)
        end = fs_probe._write_block * device.erase_block_size + fs_probe._write_offset
        device.write(end, struct.pack(HEADER_FMT, 0x1234, 0xE001, 64, 0))
        recovered = fstype.mount(device)
        assert recovered.lookup(recovered.ROOT_INO, "keep") > 0

    def test_truncated_node_header_stops_scan_gracefully(self, clock):
        kernel, device, fstype = self.make(clock)
        kernel.close(kernel.open("/mnt/j/keep", O_CREAT))
        kernel.umount("/mnt/j")
        fs_probe = fstype.mount(device)
        end = fs_probe._write_block * device.erase_block_size + fs_probe._write_offset
        # valid magic but absurd length: must not crash the mount scan
        device.write(end, struct.pack(HEADER_FMT, NODE_MAGIC, 0xE001, 1 << 30, 0))
        recovered = fstype.mount(device)
        assert recovered.lookup(recovered.ROOT_INO, "keep") > 0

    def test_unknown_node_type_counted_dead(self, clock):
        kernel, device, fstype = self.make(clock)
        kernel.umount("/mnt/j")
        fs_probe = fstype.mount(device)
        end = fs_probe._write_block * device.erase_block_size + fs_probe._write_offset
        body = b"\x00" * 8
        device.write(end, struct.pack(HEADER_FMT, NODE_MAGIC, 0xEEEE,
                                      struct.calcsize(HEADER_FMT) + len(body),
                                      node_crc(body))
                     + body)
        recovered = fstype.mount(device)  # must not crash
        assert recovered.check_consistency() == []


class TestVeriFS2XattrFlags:
    @pytest.fixture
    def fs_and_kernel(self, clock):
        kernel = Kernel(clock)
        fs = VeriFS2(clock=clock)
        mount_verifs(kernel, fs, "/mnt/v")
        kernel.close(kernel.open("/mnt/v/f", O_CREAT))
        return fs, kernel

    def test_create_flag_rejects_existing(self, fs_and_kernel):
        fs, kernel = fs_and_kernel
        kernel.setxattr("/mnt/v/f", "user.k", b"v1", XATTR_CREATE)
        with pytest.raises(FsError) as excinfo:
            kernel.setxattr("/mnt/v/f", "user.k", b"v2", XATTR_CREATE)
        assert excinfo.value.code == EEXIST

    def test_replace_flag_requires_existing(self, fs_and_kernel):
        fs, kernel = fs_and_kernel
        with pytest.raises(FsError) as excinfo:
            kernel.setxattr("/mnt/v/f", "user.k", b"v", XATTR_REPLACE)
        assert excinfo.value.code == ENODATA
        kernel.setxattr("/mnt/v/f", "user.k", b"v1")
        kernel.setxattr("/mnt/v/f", "user.k", b"v2", XATTR_REPLACE)
        assert kernel.getxattr("/mnt/v/f", "user.k") == b"v2"

    def test_xattrs_survive_checkpoint_restore(self, fs_and_kernel):
        from repro.verifs import IOCTL_CHECKPOINT, IOCTL_RESTORE
        fs, kernel = fs_and_kernel
        kernel.setxattr("/mnt/v/f", "user.kept", b"yes")
        fd = kernel.open("/mnt/v/f")
        kernel.ioctl(fd, IOCTL_CHECKPOINT, 5)
        kernel.close(fd)
        kernel.removexattr("/mnt/v/f", "user.kept")
        fd = kernel.open("/mnt/v/f")
        kernel.ioctl(fd, IOCTL_RESTORE, 5)
        kernel.close(fd)
        assert kernel.getxattr("/mnt/v/f", "user.kept") == b"yes"


class TestExt4JournalCapacityPath:
    def test_oversized_transaction_skips_journal_but_stays_consistent(self, clock):
        """Transactions larger than the journal bypass it (like data in
        ordered mode) yet the flush path must still be correct."""
        kernel = Kernel(clock)
        fstype = Ext4FileSystemType(journal_blocks=6)  # tiny journal
        device = RAMBlockDevice(256 * 1024, clock=clock)
        fstype.mkfs(device)
        kernel.mount(fstype, device, "/mnt/fs")
        # dirty far more blocks than the journal can hold
        for index in range(8):
            fd = kernel.open(f"/mnt/fs/f{index}", O_CREAT | O_WRONLY)
            kernel.write(fd, bytes([index]) * 3000)
            kernel.close(fd)
        kernel.remount("/mnt/fs")
        for index in range(8):
            fd = kernel.open(f"/mnt/fs/f{index}")
            assert kernel.read(fd, 5000) == bytes([index]) * 3000
            kernel.close(fd)
        assert kernel.mount_at("/mnt/fs").fs.check_consistency() == []
