"""Tests for the MTD device (mtdram) and block adapter (mtdblock)."""

import pytest

from repro.clock import SimClock
from repro.errors import DeviceError
from repro.storage.mtd import MTDBlockAdapter, MTDDevice


@pytest.fixture
def mtd():
    return MTDDevice(64 * 1024, erase_block_size=16 * 1024, clock=SimClock())


class TestFlashSemantics:
    def test_starts_erased(self, mtd):
        assert mtd.read(0, 4) == b"\xff\xff\xff\xff"
        assert mtd.is_block_erased(0)

    def test_program_clears_bits(self, mtd):
        mtd.write(0, b"\x0f")
        assert mtd.read(0, 1) == b"\x0f"

    def test_reprogram_setting_bits_rejected(self, mtd):
        mtd.write(0, b"\x0f")
        with pytest.raises(DeviceError):
            mtd.write(0, b"\xf0")  # would set cleared bits

    def test_bit_compatible_reprogram_allowed(self, mtd):
        mtd.write(0, b"\x0f")
        mtd.write(0, b"\x0e")  # only clears more bits
        assert mtd.read(0, 1) == b"\x0e"

    def test_erase_resets_block(self, mtd):
        mtd.write(0, b"\x00" * 16)
        mtd.erase_block(0)
        assert mtd.is_block_erased(0)

    def test_erase_tracks_wear(self, mtd):
        mtd.erase_block(1)
        mtd.erase_block(1)
        assert mtd.wear[1] == 2
        assert mtd.wear[0] == 0

    def test_erase_out_of_range(self, mtd):
        with pytest.raises(DeviceError):
            mtd.erase_block(4)

    def test_size_must_be_erase_block_multiple(self):
        with pytest.raises(ValueError):
            MTDDevice(10_000, erase_block_size=16 * 1024)

    def test_erase_charges_more_than_write(self):
        clock = SimClock()
        device = MTDDevice(32 * 1024, erase_block_size=16 * 1024, clock=clock)
        device.write(0, b"\x00" * 64)
        write_time = clock.now
        device.erase_block(0)
        assert clock.now - write_time > write_time


class TestSnapshotRestore:
    def test_roundtrip(self, mtd):
        mtd.write(100, b"\x12\x34")
        image = mtd.snapshot_image()
        mtd.erase_block(0)
        mtd.restore_image(image)
        assert mtd.read(100, 2) == b"\x12\x34"

    def test_wrong_size_rejected(self, mtd):
        with pytest.raises(DeviceError):
            mtd.restore_image(b"x")


class TestBlockAdapter:
    def test_read_passthrough(self, mtd):
        adapter = MTDBlockAdapter(mtd)
        mtd.write(0, b"\xaa\xbb")
        assert adapter.read(0, 2) == b"\xaa\xbb"

    def test_write_does_read_modify_erase_write(self, mtd):
        adapter = MTDBlockAdapter(mtd)
        mtd.write(0, b"\x11" * 8)
        adapter.write(4, b"\x22" * 2)  # overwrite middle; needs erase cycle
        assert mtd.read(0, 8) == b"\x11" * 4 + b"\x22" * 2 + b"\x11" * 2
        assert mtd.stats.erases >= 1

    def test_write_spanning_erase_blocks(self, mtd):
        adapter = MTDBlockAdapter(mtd)
        boundary = mtd.erase_block_size
        adapter.write(boundary - 2, b"\x01\x02\x03\x04")
        assert mtd.read(boundary - 2, 4) == b"\x01\x02\x03\x04"

    def test_snapshot_goes_through_to_mtd(self, mtd):
        adapter = MTDBlockAdapter(mtd)
        mtd.write(0, b"\x42")
        image = adapter.snapshot_image()
        mtd.erase_block(0)
        adapter.restore_image(image)
        assert mtd.read(0, 1) == b"\x42"

    def test_empty_write_is_noop(self, mtd):
        adapter = MTDBlockAdapter(mtd)
        adapter.write(0, b"")
        assert mtd.stats.erases == 0
