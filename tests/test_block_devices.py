"""Tests for RAM/HDD/SSD block devices and the brd2 registry."""

import pytest
from hypothesis import given, strategies as st

from repro.clock import SimClock
from repro.errors import DeviceError
from repro.storage import (
    HDDBlockDevice,
    RAMBlockDevice,
    RamDiskRegistry,
    SSDBlockDevice,
)


@pytest.fixture
def device():
    return RAMBlockDevice(64 * 1024, clock=SimClock(), name="ram0")


class TestBasicIO:
    def test_starts_zeroed(self, device):
        assert device.read(0, 16) == b"\x00" * 16

    def test_write_read_roundtrip(self, device):
        device.write(100, b"hello")
        assert device.read(100, 5) == b"hello"

    def test_read_past_end_rejected(self, device):
        with pytest.raises(DeviceError):
            device.read(device.size_bytes - 2, 4)

    def test_negative_offset_rejected(self, device):
        with pytest.raises(DeviceError):
            device.read(-1, 4)

    def test_write_past_end_rejected(self, device):
        with pytest.raises(DeviceError):
            device.write(device.size_bytes - 1, b"ab")

    def test_read_only_device_rejects_writes(self, device):
        device.read_only = True
        with pytest.raises(DeviceError):
            device.write(0, b"x")

    def test_size_must_be_sector_multiple(self):
        with pytest.raises(ValueError):
            RAMBlockDevice(1000, sector_size=512)


class TestBlockHelpers:
    def test_write_block_pads(self, device):
        device.write_block(2, 1024, b"abc")
        data = device.read_block(2, 1024)
        assert data[:3] == b"abc"
        assert data[3:] == b"\x00" * 1021

    def test_write_block_oversized_rejected(self, device):
        with pytest.raises(DeviceError):
            device.write_block(0, 512, b"x" * 513)


class TestStatsAndTiming:
    def test_stats_count_requests_and_bytes(self, device):
        device.write(0, b"abcd")
        device.read(0, 4)
        assert device.stats.write_requests == 1
        assert device.stats.read_requests == 1
        assert device.stats.bytes_written == 4
        assert device.stats.bytes_read == 4

    def test_io_charges_clock(self):
        clock = SimClock()
        device = RAMBlockDevice(64 * 1024, clock=clock)
        before = clock.now
        device.read(0, 4096)
        assert clock.now > before

    def test_hdd_slower_than_ssd_slower_than_ram(self):
        times = {}
        for cls in (RAMBlockDevice, SSDBlockDevice, HDDBlockDevice):
            clock = SimClock()
            dev = cls(64 * 1024, clock=clock)
            for i in range(16):
                dev.write(i * 1024, b"x" * 1024)
            times[cls.__name__] = clock.now
        assert times["RAMBlockDevice"] < times["SSDBlockDevice"] < times["HDDBlockDevice"]


class TestSnapshotRestore:
    def test_roundtrip(self, device):
        device.write(10, b"payload")
        image = device.snapshot_image()
        device.write(10, b"clobber")
        device.restore_image(image)
        assert device.read(10, 7) == b"payload"

    def test_wrong_size_image_rejected(self, device):
        with pytest.raises(DeviceError):
            device.restore_image(b"short")

    def test_snapshot_is_independent_copy(self, device):
        image = device.snapshot_image()
        device.write(0, b"changed")
        assert image[:7] == b"\x00" * 7


class TestRamDiskRegistry:
    def test_patched_driver_allows_different_sizes(self):
        registry = RamDiskRegistry()
        a = registry.create("ram0", 256 * 1024)
        b = registry.create("ram1", 16 * 1024 * 1024)
        assert a.size_bytes != b.size_bytes
        assert len(registry) == 2

    def test_stock_driver_requires_uniform_size(self):
        registry = RamDiskRegistry(uniform_size=256 * 1024)
        registry.create("ram0", 256 * 1024)
        with pytest.raises(ValueError):
            registry.create("ram1", 16 * 1024 * 1024)

    def test_duplicate_name_rejected(self):
        registry = RamDiskRegistry()
        registry.create("ram0", 1024)
        with pytest.raises(ValueError):
            registry.create("ram0", 1024)

    def test_get_and_remove(self):
        registry = RamDiskRegistry()
        device = registry.create("ram0", 1024)
        assert registry.get("ram0") is device
        registry.remove("ram0")
        assert len(registry) == 0


@given(st.data())
def test_property_write_read_consistency(data):
    device = RAMBlockDevice(8192, clock=SimClock())
    shadow = bytearray(8192)
    for _ in range(data.draw(st.integers(0, 12))):
        offset = data.draw(st.integers(0, 8000))
        payload = data.draw(st.binary(min_size=1, max_size=min(191, 8192 - offset)))
        device.write(offset, payload)
        shadow[offset : offset + len(payload)] = payload
    assert device.read(0, 8192) == bytes(shadow)
