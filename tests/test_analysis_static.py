"""Whole-program analyzer: model units, the four passes, baseline, CLI.

The positive tests double as the analyzer's *mutation self-tests*: each
fixture tree seeds one violation of one invariant and asserts the pass
flags exactly it; the paired clean fixture asserts silence.  If a pass
regresses into blindness (or into noise), these fail first.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.analysis.findings import Finding
from repro.analysis.static import (
    build_model,
    render_json,
    render_sarif,
    run_analysis,
    summary_line,
)
from repro.analysis.static.atomicity import run_atomicity_pass
from repro.analysis.static.baseline import (
    apply_baseline,
    load_baseline,
    render_baseline,
)
from repro.analysis.static.dirtymark import run_dirtymark_pass
from repro.analysis.static.model import module_name_for, reach
from repro.analysis.static.snapshot import run_snapshot_pass
from repro.analysis.static.wire import run_wire_pass


def make_tree(tmp_path, files):
    """Write a package tree; every directory gets an ``__init__.py``."""
    paths = []
    for rel, source in sorted(files.items()):
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        ancestor = target.parent
        while ancestor != tmp_path:
            init = ancestor / "__init__.py"
            if not init.exists():
                init.write_text("")
            paths.append(str(init))
            ancestor = ancestor.parent
        target.write_text(textwrap.dedent(source))
        paths.append(str(target))
    return sorted(set(paths))


def model_of(tmp_path, files):
    return build_model(make_tree(tmp_path, files))


# ------------------------------------------------------------------- model --
def test_module_name_walks_init_chain(tmp_path):
    paths = make_tree(tmp_path, {"pkg/sub/mod.py": "x = 1\n"})
    mod = [p for p in paths if p.endswith("mod.py")][0]
    assert module_name_for(mod).endswith("pkg.sub.mod")
    init = [p for p in paths if p.endswith(os.path.join("sub",
                                                        "__init__.py"))][0]
    assert module_name_for(init).endswith("pkg.sub")


def test_mro_methods_shadow_base(tmp_path):
    model = model_of(tmp_path, {"pkg/a.py": """
        class Base:
            def ping(self):
                return 1

            def pong(self):
                return 2

        class Child(Base):
            def ping(self):
                return 3
    """})
    child = [c for q, c in model.classes.items() if c.name == "Child"][0]
    table = child.mro_methods(model)
    assert table["ping"].owner.endswith("Child")
    assert table["pong"].owner.endswith("Base")


def test_cross_module_base_resolution(tmp_path):
    model = model_of(tmp_path, {
        "pkg/base.py": """
            class Store:
                def restore(self):
                    self.data = {}
        """,
        "pkg/user.py": """
            from pkg.base import Store

            class Device(Store):
                pass
        """,
    })
    device = [c for q, c in model.classes.items() if c.name == "Device"][0]
    assert "restore" in device.mro_methods(model)


def test_reach_follows_calls_and_method_reads(tmp_path):
    model = model_of(tmp_path, {"pkg/a.py": """
        class C:
            def top(self):
                return self.helper()

            def helper(self):
                return self.leaf

            @property
            def leaf(self):
                return 1

            def unrelated(self):
                return 0
    """})
    cls = [c for q, c in model.classes.items() if c.name == "C"][0]
    closure = reach(cls.mro_methods(model), ["top"])
    assert closure == {"top", "helper", "leaf"}


# -------------------------------------------- snapshot-completeness pass --
SNAPSHOT_SEEDED = {"pkg/dev.py": """
    class Tracker:
        def __init__(self):
            self.table = {}
            self.epoch = 0

        def snapshot(self):
            return dict(self.table)

        def restore(self, token):
            self.table = dict(token)

        def advance(self):
            self.epoch = self.epoch + 1
"""}

SNAPSHOT_CLEAN = {"pkg/dev.py": """
    class Tracker:
        def __init__(self):
            self.table = {}
            self.epoch = 0

        def snapshot(self):
            return (dict(self.table), self.epoch)

        def restore(self, token):
            self.table = dict(token[0])
            self.epoch = token[1]

        def advance(self):
            self.epoch = self.epoch + 1
"""}


def test_restore_blind_attr_is_flagged(tmp_path):
    findings = run_snapshot_pass(model_of(tmp_path, SNAPSHOT_SEEDED))
    assert [f.invariant for f in findings] == ["restore-blind"]
    assert findings[0].detail["symbol"] == "Tracker.epoch"
    assert findings[0].severity == "error"


def test_snapshot_covered_attr_is_clean(tmp_path):
    assert run_snapshot_pass(model_of(tmp_path, SNAPSHOT_CLEAN)) == []


def test_delegating_wrapper_is_out_of_scope(tmp_path):
    findings = run_snapshot_pass(model_of(tmp_path, {"pkg/wrap.py": """
        class PassThrough:
            def __init__(self, inner):
                self.inner = inner

            def snapshot(self):
                return self.inner.snapshot()

            def restore(self, token):
                self.inner.restore(token)

            def touch(self):
                self.inner.counter.bump()
    """}))
    assert findings == []


def test_restore_blind_seen_through_inherited_surface(tmp_path):
    findings = run_snapshot_pass(model_of(tmp_path, {
        "pkg/base.py": """
            class SnapBase:
                def snapshot(self):
                    return dict(self.state)

                def restore(self, token):
                    self.state = dict(token)
        """,
        "pkg/driver.py": """
            from pkg.base import SnapBase

            class Driver(SnapBase):
                def __init__(self):
                    self.state = {}

                def record(self):
                    self.audit_log = []
        """,
    }))
    assert [f.detail["symbol"] for f in findings] == ["Driver.audit_log"]


# ------------------------------------------------ dirty-mark coverage pass --
DIRTYMARK_SEEDED = {"pkg/mnt.py": """
    class Mount:
        def write(self, path, data):
            self.store[path] = data
            self.tracker.mark_dirty_entry(path)

        def truncate(self, path, size):
            self.store[path] = self.store[path][:size]
"""}

DIRTYMARK_CLEAN = {"pkg/mnt.py": """
    class Mount:
        def write(self, path, data):
            self.store[path] = data
            self.tracker.mark_dirty_entry(path)

        def truncate(self, path, size):
            self._apply(path, size)

        def _apply(self, path, size):
            self.store[path] = self.store[path][:size]
            self.tracker.mark_dirty_parent(path)
"""}


def test_unmarked_write_surface_is_flagged(tmp_path):
    findings = run_dirtymark_pass(model_of(tmp_path, DIRTYMARK_SEEDED))
    assert [f.detail["symbol"] for f in findings] == ["Mount.truncate"]
    assert findings[0].invariant == "dirty-mark-missing"


def test_marking_through_helper_closure_is_clean(tmp_path):
    assert run_dirtymark_pass(model_of(tmp_path, DIRTYMARK_CLEAN)) == []


def test_tracker_defining_mark_api_is_exempt(tmp_path):
    findings = run_dirtymark_pass(model_of(tmp_path, {"pkg/track.py": """
        class DirtyTracker:
            def mark_dirty_entry(self, path):
                self.dirty.add(path)

            def write(self, path, data):
                self.log.append(path)
    """}))
    assert findings == []


def test_never_marking_class_is_out_of_scope(tmp_path):
    findings = run_dirtymark_pass(model_of(tmp_path, {"pkg/plain.py": """
        class PlainStore:
            def write(self, path, data):
                self.store[path] = data
    """}))
    assert findings == []


# ------------------------------------------------------- wire-safety pass --
def test_unpicklable_fields_are_flagged(tmp_path):
    findings = run_wire_pass(model_of(tmp_path, {"pkg/dist/spec.py": """
        import threading
        from dataclasses import dataclass, field


        @dataclass
        class Spec:
            name: str
            lock: threading.Lock
            hook: object = lambda: 1
            safe_factory: object = field(default_factory=lambda: [])
    """}))
    assert [f.detail["symbol"] for f in findings] == ["Spec.hook", "Spec.lock"]
    assert all(f.invariant == "unpicklable-field" for f in findings)


def test_device_reference_is_flagged(tmp_path):
    findings = run_wire_pass(model_of(tmp_path, {
        "pkg/storage/dev.py": """
            class Dev:
                pass
        """,
        "pkg/dist/spec.py": """
            from dataclasses import dataclass

            from pkg.storage.dev import Dev


            @dataclass
            class Unit:
                device: Dev
        """,
    }))
    assert [f.detail["symbol"] for f in findings] == ["Unit.device"]
    assert "must not cross the wire" in findings[0].message


def test_containers_enums_and_nested_dataclasses_are_safe(tmp_path):
    findings = run_wire_pass(model_of(tmp_path, {"pkg/dist/spec.py": """
        import enum
        from dataclasses import dataclass
        from typing import Dict, List, Optional, Tuple


        class Mode(enum.Enum):
            DFS = 1


        @dataclass
        class Inner:
            sizes: Tuple[int, ...]


        @dataclass
        class Spec:
            name: str
            mode: Mode
            ops: List[str]
            weights: Dict[str, float]
            inner: Optional[Inner]
            note: "Optional[str]" = None
    """}))
    assert findings == []


def test_nested_dataclass_problem_is_traced(tmp_path):
    findings = run_wire_pass(model_of(tmp_path, {"pkg/dist/spec.py": """
        import threading
        from dataclasses import dataclass


        @dataclass
        class Inner:
            lock: threading.Lock


        @dataclass
        class Outer:
            inner: Inner
    """}))
    symbols = [f.detail["symbol"] for f in findings]
    assert "Inner.lock" in symbols and "Outer.inner" in symbols


def test_non_dist_dataclass_is_out_of_scope(tmp_path):
    findings = run_wire_pass(model_of(tmp_path, {"pkg/core/spec.py": """
        import threading
        from dataclasses import dataclass


        @dataclass
        class Local:
            lock: threading.Lock
    """}))
    assert findings == []


def test_server_protocol_dataclasses_are_in_scope(tmp_path):
    """The campaign-server wire (JSON lines + spool) is policed like the
    dist wire: a server dataclass growing an unserialisable field is a
    lint error, not a mid-campaign surprise."""
    findings = run_wire_pass(model_of(tmp_path, {"pkg/server/protocol.py": """
        import socket
        from dataclasses import dataclass


        @dataclass
        class JobEvent:
            kind: str
            conn: socket.socket
    """}))
    assert [f.detail["symbol"] for f in findings] == ["JobEvent.conn"]
    assert all(f.invariant == "unpicklable-field" for f in findings)


def test_shm_handle_fields_are_flagged(tmp_path):
    """Raw shared-memory handles must never ride the wire: workers
    attach by segment *name* (ShardSegment.attach), so a live handle in
    a dist dataclass is a design error even where it would pickle."""
    findings = run_wire_pass(model_of(tmp_path, {"pkg/dist/config.py": """
        from dataclasses import dataclass
        from multiprocessing.shared_memory import SharedMemory
        from typing import Optional, Tuple


        @dataclass
        class Config:
            segment: SharedMemory
            view: Optional[memoryview]
            own: "ShardSegment" = None
            names: Tuple[str, ...] = ()
    """}))
    symbols = sorted(f.detail["symbol"] for f in findings)
    assert symbols == ["Config.own", "Config.segment", "Config.view"]
    assert all(f.invariant == "shm-handle-field" for f in findings)
    assert all("segment *name*" in f.message for f in findings)


def test_shm_rule_registered():
    from repro.analysis.static.registry import RULES_BY_ID, STATIC_RULE_IDS

    assert "shm-handle-field" in STATIC_RULE_IDS
    assert RULES_BY_ID["shm-handle-field"].checker == "analyze.wire"
    assert RULES_BY_ID["shm-handle-field"].severity == "error"


def test_real_dist_tree_is_shm_handle_clean():
    """Mutation guard for the live tree: the shipped dist dataclasses
    (WorkerConfig and friends) must keep shipping segment names and
    picklable ShardLayout geometry, never live segments."""
    from repro.analysis.lint.runner import iter_python_files

    root = os.path.dirname(os.path.abspath(repro.__file__))
    model = build_model(iter_python_files([root]))
    findings = [f for f in run_wire_pass(model)
                if f.invariant == "shm-handle-field"]
    assert findings == []


def test_real_server_protocol_is_wire_clean():
    """Mutation guard for the live tree: the shipped repro.server
    dataclasses must stay serialisable (the pass scans them for real)."""
    from repro.analysis.lint.runner import iter_python_files

    root = os.path.dirname(os.path.abspath(repro.__file__))
    model = build_model(iter_python_files([root]))
    scanned = [name for name in model.modules if "server" in name.split(".")]
    assert scanned, "repro.server modules must be in the analysis model"
    findings = [f for f in run_wire_pass(model)
                if "server" in f.location.replace(os.sep, "/").split("/")]
    assert findings == []


# ------------------------------------------------- error-path atomicity ----
ATOMICITY_SEEDED = {"pkg/fs/drv.py": """
    class Driver:
        def unlink(self, name):
            del self.entries[name]
            if name in self.protected:
                raise ValueError(name)
"""}

ATOMICITY_FENCED = {"pkg/fs/drv.py": """
    class Driver:
        def unlink(self, name):
            del self.entries[name]
            self.mount.mark_dirty_parent(name)
            if name in self.protected:
                raise ValueError(name)
"""}

ATOMICITY_GUARD_FIRST = {"pkg/fs/drv.py": """
    class Driver:
        def unlink(self, name):
            if name in self.protected:
                raise ValueError(name)
            del self.entries[name]
"""}


def test_raise_after_mutate_is_flagged(tmp_path):
    findings = run_atomicity_pass(model_of(tmp_path, ATOMICITY_SEEDED))
    assert [f.invariant for f in findings] == ["raise-after-mutate"]
    assert findings[0].severity == "warn"
    assert findings[0].detail["symbol"] == "Driver.unlink"


def test_fence_discharges_the_hazard(tmp_path):
    assert run_atomicity_pass(model_of(tmp_path, ATOMICITY_FENCED)) == []


def test_guard_before_mutation_is_clean(tmp_path):
    assert run_atomicity_pass(model_of(tmp_path, ATOMICITY_GUARD_FIRST)) == []


def test_mutating_helper_call_arms_the_hazard(tmp_path):
    findings = run_atomicity_pass(model_of(tmp_path, {"pkg/fs/drv.py": """
        class Driver:
            def _drop(self, name):
                del self.entries[name]

            def rename(self, old, new):
                self._drop(new)
                if old not in self.entries:
                    raise KeyError(old)
    """}))
    assert [f.detail["symbol"] for f in findings] == ["Driver.rename"]


def test_cache_fill_helper_is_discounted(tmp_path):
    findings = run_atomicity_pass(model_of(tmp_path, {"pkg/fs/drv.py": """
        class Driver:
            def _load(self, ino):
                node = self.parse(ino)
                self._inode_cache[ino] = node
                return node

            def truncate(self, ino, size):
                node = self._load(ino)
                if size < 0:
                    raise ValueError(size)
                node.size = size
                self.mount.mark_dirty_entry(ino)
    """}))
    assert findings == []


def test_counter_bump_is_discounted(tmp_path):
    findings = run_atomicity_pass(model_of(tmp_path, {"pkg/kernel/k.py": """
        class Kernel:
            def _sys(self):
                self.syscall_count += 1

            def unlink(self, name):
                self._sys()
                if name not in self.entries:
                    raise KeyError(name)
                del self.entries[name]
                self.mount.mark_dirty_parent(name)
    """}))
    assert findings == []


def test_raise_in_except_handler_is_not_counted(tmp_path):
    findings = run_atomicity_pass(model_of(tmp_path, {"pkg/fs/drv.py": """
        class Driver:
            def write(self, name, data):
                self.entries[name] = data
                try:
                    self.flush()
                except OSError:
                    raise
                self.mount.mark_dirty_entry(name)
    """}))
    assert findings == []


def test_non_scope_module_is_ignored(tmp_path):
    findings = run_atomicity_pass(model_of(tmp_path, {"pkg/util/drv.py": """
        class Driver:
            def unlink(self, name):
                del self.entries[name]
                raise ValueError(name)
    """}))
    assert findings == []


# ------------------------------------------------------- pragma interplay --
def test_static_finding_suppressed_by_pragma(tmp_path):
    files = dict(ATOMICITY_SEEDED)
    files["pkg/fs/drv.py"] = files["pkg/fs/drv.py"].replace(
        "raise ValueError(name)",
        "raise ValueError(name)  # det-lint: allow[raise-after-mutate] "
        "branches are exclusive")
    paths = make_tree(tmp_path, files)
    findings = run_analysis(paths, use_baseline=False)
    assert [f.invariant for f in findings] == []


# ------------------------------------------------------------- full engine --
def test_seeded_tree_yields_every_invariant(tmp_path):
    files = {}
    files.update(SNAPSHOT_SEEDED)
    files.update(DIRTYMARK_SEEDED)
    files.update(ATOMICITY_SEEDED)
    files["pkg/dist/spec.py"] = """
        import threading
        from dataclasses import dataclass


        @dataclass
        class Spec:
            lock: threading.Lock
    """
    files["pkg/rng.py"] = """
        import random

        value = random.randint(0, 5)
    """
    paths = make_tree(tmp_path, files)
    invariants = {f.invariant for f in run_analysis(paths,
                                                    use_baseline=False)}
    assert {"restore-blind", "dirty-mark-missing", "unpicklable-field",
            "raise-after-mutate", "unseeded-random"} <= invariants


def test_clean_tree_yields_nothing(tmp_path):
    files = {}
    files.update(SNAPSHOT_CLEAN)
    files.update(DIRTYMARK_CLEAN)
    files["pkg/fs/drv.py"] = ATOMICITY_FENCED["pkg/fs/drv.py"]
    paths = make_tree(tmp_path, files)
    assert run_analysis(paths, use_baseline=False) == []


# ----------------------------------------------------------------- baseline --
def baseline_doc(entries):
    return {"version": 1, "entries": entries}


def finding(invariant, path, symbol, severity="warn"):
    return Finding(checker="t", invariant=invariant, message="m",
                   severity=severity, location=f"/root/x/{path}:10",
                   detail={"line": 10, "symbol": symbol})


def test_baseline_drops_matched_findings(tmp_path):
    entry = {"invariant": "raise-after-mutate", "path": "fs/a.py",
             "symbol": "A.rename", "justification": "sibling branches"}
    kept = apply_baseline([finding("raise-after-mutate", "fs/a.py",
                                   "A.rename")],
                          [entry], "/root/x", "bl.json")
    assert kept == []


def test_stale_baseline_entry_is_warned(tmp_path):
    entry = {"invariant": "raise-after-mutate", "path": "fs/gone.py",
             "symbol": "A.rename", "justification": "was fixed"}
    kept = apply_baseline([], [entry], "/root/x", "bl.json")
    assert [f.invariant for f in kept] == ["stale-baseline"]
    assert kept[0].severity == "warn"


def test_unjustified_baseline_entry_is_an_error(tmp_path):
    entry = {"invariant": "raise-after-mutate", "path": "fs/a.py",
             "symbol": "A.rename", "justification": "  "}
    kept = apply_baseline([finding("raise-after-mutate", "fs/a.py",
                                   "A.rename")],
                          [entry], "/root/x", "bl.json")
    assert [f.invariant for f in kept] == ["unjustified-baseline"]
    assert kept[0].severity == "error"


def test_load_baseline_rejects_malformed(tmp_path):
    bad = tmp_path / "bl.json"
    bad.write_text(json.dumps({"entries": [{"invariant": "x"}]}))
    with pytest.raises(ValueError):
        load_baseline(str(bad))


def test_render_baseline_leaves_justifications_empty():
    document = json.loads(render_baseline(
        [finding("raise-after-mutate", "fs/a.py", "A.rename")], "/root/x"))
    assert document["entries"] == [{
        "invariant": "raise-after-mutate", "path": "fs/a.py",
        "symbol": "A.rename", "justification": "",
    }]


def test_shipped_baseline_is_fully_justified():
    path = os.path.join(os.path.dirname(repro.__file__),
                        "analysis-baseline.json")
    for entry in load_baseline(path):
        assert entry["justification"].strip(), entry


# ------------------------------------------------------------------ output --
def test_render_json_shape():
    document = json.loads(render_json(
        [finding("raise-after-mutate", "fs/a.py", "A.rename")]))
    assert document["summary"] == {"total": 1, "error": 0, "warn": 1,
                                   "info": 0}
    assert document["findings"][0]["invariant"] == "raise-after-mutate"


def test_render_sarif_shape():
    document = json.loads(render_sarif(
        [finding("restore-blind", "fs/a.py", "A.x", severity="error")]))
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-analyze"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"restore-blind", "unseeded-random", "stale-baseline"} <= rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "restore-blind"
    assert result["level"] == "error"
    assert result["locations"][0]["physicalLocation"]["region"][
        "startLine"] == 10


def test_summary_line_counts_errors():
    findings = [finding("restore-blind", "a.py", "A.x", severity="error"),
                finding("raise-after-mutate", "a.py", "A.y")]
    assert summary_line(findings) == "2 finding(s), 1 error(s)"


# --------------------------------------------------------------- the gate --
def test_shipped_tree_analyzes_clean():
    findings = run_analysis()
    assert findings == [], "\n".join(f.describe() for f in findings)


def test_cli_analyze_strict_sarif_as_in_ci(tmp_path):
    """The CI job: strict analysis must pass and emit valid SARIF."""
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", "--strict",
         "--format", "sarif"],
        capture_output=True, text=True, env=env, timeout=180,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    document = json.loads(proc.stdout)
    assert document["version"] == "2.1.0"
    assert document["runs"][0]["results"] == []
