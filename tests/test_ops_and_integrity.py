"""Tests for the operation catalog, outcomes, diffs, and equalization."""

import pytest

from repro.clock import SimClock
from repro.core.abstraction import AbstractionOptions
from repro.core.equalize import EQUALIZE_FILENAME, equalize_free_space
from repro.core.futs import make_block_fut, make_verifs_fut
from repro.core.integrity import (
    DiscrepancyError,
    IntegrityChecker,
    Outcome,
    diff_entries,
)
from repro.core.abstraction import EntryRecord, collect_entries
from repro.core.ops import (
    EXTENDED_OPERATIONS,
    Operation,
    OperationCatalog,
    ParameterPool,
    fill_pattern,
)
from repro.errors import ENOENT
from repro.fs import Ext2FileSystemType, Ext4FileSystemType
from repro.storage import RAMBlockDevice
from repro.verifs import VeriFS2


class TestOutcome:
    def test_success_matches_success(self):
        assert Outcome.success(3).matches(Outcome.success(3))

    def test_success_value_mismatch(self):
        assert not Outcome.success(3).matches(Outcome.success(4))

    def test_error_matches_same_errno(self):
        assert Outcome.failure(ENOENT).matches(Outcome.failure(ENOENT))

    def test_error_mismatch_different_errno(self):
        assert not Outcome.failure(2).matches(Outcome.failure(13))

    def test_success_never_matches_failure(self):
        assert not Outcome.success(0).matches(Outcome.failure(ENOENT))

    def test_describe(self):
        assert "ok" in Outcome.success(5).describe()
        assert "ENOENT" in Outcome.failure(ENOENT).describe()


class TestFillPattern:
    def test_deterministic(self):
        assert fill_pattern(65, 16, 0) == fill_pattern(65, 16, 0)

    def test_position_dependent(self):
        assert fill_pattern(65, 8, 0) != fill_pattern(65, 8, 100)

    def test_length(self):
        assert len(fill_pattern(0, 123, 5)) == 123

    def test_continuation(self):
        """byte at absolute position p is the same however it was written"""
        whole = fill_pattern(65, 20, 0)
        tail = fill_pattern(65, 10, 10)
        assert whole[10:] == tail

    def test_size_not_a_multiple_of_wheel(self):
        """sizes straddling the 256-byte ramp still follow the ramp"""
        for size in (1, 255, 257, 300, 511, 513):
            data = fill_pattern(65, size, 0)
            assert len(data) == size
            assert data == bytes((65 + i) & 0xFF for i in range(size))

    def test_fill_plus_offset_wraps_past_0xff(self):
        """the ramp base is (fill + offset) & 0xFF, not fill + offset"""
        assert fill_pattern(0xF0, 4, 0x20) == bytes(
            (0xF0 + 0x20 + i) & 0xFF for i in range(4)
        )
        # a wrap inside the pattern body too
        data = fill_pattern(0xFF, 3, 0)
        assert data == bytes([0xFF, 0x00, 0x01])

    def test_size_zero_and_negative(self):
        assert fill_pattern(65, 0, 0) == b""
        assert fill_pattern(65, -5, 0) == b""

    def test_size_one(self):
        assert fill_pattern(65, 1, 7) == bytes([(65 + 7) & 0xFF])

    def test_huge_offset_wraps(self):
        """offsets past 0xFF (e.g. extent edges) reduce mod 256"""
        assert fill_pattern(65, 8, 4096) == fill_pattern(65, 8, 4096 % 256)
        assert fill_pattern(65, 8, 1 << 20) == fill_pattern(
            65, 8, (1 << 20) % 256
        )


class TestCatalog:
    def test_enumeration_is_stable(self):
        catalog = OperationCatalog()
        assert [op.describe() for op in catalog.operations()] == [
            op.describe() for op in catalog.operations()
        ]

    def test_extended_flag_controls_rename_family(self):
        with_ext = OperationCatalog(include_extended=True)
        without = OperationCatalog(include_extended=False)
        names_with = {op.name for op in with_ext.operations()}
        names_without = {op.name for op in without.operations()}
        assert EXTENDED_OPERATIONS <= names_with
        assert not (EXTENDED_OPERATIONS & names_without)

    def test_tiny_pool_is_smaller(self):
        full = OperationCatalog(pool=ParameterPool())
        tiny = OperationCatalog(pool=ParameterPool().tiny())
        assert len(tiny) < len(full)

    def test_unknown_operation_rejected(self, clock):
        catalog = OperationCatalog()
        fut = make_verifs_fut("v", VeriFS2(), clock)
        with pytest.raises(ValueError):
            catalog.execute(fut, Operation("chmod_everything", ()))

    def test_invalid_sequence_yields_error_outcome(self, clock):
        catalog = OperationCatalog()
        fut = make_verifs_fut("v", VeriFS2(), clock)
        outcome = catalog.execute(fut, Operation("unlink", ("/nope",)))
        assert not outcome.ok
        assert outcome.errno == ENOENT

    def test_meta_write_file_leaves_no_open_fd(self, clock):
        catalog = OperationCatalog()
        fut = make_verifs_fut("v", VeriFS2(), clock)
        catalog.execute(fut, Operation("write_file", ("/f", 0, 64, 65)))
        assert fut.kernel.fdtable.open_count() == 0

    def test_meta_ops_survive_remount_between(self, clock):
        """The reason meta-operations exist: each is remount-safe."""
        catalog = OperationCatalog()
        fut = make_block_fut("e", Ext2FileSystemType(),
                             RAMBlockDevice(256 * 1024, clock=clock), clock)
        catalog.execute(fut, Operation("create_file", ("/f", 0o644)))
        fut.remount()
        outcome = catalog.execute(fut, Operation("write_file", ("/f", 0, 64, 65)))
        assert outcome.ok and outcome.value == 64


class TestDiffing:
    def r(self, path, **kw):
        defaults = dict(mode=0o100644, size=0, nlink=1, uid=0, gid=0, content_md5="")
        defaults.update(kw)
        return EntryRecord(path=path, **defaults)

    def test_identical_lists_empty_diff(self):
        records = [self.r("/a"), self.r("/b")]
        diff = diff_entries(records, list(records), AbstractionOptions())
        assert diff.empty

    def test_extra_path_reported(self):
        diff = diff_entries([self.r("/a"), self.r("/b")], [self.r("/a")],
                            AbstractionOptions())
        assert diff.only_in_first == ["/b"]

    def test_attr_mismatch_reported(self):
        diff = diff_entries([self.r("/a", size=5)], [self.r("/a", size=9)],
                            AbstractionOptions())
        assert diff.attribute_mismatches

    def test_content_mismatch_reported(self):
        diff = diff_entries([self.r("/a", content_md5="x")],
                            [self.r("/a", content_md5="y")],
                            AbstractionOptions())
        assert diff.content_mismatches

    def test_dir_size_ignored_in_attrs(self):
        a = self.r("/d", mode=0o040755, size=1024, nlink=2)
        b = self.r("/d", mode=0o040755, size=48, nlink=2)
        diff = diff_entries([a], [b], AbstractionOptions())
        assert diff.empty


class TestIntegrityChecker:
    def test_outcome_comparison(self):
        checker = IntegrityChecker()
        mismatch = checker.compare_outcomes(
            ["a", "b"], [Outcome.success(0), Outcome.failure(ENOENT)]
        )
        assert mismatch is not None and "ENOENT" in mismatch

    def test_outcome_agreement(self):
        checker = IntegrityChecker()
        assert checker.compare_outcomes(
            ["a", "b"], [Outcome.success(0), Outcome.success(0)]
        ) is None

    def test_state_comparison_against_futs(self, clock):
        checker = IntegrityChecker()
        fut_a = make_verifs_fut("a", VeriFS2(), clock, mountpoint="/mnt/a")
        fut_b = make_verifs_fut("b", VeriFS2(), clock, mountpoint="/mnt/b")
        assert checker.compare_states([fut_a, fut_b]) == (None, None)
        fut_a.kernel.mkdir("/mnt/a/only-here")
        summary, diff = checker.compare_states([fut_a, fut_b])
        assert summary is not None
        assert diff.only_in_first == ["/only-here"]


class TestEqualization:
    def test_free_space_equalized(self, clock):
        futs = [
            make_block_fut("ext2", Ext2FileSystemType(),
                           RAMBlockDevice(256 * 1024, clock=clock, name="a"), clock),
            make_block_fut("ext4", Ext4FileSystemType(),
                           RAMBlockDevice(256 * 1024, clock=clock, name="b"), clock),
        ]
        gap_before = abs(futs[0].statfs().bytes_free - futs[1].statfs().bytes_free)
        written = equalize_free_space(futs, tolerance_bytes=4096)
        gap_after = abs(futs[0].statfs().bytes_free - futs[1].statfs().bytes_free)
        assert gap_after < gap_before
        assert gap_after <= 8192
        # only the roomier fs was padded
        assert written["ext2"] > 0
        assert written["ext4"] == 0

    def test_dummy_file_on_exception_list(self):
        from repro.core.abstraction import DEFAULT_EXCEPTIONS
        assert EQUALIZE_FILENAME.lstrip("/") in DEFAULT_EXCEPTIONS

    def test_equal_futs_untouched(self, clock):
        futs = [
            make_verifs_fut("a", VeriFS2(), clock, mountpoint="/mnt/a"),
            make_verifs_fut("b", VeriFS2(), clock, mountpoint="/mnt/b"),
        ]
        written = equalize_free_space(futs)
        assert written == {"a": 0, "b": 0}

    def test_states_still_compare_equal_after_equalization(self, clock):
        """The dummy file must be invisible to the abstraction."""
        futs = [
            make_block_fut("ext2", Ext2FileSystemType(),
                           RAMBlockDevice(256 * 1024, clock=clock, name="a"), clock),
            make_block_fut("ext4", Ext4FileSystemType(),
                           RAMBlockDevice(256 * 1024, clock=clock, name="b"), clock),
        ]
        equalize_free_space(futs)
        options = AbstractionOptions()
        assert futs[0].abstract_state(options) == futs[1].abstract_state(options)


class _OverheadFS:
    """A fake FUT whose writes consume more free space than their size.

    Real file systems do this too (indirect blocks, extent records); the
    fake makes the overshoot deterministic so the global-invariant
    regression is testable: padding fs A toward fs B's free space can
    push A *below* B by more than the tolerance, and a one-shot
    equalizer would return with the pair still skewed.
    """

    class _Kernel:
        def __init__(self, fut):
            self._fut = fut
            self._size = 0

        def open(self, path, flags, mode):
            self._fut.opened_paths.append(path)
            return 3

        def pwrite(self, fd, data, offset):
            self._fut.free -= len(data) * self._fut.overhead
            self._size = max(self._size, offset + len(data))
            return len(data)

        def fstat(self, fd):
            import types
            return types.SimpleNamespace(st_size=self._size)

        def close(self, fd):
            pass

    def __init__(self, label, free, overhead=1, mountpoint=None):
        self.label = label
        self.free = free
        self.overhead = overhead
        self.mountpoint = mountpoint or f"/mnt/{label}"
        self.opened_paths = []
        self.kernel = self._Kernel(self)

    def statfs(self):
        import types
        return types.SimpleNamespace(bytes_free=self.free)


class TestEqualizationGlobalInvariant:
    def test_metadata_overshoot_is_corrected(self):
        """Padding A below the floor must trigger another round on B."""
        from repro.core.equalize import free_space_skew

        futs = [_OverheadFS("a", 200_000, overhead=2),
                _OverheadFS("b", 120_000, overhead=1)]
        written = equalize_free_space(futs, tolerance_bytes=4096)
        # round 1 overshoots A below 120_000; round 2 must pad B down to
        # A's new floor -- the one-shot algorithm left ~51KB of skew here
        assert free_space_skew(futs) <= 4096
        assert written["a"] > 0
        assert written["b"] > 0

    def test_unshrinkable_skew_returns_without_spinning(self):
        """A fs that cannot be shrunk (writes consume nothing) must not
        loop forever; the residual skew is surfaced, not hidden."""
        futs = [_OverheadFS("a", 200_000, overhead=0),
                _OverheadFS("b", 120_000, overhead=1)]
        equalize_free_space(futs, tolerance_bytes=4096, max_rounds=3)
        # no assertion on skew -- the point is termination with honest
        # accounting (warning logged); "a" is still oversized
        assert futs[0].free == 200_000 - 0  # free untouched by 0-overhead

    def test_trailing_slash_mountpoint(self):
        futs = [_OverheadFS("a", 200_000, mountpoint="/mnt/a/"),
                _OverheadFS("b", 120_000)]
        equalize_free_space(futs, tolerance_bytes=4096)
        assert futs[0].opened_paths == ["/mnt/a/.mcfs_equalize"]

    def test_repad_appends_instead_of_rewriting(self, clock):
        """A second padding round must extend the dummy file; rewriting
        offset 0 would consume no new space and spin the write loop."""
        from repro.core.equalize import _pad_filesystem

        fut = make_block_fut("ext2", Ext2FileSystemType(),
                             RAMBlockDevice(256 * 1024, clock=clock,
                                            name="a"), clock)
        start_free = fut.statfs().bytes_free
        first = _pad_filesystem(fut, start_free - 32 * 1024, 1024)
        second = _pad_filesystem(fut, start_free - 64 * 1024, 1024)
        assert first > 0 and second > 0
        pad = fut.kernel.stat(fut.mountpoint + EQUALIZE_FILENAME)
        assert pad.st_size == first + second
        assert fut.statfs().bytes_free <= start_free - 64 * 1024 + 1024
