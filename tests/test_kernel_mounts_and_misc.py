"""Kernel mount-table routing, root mounts, and remaining syscall corners."""

import pytest

from repro.clock import SimClock
from repro.errors import EINVAL, EISDIR, ENOENT, ENOTDIR, FsError
from repro.fs import Ext2FileSystemType, Ext4FileSystemType
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_DIRECTORY, O_RDONLY, O_RDWR, O_WRONLY
from repro.storage import RAMBlockDevice


def make_fs(clock):
    fstype = Ext2FileSystemType()
    device = RAMBlockDevice(256 * 1024, clock=clock)
    fstype.mkfs(device)
    return fstype, device


class TestMountRouting:
    def test_longest_prefix_wins(self, clock):
        kernel = Kernel(clock)
        for mountpoint in ("/mnt", "/mnt2"):
            fstype, device = make_fs(clock)
            kernel.mount(fstype, device, mountpoint)
        kernel.close(kernel.open("/mnt/a", O_CREAT))
        kernel.close(kernel.open("/mnt2/b", O_CREAT))
        assert [e.name for e in kernel.getdents("/mnt") if e.name != "lost+found"] == ["a"]
        assert [e.name for e in kernel.getdents("/mnt2") if e.name != "lost+found"] == ["b"]

    def test_prefix_name_confusion_resolved(self, clock):
        """/mnt2 must not be routed to the /mnt mount (name-prefix trap)."""
        kernel = Kernel(clock)
        fstype, device = make_fs(clock)
        kernel.mount(fstype, device, "/mnt")
        with pytest.raises(FsError) as excinfo:
            kernel.stat("/mnt2/x")
        assert excinfo.value.code == ENOENT

    def test_mount_at_root(self, clock):
        kernel = Kernel(clock)
        fstype, device = make_fs(clock)
        kernel.mount(fstype, device, "/")
        kernel.mkdir("/top")
        assert kernel.stat("/top").is_dir

    def test_umount_then_paths_unreachable(self, clock):
        kernel = Kernel(clock)
        fstype, device = make_fs(clock)
        kernel.mount(fstype, device, "/mnt/fs")
        kernel.mkdir("/mnt/fs/d")
        kernel.umount("/mnt/fs")
        with pytest.raises(FsError):
            kernel.stat("/mnt/fs/d")

    def test_remounted_device_keeps_data(self, clock):
        kernel = Kernel(clock)
        fstype, device = make_fs(clock)
        kernel.mount(fstype, device, "/mnt/a")
        kernel.mkdir("/mnt/a/d")
        kernel.umount("/mnt/a")
        kernel.mount(fstype, device, "/mnt/b")  # same device, new place
        assert kernel.stat("/mnt/b/d").is_dir

    def test_mounts_listing(self, clock):
        kernel = Kernel(clock)
        fstype, device = make_fs(clock)
        kernel.mount(fstype, device, "/mnt/fs")
        mounts = kernel.mounts()
        assert len(mounts) == 1
        assert mounts[0].mountpoint == "/mnt/fs"


class TestSyscallCorners:
    @pytest.fixture
    def kfs(self, clock):
        kernel = Kernel(clock)
        fstype, device = make_fs(clock)
        kernel.mount(fstype, device, "/mnt/fs")
        return kernel

    def test_o_directory_on_file_enotdir(self, kfs):
        kfs.close(kfs.open("/mnt/fs/f", O_CREAT))
        with pytest.raises(FsError) as excinfo:
            kfs.open("/mnt/fs/f", O_RDONLY | O_DIRECTORY)
        assert excinfo.value.code == ENOTDIR

    def test_o_directory_on_dir_ok(self, kfs):
        kfs.mkdir("/mnt/fs/d")
        fd = kfs.open("/mnt/fs/d", O_RDONLY | O_DIRECTORY)
        kfs.close(fd)

    def test_open_creat_on_existing_dir_eisdir(self, kfs):
        kfs.mkdir("/mnt/fs/d")
        with pytest.raises(FsError) as excinfo:
            kfs.open("/mnt/fs/d", O_CREAT | O_WRONLY)
        assert excinfo.value.code == EISDIR

    def test_pread_pwrite_do_not_move_offset(self, kfs):
        fd = kfs.open("/mnt/fs/f", O_CREAT | O_RDWR)
        kfs.write(fd, b"0123456789")
        kfs.lseek(fd, 2, 0)
        assert kfs.pread(fd, 3, 6) == b"678"
        kfs.pwrite(fd, b"XX", 0)
        # sequential position unaffected by positional I/O
        assert kfs.read(fd, 2) == b"23"
        kfs.close(fd)

    def test_fstat_matches_stat(self, kfs):
        fd = kfs.open("/mnt/fs/f", O_CREAT | O_WRONLY)
        kfs.write(fd, b"abc")
        via_fd = kfs.fstat(fd)
        kfs.close(fd)
        via_path = kfs.stat("/mnt/fs/f")
        assert via_fd.st_ino == via_path.st_ino
        assert via_fd.st_size == via_path.st_size == 3

    def test_ftruncate_requires_writable_fd(self, kfs):
        kfs.close(kfs.open("/mnt/fs/f", O_CREAT))
        fd = kfs.open("/mnt/fs/f", O_RDONLY)
        with pytest.raises(FsError):
            kfs.ftruncate(fd, 0)
        kfs.close(fd)

    def test_fsync_and_sync_run(self, kfs):
        fd = kfs.open("/mnt/fs/f", O_CREAT | O_WRONLY)
        kfs.write(fd, b"durable")
        kfs.fsync(fd)
        kfs.close(fd)
        kfs.sync()
        # after sync, a raw remount from the device sees the data
        kfs.remount("/mnt/fs")
        assert kfs.stat("/mnt/fs/f").st_size == 7

    def test_chown_negative_means_unchanged(self, kfs):
        kfs.close(kfs.open("/mnt/fs/f", O_CREAT))
        kfs.chown("/mnt/fs/f", 100, 200)
        kfs.chown("/mnt/fs/f", -1, 300)
        attrs = kfs.stat("/mnt/fs/f")
        assert attrs.st_uid == 100
        assert attrs.st_gid == 300

    def test_getdents_on_file_enotdir(self, kfs):
        kfs.close(kfs.open("/mnt/fs/f", O_CREAT))
        with pytest.raises(FsError) as excinfo:
            kfs.getdents("/mnt/fs/f")
        assert excinfo.value.code == ENOTDIR

    def test_lseek_bad_whence(self, kfs):
        fd = kfs.open("/mnt/fs/f", O_CREAT | O_RDWR)
        with pytest.raises(FsError) as excinfo:
            kfs.lseek(fd, 0, 9)
        assert excinfo.value.code == EINVAL
        kfs.close(fd)

    def test_statfs_via_syscall(self, kfs):
        usage = kfs.statfs("/mnt/fs")
        assert usage.blocks_free > 0
