"""Tests for VeriFS1 and VeriFS2: features, limits, checkpoint/restore APIs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import SimClock
from repro.errors import EEXIST, EINVAL, ENODATA, ENOENT, ENOSPC, ENOTTY, FsError
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_RDWR, O_WRONLY
from repro.verifs import (
    IOCTL_CHECKPOINT,
    IOCTL_RESTORE,
    SnapshotPool,
    VeriFS1,
    VeriFS2,
    VeriFSBug,
    mount_verifs,
)
from repro.verifs.common import IOCTL_LIST_SNAPSHOTS
from repro.verifs.verifs2 import CHUNK_SIZE


def mounted(clock, fs, mountpoint="/mnt/v"):
    kernel = Kernel(clock)
    mount_verifs(kernel, fs, mountpoint)
    return kernel


class TestSnapshotPool:
    def test_store_and_pop(self):
        pool = SnapshotPool()
        pool.store(1, {"a": [1, 2]})
        assert pool.pop(1) == {"a": [1, 2]}
        assert len(pool) == 0

    def test_pop_missing_raises(self):
        with pytest.raises(FsError) as excinfo:
            SnapshotPool().pop(42)
        assert excinfo.value.code == ENOENT

    def test_store_deep_copies(self):
        pool = SnapshotPool()
        state = {"data": [1]}
        pool.store(1, state)
        state["data"].append(2)
        assert pool.pop(1) == {"data": [1]}

    def test_peek_does_not_consume(self):
        pool = SnapshotPool()
        pool.store(5, "state")
        assert pool.peek(5) == "state"
        assert pool.keys() == [5]

    def test_overwrite_same_key(self):
        pool = SnapshotPool()
        pool.store(1, "old")
        pool.store(1, "new")
        assert pool.pop(1) == "new"


class TestCheckpointRestoreIoctls:
    def test_checkpoint_restore_roundtrip(self, clock):
        fs = VeriFS2(clock=clock)
        kernel = mounted(clock, fs)
        fd = kernel.open("/mnt/v/f", O_CREAT | O_RDWR)
        kernel.write(fd, b"before")
        kernel.ioctl(fd, IOCTL_CHECKPOINT, 7)
        kernel.pwrite(fd, b"AFTER!", 0)
        kernel.ioctl(fd, IOCTL_RESTORE, 7)
        assert kernel.pread(fd, 10, 0) == b"before"
        kernel.close(fd)

    def test_restore_discards_snapshot(self, clock):
        fs = VeriFS2(clock=clock)
        kernel = mounted(clock, fs)
        fd = kernel.open("/mnt/v")
        kernel.ioctl(fd, IOCTL_CHECKPOINT, 7)
        kernel.ioctl(fd, IOCTL_RESTORE, 7)
        with pytest.raises(FsError) as excinfo:
            kernel.ioctl(fd, IOCTL_RESTORE, 7)
        assert excinfo.value.code == ENOENT
        kernel.close(fd)

    def test_multiple_keys_coexist(self, clock):
        fs = VeriFS1(clock=clock)
        kernel = mounted(clock, fs)
        fd = kernel.open("/mnt/v")
        kernel.ioctl(fd, IOCTL_CHECKPOINT, 1)
        kernel.mkdir("/mnt/v/d1")
        kernel.ioctl(fd, IOCTL_CHECKPOINT, 2)
        kernel.mkdir("/mnt/v/d2")
        assert kernel.ioctl(fd, IOCTL_LIST_SNAPSHOTS) == [1, 2]
        kernel.ioctl(fd, IOCTL_RESTORE, 1)
        kernel.close(fd)
        assert kernel.getdents("/mnt/v") == []

    def test_bad_key_rejected(self, clock):
        fs = VeriFS2(clock=clock)
        kernel = mounted(clock, fs)
        fd = kernel.open("/mnt/v")
        with pytest.raises(FsError) as excinfo:
            kernel.ioctl(fd, IOCTL_CHECKPOINT, "not-an-int")
        assert excinfo.value.code == EINVAL
        kernel.close(fd)

    def test_unknown_ioctl_enotty(self, clock):
        fs = VeriFS2(clock=clock)
        kernel = mounted(clock, fs)
        fd = kernel.open("/mnt/v")
        with pytest.raises(FsError) as excinfo:
            kernel.ioctl(fd, 0xDEAD, 0)
        assert excinfo.value.code == ENOTTY
        kernel.close(fd)

    def test_restore_invalidates_kernel_caches(self, clock):
        fs = VeriFS2(clock=clock)
        kernel = mounted(clock, fs)
        fd = kernel.open("/mnt/v")
        kernel.ioctl(fd, IOCTL_CHECKPOINT, 1)
        kernel.mkdir("/mnt/v/d")
        kernel.stat("/mnt/v/d")  # cache the dentry
        kernel.ioctl(fd, IOCTL_RESTORE, 1)
        kernel.close(fd)
        kernel.mkdir("/mnt/v/d")  # must succeed: caches were invalidated
        assert kernel.stat("/mnt/v/d").is_dir

    def test_counts_tracked(self, clock):
        fs = VeriFS1(clock=clock)
        kernel = mounted(clock, fs)
        fd = kernel.open("/mnt/v")
        kernel.ioctl(fd, IOCTL_CHECKPOINT, 1)
        kernel.ioctl(fd, IOCTL_RESTORE, 1)
        kernel.close(fd)
        assert fs.checkpoint_count == 1
        assert fs.restore_count == 1


class TestVeriFS1Limits:
    def test_inode_table_exhaustion(self, clock):
        fs = VeriFS1(clock=clock, inode_table_size=8)
        kernel = mounted(clock, fs)
        with pytest.raises(FsError) as excinfo:
            for i in range(10):
                kernel.close(kernel.open(f"/mnt/v/f{i}", O_CREAT))
        assert excinfo.value.code == ENOSPC

    def test_no_data_limit(self, clock):
        """VeriFS1 'did not limit the amount of data that could be stored'."""
        fs = VeriFS1(clock=clock)
        kernel = mounted(clock, fs)
        fd = kernel.open("/mnt/v/big", O_CREAT | O_WRONLY)
        kernel.write(fd, b"x" * (1 << 20))
        kernel.close(fd)
        assert kernel.stat("/mnt/v/big").st_size == 1 << 20

    def test_contiguous_buffer_backing(self, clock):
        fs = VeriFS1(clock=clock)
        kernel = mounted(clock, fs)
        fd = kernel.open("/mnt/v/f", O_CREAT | O_WRONLY)
        kernel.write(fd, b"abc")
        kernel.close(fd)
        ino = kernel.stat("/mnt/v/f").st_ino
        assert isinstance(fs.inodes[ino].buffer, bytearray)


class TestVeriFS2Features:
    def test_xattr_roundtrip(self, clock):
        kernel = mounted(clock, VeriFS2(clock=clock))
        kernel.close(kernel.open("/mnt/v/f", O_CREAT))
        kernel.setxattr("/mnt/v/f", "user.tag", b"value")
        assert kernel.getxattr("/mnt/v/f", "user.tag") == b"value"
        assert kernel.listxattr("/mnt/v/f") == ["user.tag"]
        kernel.removexattr("/mnt/v/f", "user.tag")
        assert kernel.listxattr("/mnt/v/f") == []

    def test_xattr_missing_enodata(self, clock):
        kernel = mounted(clock, VeriFS2(clock=clock))
        kernel.close(kernel.open("/mnt/v/f", O_CREAT))
        with pytest.raises(FsError) as excinfo:
            kernel.getxattr("/mnt/v/f", "user.none")
        assert excinfo.value.code == ENODATA

    def test_capacity_limit_enospc(self, clock):
        kernel = mounted(clock, VeriFS2(clock=clock, capacity_bytes=4 * CHUNK_SIZE))
        fd = kernel.open("/mnt/v/f", O_CREAT | O_WRONLY)
        with pytest.raises(FsError) as excinfo:
            kernel.write(fd, b"z" * (6 * CHUNK_SIZE))
        assert excinfo.value.code == ENOSPC
        kernel.close(fd)

    def test_space_reclaimed_on_unlink(self, clock):
        kernel = mounted(clock, VeriFS2(clock=clock, capacity_bytes=4 * CHUNK_SIZE))
        fd = kernel.open("/mnt/v/f", O_CREAT | O_WRONLY)
        kernel.write(fd, b"z" * (3 * CHUNK_SIZE))
        kernel.close(fd)
        kernel.unlink("/mnt/v/f")
        fd = kernel.open("/mnt/v/g", O_CREAT | O_WRONLY)
        kernel.write(fd, b"z" * (3 * CHUNK_SIZE))
        kernel.close(fd)

    def test_chunked_sparse_storage(self, clock):
        fs = VeriFS2(clock=clock)
        kernel = mounted(clock, fs)
        fd = kernel.open("/mnt/v/f", O_CREAT | O_WRONLY)
        kernel.pwrite(fd, b"end", 10 * CHUNK_SIZE)
        kernel.close(fd)
        ino = kernel.stat("/mnt/v/f").st_ino
        assert len(fs.inodes[ino].chunks) == 1  # the hole allocates nothing


class TestInjectedBugs:
    def test_truncate_stale_data(self, clock):
        kernel = mounted(clock, VeriFS1(clock=clock, bugs=[VeriFSBug.TRUNCATE_STALE_DATA]))
        fd = kernel.open("/mnt/v/f", O_CREAT | O_RDWR)
        kernel.write(fd, b"SECRET")
        kernel.ftruncate(fd, 0)
        kernel.ftruncate(fd, 6)
        assert kernel.pread(fd, 6, 0) == b"SECRET"  # stale bytes leak
        kernel.close(fd)

    def test_truncate_fixed_version_zeroes(self, clock):
        kernel = mounted(clock, VeriFS1(clock=clock))
        fd = kernel.open("/mnt/v/f", O_CREAT | O_RDWR)
        kernel.write(fd, b"SECRET")
        kernel.ftruncate(fd, 0)
        kernel.ftruncate(fd, 6)
        assert kernel.pread(fd, 6, 0) == b"\x00" * 6
        kernel.close(fd)

    def test_missing_invalidation_ghost_eexist(self, clock):
        fs = VeriFS1(clock=clock, bugs=[VeriFSBug.MISSING_CACHE_INVALIDATION])
        kernel = mounted(clock, fs)
        fd = kernel.open("/mnt/v/seed", O_CREAT)
        kernel.ioctl(fd, IOCTL_CHECKPOINT, 9)
        kernel.close(fd)
        kernel.mkdir("/mnt/v/tdir")
        fd = kernel.open("/mnt/v/seed")
        kernel.ioctl(fd, IOCTL_RESTORE, 9)
        kernel.close(fd)
        with pytest.raises(FsError) as excinfo:
            kernel.mkdir("/mnt/v/tdir")
        assert excinfo.value.code == EEXIST
        assert "tdir" not in [e.name for e in kernel.getdents("/mnt/v")]

    def test_write_hole_stale(self, clock):
        kernel = mounted(clock, VeriFS2(clock=clock, bugs=[VeriFSBug.WRITE_HOLE_STALE]))
        fd = kernel.open("/mnt/v/f", O_CREAT | O_RDWR)
        kernel.write(fd, b"AAAA")
        kernel.ftruncate(fd, 2)
        kernel.pwrite(fd, b"ZZ", 6)
        assert kernel.pread(fd, 8, 0) == b"AAAA\x00\x00ZZ"
        kernel.close(fd)

    def test_size_update_on_capacity_only(self, clock):
        kernel = mounted(clock, VeriFS2(clock=clock, bugs=[VeriFSBug.SIZE_UPDATE_ON_CAPACITY_ONLY]))
        fd = kernel.open("/mnt/v/f", O_CREAT | O_WRONLY)
        kernel.write(fd, b"AAAA")
        kernel.write(fd, b"BB")  # in-chunk append: size not updated
        assert kernel.fstat(fd).st_size == 4
        kernel.close(fd)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2), st.binary(min_size=1, max_size=64),
                          st.integers(0, 200)), max_size=12))
def test_property_checkpoint_restore_is_exact(script):
    """Whatever happens after a checkpoint, restore brings back the exact
    observable state -- the core guarantee of the proposed API."""
    clock = SimClock()
    fs = VeriFS2(clock=clock)
    kernel = Kernel(clock)
    mount_verifs(kernel, fs, "/mnt/v")
    fd = kernel.open("/mnt/v/f", O_CREAT | O_RDWR)
    kernel.write(fd, b"baseline")
    kernel.ioctl(fd, IOCTL_CHECKPOINT, 123)
    reference = kernel.pread(fd, 10_000, 0)
    for action, data, offset in script:
        if action == 0:
            kernel.pwrite(fd, data, offset)
        elif action == 1:
            kernel.ftruncate(fd, offset)
        else:
            kernel.pwrite(fd, data, offset + 300)
    kernel.ioctl(fd, IOCTL_RESTORE, 123)
    assert kernel.pread(fd, 10_000, 0) == reference
    kernel.close(fd)
