"""Tests for the VFS base interfaces, stat structures, and NFS layer."""

import pytest

from repro.clock import SimClock
from repro.errors import ENOSYS, ENOTSUP, ENOTTY, FsError
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_RDWR
from repro.kernel.stat import (
    DT_DIR,
    DT_LNK,
    DT_REG,
    DT_UNKNOWN,
    S_IFDIR,
    S_IFLNK,
    S_IFREG,
    StatResult,
    StatVFS,
    file_type_name,
    mode_to_dtype,
)
from repro.kernel.vfs import MountedFileSystem
from repro.nfs import GaneshaLikeServer, NfsConnection, mount_nfs
from repro.verifs import VeriFS2


class TestStatHelpers:
    def test_mode_to_dtype(self):
        assert mode_to_dtype(S_IFDIR | 0o755) == DT_DIR
        assert mode_to_dtype(S_IFREG | 0o644) == DT_REG
        assert mode_to_dtype(S_IFLNK | 0o777) == DT_LNK
        assert mode_to_dtype(0) == DT_UNKNOWN

    def test_file_type_name(self):
        assert file_type_name(S_IFDIR | 0o755) == "dir"
        assert file_type_name(S_IFREG) == "file"
        assert file_type_name(S_IFLNK) == "symlink"
        assert "type?" in file_type_name(0o010000)

    def test_stat_result_predicates(self):
        stat = StatResult(st_ino=1, st_mode=S_IFDIR | 0o755, st_nlink=2,
                          st_uid=0, st_gid=0, st_size=0, st_blocks=0,
                          st_atime=0, st_mtime=0, st_ctime=0)
        assert stat.is_dir and not stat.is_file and not stat.is_symlink

    def test_stat_result_with_updates(self):
        stat = StatResult(st_ino=1, st_mode=S_IFREG, st_nlink=1, st_uid=0,
                          st_gid=0, st_size=10, st_blocks=1, st_atime=0,
                          st_mtime=0, st_ctime=0)
        bigger = stat.with_updates(st_size=20)
        assert bigger.st_size == 20
        assert stat.st_size == 10  # frozen: original untouched

    def test_statvfs_byte_helpers(self):
        usage = StatVFS(block_size=1024, blocks_total=100, blocks_free=25,
                        files_total=10, files_free=5)
        assert usage.bytes_total == 102_400
        assert usage.bytes_free == 25_600


class _MinimalFS(MountedFileSystem):
    """Implements only the abstract minimum; optionals stay defaulted."""

    def sync(self): ...
    def unmount(self): ...
    def lookup(self, dir_ino, name): raise FsError(2, name)
    def getattr(self, ino): raise FsError(2, str(ino))
    def getdents(self, dir_ino): return []
    def create(self, dir_ino, name, mode, uid, gid): return 2
    def mkdir(self, dir_ino, name, mode, uid, gid): return 2
    def unlink(self, dir_ino, name): ...
    def rmdir(self, dir_ino, name): ...
    def read(self, ino, offset, length): return b""
    def write(self, ino, offset, data): return len(data)
    def truncate(self, ino, size): ...
    def statfs(self): return StatVFS(1, 1, 1, 1, 1)


class TestOptionalOperationDefaults:
    """Drivers that skip optional ops must fail with the right errno."""

    def test_rename_enotsup(self):
        with pytest.raises(FsError) as excinfo:
            _MinimalFS().rename(1, "a", 1, "b")
        assert excinfo.value.code == ENOTSUP

    def test_links_enotsup(self):
        fs = _MinimalFS()
        for call in (lambda: fs.link(1, 1, "x"),
                     lambda: fs.symlink(1, "x", "t", 0, 0),
                     lambda: fs.readlink(1)):
            with pytest.raises(FsError) as excinfo:
                call()
            assert excinfo.value.code == ENOTSUP

    def test_xattrs_enotsup(self):
        fs = _MinimalFS()
        for call in (lambda: fs.setxattr(1, "k", b"v"),
                     lambda: fs.getxattr(1, "k"),
                     lambda: fs.listxattr(1),
                     lambda: fs.removexattr(1, "k")):
            with pytest.raises(FsError) as excinfo:
                call()
            assert excinfo.value.code == ENOTSUP

    def test_ioctl_enotty(self):
        with pytest.raises(FsError) as excinfo:
            _MinimalFS().ioctl(1, 0x1234)
        assert excinfo.value.code == ENOTTY

    def test_check_consistency_default_clean(self):
        assert _MinimalFS().check_consistency() == []


class TestNfsGanesha:
    def test_connection_is_not_a_device(self, clock):
        connection = NfsConnection(clock)
        assert not connection.is_character_device
        assert not connection.device_path.startswith("/dev/")

    def test_full_posix_surface_over_nfs(self, clock):
        kernel = Kernel(clock)
        mount_nfs(kernel, VeriFS2(clock=clock), "/mnt/nfs")
        kernel.mkdir("/mnt/nfs/d")
        fd = kernel.open("/mnt/nfs/d/f", O_CREAT | O_RDWR)
        kernel.write(fd, b"over the wire")
        kernel.lseek(fd, 0)
        assert kernel.read(fd, 100) == b"over the wire"
        kernel.close(fd)
        kernel.rename("/mnt/nfs/d/f", "/mnt/nfs/g")
        assert kernel.stat("/mnt/nfs/g").st_size == 13

    def test_nfs_costs_more_than_fuse_per_request(self, clock):
        from repro.clock import Cost
        kernel = Kernel(clock)
        mount_nfs(kernel, VeriFS2(clock=clock), "/mnt/nfs")
        before = clock.by_category.get("nfs-transport", 0.0)
        kernel.mkdir("/mnt/nfs/d")
        assert clock.by_category["nfs-transport"] > before

    def test_server_holds_no_device_handles(self, clock):
        kernel = Kernel(clock)
        server, _conn, _mount = mount_nfs(kernel, VeriFS2(clock=clock), "/mnt/nfs")
        assert isinstance(server, GaneshaLikeServer)
        assert all(not dev.startswith("/dev/") for dev in server.open_devices)
