"""Model-based property tests: implementations vs. trivial shadow models.

Each test pair drives a real component and a dead-simple in-memory model
with the same random operation stream and asserts observational
equivalence. Where the POSIX-surface suite checks *examples*, these
check *algebra* -- hypothesis hunts the corner the examples missed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import SimClock
from repro.errors import FsError
from repro.fs.base import BufferCache
from repro.fs.xfs import XfsFileSystemType
from repro.fs.jffs2 import Jffs2FileSystemType
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_RDWR, O_WRONLY
from repro.storage import RAMBlockDevice
from repro.storage.mtd import MTDDevice
from repro.util.paths import normalize_path


class TestBufferCacheVsShadow:
    """A write-back cache over a device must behave like a flat array."""

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["read", "write", "flush", "drop"]),
                              st.integers(0, 31),
                              st.binary(min_size=0, max_size=64)),
                    max_size=30))
    def test_reads_match_shadow(self, script):
        device = RAMBlockDevice(32 * 1024, clock=SimClock())
        cache = BufferCache(device, 1024, capacity_blocks=4)
        shadow = bytearray(32 * 1024)       # what a reader should see
        durable = bytearray(32 * 1024)      # what the device should hold
        for op, block, payload in script:
            if op == "write":
                data = payload + b"\x00" * (1024 - len(payload))
                cache.write_block(block, payload)
                shadow[block * 1024 : (block + 1) * 1024] = data
            elif op == "read":
                assert cache.read_block(block) == bytes(
                    shadow[block * 1024 : (block + 1) * 1024])
            elif op == "flush":
                cache.flush()
                durable[:] = shadow
            else:  # drop: unflushed writes are lost
                cache.drop()
                # the device may be ahead of `durable` because dirty
                # eviction writes back early -- so the reader's view
                # resets to whatever the device actually holds
                shadow[:] = device.snapshot_image()
        # final invariant: flushing everything converges device == view
        cache.flush()
        assert device.snapshot_image() == bytes(shadow)


class TestXfsExtentAlgebra:
    """Extent-mapped file bytes must equal a plain bytearray model."""

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["write", "truncate"]),
                              st.integers(0, 30_000),
                              st.binary(min_size=1, max_size=2_000)),
                    min_size=1, max_size=12))
    def test_file_content_matches_model(self, script):
        clock = SimClock()
        kernel = Kernel(clock)
        fstype = XfsFileSystemType()
        device = RAMBlockDevice(16 * 1024 * 1024, clock=clock)
        fstype.mkfs(device)
        kernel.mount(fstype, device, "/mnt/xfs")
        fd = kernel.open("/mnt/xfs/f", O_CREAT | O_RDWR)
        model = bytearray()
        try:
            for op, position, payload in script:
                if op == "write":
                    try:
                        kernel.pwrite(fd, payload, position)
                    except FsError:
                        continue  # EFBIG etc.: model unchanged
                    if len(model) < position:
                        model.extend(b"\x00" * (position - len(model)))
                    end = position + len(payload)
                    if len(model) < end:
                        model.extend(b"\x00" * (end - len(model)))
                    model[position:end] = payload
                else:
                    size = position % 20_000
                    kernel.truncate("/mnt/xfs/f", size)
                    if size <= len(model):
                        del model[size:]
                    else:
                        model.extend(b"\x00" * (size - len(model)))
            assert kernel.fstat(fd).st_size == len(model)
            assert kernel.pread(fd, len(model) + 10, 0) == bytes(model)
        finally:
            kernel.close(fd)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 30_000),
                              st.binary(min_size=1, max_size=1_500)),
                    min_size=1, max_size=10))
    def test_content_survives_remount(self, writes):
        clock = SimClock()
        kernel = Kernel(clock)
        fstype = XfsFileSystemType()
        device = RAMBlockDevice(16 * 1024 * 1024, clock=clock)
        fstype.mkfs(device)
        kernel.mount(fstype, device, "/mnt/xfs")
        fd = kernel.open("/mnt/xfs/f", O_CREAT | O_WRONLY)
        model = bytearray()
        for position, payload in writes:
            try:
                kernel.pwrite(fd, payload, position)
            except FsError:
                continue
            end = position + len(payload)
            if len(model) < end:
                model.extend(b"\x00" * (end - len(model)))
            model[position:end] = payload
        kernel.close(fd)
        kernel.remount("/mnt/xfs")
        fd = kernel.open("/mnt/xfs/f")
        assert kernel.pread(fd, len(model) + 1, 0) == bytes(model)
        kernel.close(fd)


class TestJffs2ChurnInvariants:
    """GC under random churn must never lose live data or corrupt."""

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5),
                              st.integers(1, 1500),
                              st.integers(0, 255)),
                    min_size=10, max_size=60))
    def test_survivors_intact_after_churn(self, script):
        clock = SimClock()
        kernel = Kernel(clock)
        fstype = Jffs2FileSystemType()
        device = MTDDevice(256 * 1024, erase_block_size=16 * 1024, clock=clock)
        fstype.mkfs(device)
        kernel.mount(fstype, device, "/mnt/j")
        expected = {}
        for index, size, fill in script:
            name = f"/mnt/j/f{index}"
            try:
                fd = kernel.open(name, O_CREAT | O_WRONLY)
                kernel.pwrite(fd, bytes([fill]) * size, 0)
                kernel.ftruncate(fd, size)
                kernel.close(fd)
                expected[name] = bytes([fill]) * size
            except FsError:
                break  # flash genuinely full: stop churning
        fs = kernel.mount_at("/mnt/j").fs
        assert fs.check_consistency() == []
        for name, content in expected.items():
            fd = kernel.open(name)
            assert kernel.read(fd, len(content) + 1) == content, name
            kernel.close(fd)
        # and the whole state survives a rescan
        kernel.remount("/mnt/j")
        for name, content in expected.items():
            fd = kernel.open(name)
            assert kernel.read(fd, len(content) + 1) == content, name
            kernel.close(fd)


class TestPathWalkVsModel:
    """Kernel path normalisation must agree with a pure-string model."""

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.sampled_from(["a", "b", "..", ".", "ab"]),
                    max_size=8))
    def test_normalize_matches_posix_semantics(self, parts):
        import posixpath
        raw = "/" + "/".join(parts)
        ours = normalize_path(raw)
        # posixpath.normpath agrees except it preserves leading '//'
        reference = posixpath.normpath(raw)
        if reference.startswith("//") and not reference.startswith("///"):
            reference = reference[1:]
        # normpath keeps ".." at the root ("/.." stays); POSIX resolution
        # collapses it -- strip those for comparison
        while reference.startswith("/.."):
            reference = reference[3:] or "/"
            if not reference.startswith("/"):
                reference = "/" + reference
        assert ours == posixpath.normpath(reference)
