"""Counterexample trails: capture, deterministic replay, minimization.

The acceptance loop for the trail subsystem: every seeded VeriFS bug,
found by a long amortised-checking random walk, must produce a trail
that (a) replays CONFIRMED on a fresh harness, (b) ddmin-minimizes from
a 1000+-operation log to a handful of operations, and (c) still replays
CONFIRMED after minimization -- across visited-state store modes and
via the distributed fleet.
"""

import json

import pytest

from repro.core.report import DiscrepancyReport
from repro.dist.spec import CheckSpec
from repro.mc import trace
from repro.mc.trace import TrailRecorder
from repro.trail import (
    Trail,
    TrailFormatError,
    minimize_trail,
    minimize_trail_naive,
    replay_trail,
)

#: per-bug campaign configs: (filesystems, pool, max_depth, backtrack).
#: missing-cache-invalidation only manifests across an ioctl restore, so
#: its walk backtracks constantly at shallow depth.
BUG_CONFIGS = {
    "truncate-stale-data": (("ext4", "verifs1"), "data-heavy", 12, 0.25),
    "missing-cache-invalidation": (("ext4", "verifs1"), "default", 2, 1.0),
    "write-hole-stale": (("verifs1", "verifs2"), "data-heavy", 12, 0.25),
    "size-update-on-capacity-only": (
        ("verifs1", "verifs2"), "data-heavy", 12, 0.25),
}


def capture_one(bug, trail_dir, state_store="exact", state_check_every=1000,
                max_operations=5000):
    filesystems, pool, max_depth, backtrack = BUG_CONFIGS[bug]
    spec = CheckSpec(filesystems=filesystems, verifs_bugs=(bug,), pool=pool,
                     state_store=state_store,
                     state_check_every=state_check_every)
    mcfs = spec.build_mcfs()
    mcfs.options.trail_dir = str(trail_dir)
    result = mcfs.run_random(seed=1, max_operations=max_operations,
                             max_depth=max_depth,
                             backtrack_probability=backtrack)
    assert result.found_discrepancy, f"{bug} not found by the seeded walk"
    assert result.trail_path, f"{bug} produced no trail"
    return result


class TestTrailRecorder:
    def test_records_all_event_kinds(self):
        recorder = TrailRecorder()
        token = recorder.checkpoint()
        recorder.operation("op-placeholder")
        recorder.check()
        recorder.fsck()
        recorder.restore(token)
        schedule = recorder.schedule()
        assert [event[0] for event in schedule] == [
            trace.CHECKPOINT, trace.OP, trace.CHECK, trace.FSCK,
            trace.RESTORE]
        assert trace.count_operations(schedule) == 1

    def test_overflow_disables_capture(self):
        recorder = TrailRecorder(max_events=3)
        for _ in range(5):
            recorder.operation("op")
        assert recorder.truncated
        assert recorder.schedule() is None

    def test_normalize_drops_orphan_restores(self):
        events = [
            (trace.RESTORE, 7),           # checkpoint 7 never taken: drop
            (trace.CHECKPOINT, 1),
            (trace.OP, "x"),
            (trace.RESTORE, 1),           # checkpoint 1 taken: keep
        ]
        normalized = trace.normalize(events)
        assert normalized == events[1:]


class TestTrailFiles:
    def test_save_load_round_trip(self, tmp_path):
        result = capture_one("size-update-on-capacity-only", tmp_path,
                             state_check_every=200, max_operations=2000)
        trail = Trail.load(result.trail_path)
        assert trail.operations >= 1
        assert trail.digest() == Trail.load(result.trail_path).digest()
        assert trail.spec.verifs_bugs == ("size-update-on-capacity-only",)
        # the embedded report is lossless, schedule included
        restored = DiscrepancyReport.from_dict(trail.report.to_dict())
        assert restored.schedule == trail.report.schedule

    def test_not_a_trail_rejected(self, tmp_path):
        path = tmp_path / "junk.trail.json"
        path.write_text("{\"format\": \"something-else\"}")
        with pytest.raises(TrailFormatError):
            Trail.load(str(path))

    def test_newer_version_rejected(self, tmp_path):
        path = tmp_path / "future.trail.json"
        path.write_text(json.dumps({"format": "mcfs-trail", "version": 99}))
        with pytest.raises(TrailFormatError):
            Trail.load(str(path))

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "garbage.trail.json"
        path.write_text("not json at all")
        with pytest.raises(TrailFormatError):
            Trail.load(str(path))


class TestCaptureReplayMinimize:
    """The acceptance matrix: long log -> CONFIRMED -> <= 10 ops."""

    @pytest.mark.parametrize("bug", sorted(BUG_CONFIGS))
    def test_bug_round_trip(self, bug, tmp_path):
        result = capture_one(bug, tmp_path)
        trail = Trail.load(result.trail_path)
        assert trail.operations >= 1000, (
            f"{bug}: log too short to exercise minimization")

        replayed = replay_trail(trail)
        assert replayed.confirmed, replayed.describe()

        minimized = minimize_trail(trail)
        assert minimized.minimized_operations <= 10, minimized.describe()
        assert minimized.trail.minimized_from == trail.operations

        again = replay_trail(minimized.trail)
        assert again.confirmed, again.describe()

    @pytest.mark.parametrize("store", ["exact", "hc", "bitstate", "tiered"])
    def test_store_modes(self, store, tmp_path):
        result = capture_one("size-update-on-capacity-only", tmp_path,
                             state_store=store, state_check_every=200,
                             max_operations=2000)
        trail = Trail.load(result.trail_path)
        assert replay_trail(trail).confirmed
        minimized = minimize_trail(trail)
        assert minimized.minimized_operations <= 10
        assert replay_trail(minimized.trail).confirmed


class TestReplayVerdicts:
    def test_not_reproduced_when_bug_removed(self, tmp_path):
        # simulate a fixed bug (or a determinism failure): same schedule,
        # but the spec no longer injects the bug
        result = capture_one("size-update-on-capacity-only", tmp_path,
                             state_check_every=200, max_operations=2000)
        trail = Trail.load(result.trail_path)
        trail.spec = CheckSpec.from_dict(
            {**trail.spec.to_dict(), "verifs_bugs": []})
        verdict = replay_trail(trail)
        assert verdict.status == "NOT-REPRODUCED"
        assert not verdict.confirmed

    def test_minimize_refuses_non_reproducing_trail(self, tmp_path):
        result = capture_one("size-update-on-capacity-only", tmp_path,
                             state_check_every=200, max_operations=2000)
        trail = Trail.load(result.trail_path)
        trail.spec = CheckSpec.from_dict(
            {**trail.spec.to_dict(), "verifs_bugs": []})
        with pytest.raises(ValueError, match="does not reproduce"):
            minimize_trail(trail)


class TestNaiveBaseline:
    def test_naive_agrees_with_ddmin(self, tmp_path):
        # a deliberately short trail: the baseline re-executes the whole
        # candidate per probe, so its cost grows quadratically (the
        # benchmark measures that; this test only checks agreement)
        result = capture_one("write-hole-stale", tmp_path,
                             state_check_every=25, max_operations=800)
        trail = Trail.load(result.trail_path)
        fast = minimize_trail(trail)
        slow = minimize_trail_naive(trail)
        assert slow.minimized_operations == fast.minimized_operations
        assert replay_trail(slow.trail).confirmed


class TestDistributedTrails:
    def test_fleet_ships_replayable_trails(self, tmp_path):
        from repro.dist import DistributedChecker

        spec = CheckSpec(filesystems=("verifs1", "verifs2"),
                         verifs_bugs=("size-update-on-capacity-only",),
                         pool="data-heavy", unit_operations=400,
                         state_check_every=200)
        dist = DistributedChecker(spec, workers=2,
                                  trail_dir=str(tmp_path)).run()
        assert dist.found_discrepancy
        assert dist.trail_paths, "fleet found the bug but shipped no trail"
        trail = Trail.load(dist.trail_paths[0])
        assert replay_trail(trail).confirmed
        minimized = minimize_trail(trail)
        assert minimized.minimized_operations <= 10
        assert replay_trail(minimized.trail).confirmed
