"""SimJFFS2-specific behaviour: log structure, GC, MTD requirement."""

import pytest

from repro.clock import SimClock
from repro.errors import EINVAL, ENOSPC, FsError
from repro.fs.jffs2 import Jffs2FileSystemType, MountedJffs2
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_RDWR, O_WRONLY
from repro.storage import RAMBlockDevice
from repro.storage.mtd import MTDDevice


@pytest.fixture
def fx(clock):
    kernel = Kernel(clock)
    fstype = Jffs2FileSystemType()
    device = MTDDevice(256 * 1024, erase_block_size=16 * 1024, clock=clock, name="mtd0")
    fstype.mkfs(device)
    kernel.mount(fstype, device, "/mnt/jffs2")
    return kernel, device, fstype


class TestMTDRequirement:
    def test_block_device_rejected_for_mkfs(self, clock):
        fstype = Jffs2FileSystemType()
        with pytest.raises(FsError) as excinfo:
            fstype.mkfs(RAMBlockDevice(256 * 1024, clock=clock))
        assert excinfo.value.code == EINVAL

    def test_block_device_rejected_for_mount(self, clock):
        fstype = Jffs2FileSystemType()
        with pytest.raises(FsError):
            fstype.mount(RAMBlockDevice(256 * 1024, clock=clock))


class TestObservableQuirks:
    def test_dir_size_is_zero(self, fx):
        kernel, _, _ = fx
        kernel.mkdir("/mnt/jffs2/d")
        for i in range(5):
            kernel.close(kernel.open(f"/mnt/jffs2/d/f{i}", O_CREAT))
        assert kernel.stat("/mnt/jffs2/d").st_size == 0

    def test_no_special_folders(self, fx):
        kernel, _, _ = fx
        assert kernel.getdents("/mnt/jffs2") == []


class TestLogStructure:
    def test_every_write_appends_nodes(self, fx):
        kernel, device, _ = fx
        writes_before = device.stats.write_requests
        fd = kernel.open("/mnt/jffs2/f", O_CREAT | O_WRONLY)
        kernel.write(fd, b"payload")
        kernel.close(fd)
        assert device.stats.write_requests > writes_before

    def test_state_rebuilt_by_mount_scan(self, fx):
        kernel, device, fstype = fx
        kernel.mkdir("/mnt/jffs2/d")
        fd = kernel.open("/mnt/jffs2/d/f", O_CREAT | O_RDWR)
        kernel.write(fd, b"journaled")
        kernel.close(fd)
        kernel.umount("/mnt/jffs2")
        # a completely fresh driver instance must rebuild from the log
        fresh = fstype.mount(device)
        ino_d = fresh.lookup(fresh.ROOT_INO, "d")
        ino_f = fresh.lookup(ino_d, "f")
        assert fresh.read(ino_f, 0, 100) == b"journaled"

    def test_latest_version_wins(self, fx):
        kernel, device, fstype = fx
        fd = kernel.open("/mnt/jffs2/f", O_CREAT | O_WRONLY)
        kernel.write(fd, b"first")
        kernel.pwrite(fd, b"final", 0)
        kernel.close(fd)
        kernel.remount("/mnt/jffs2")
        fd = kernel.open("/mnt/jffs2/f")
        assert kernel.read(fd, 10) == b"final"
        kernel.close(fd)

    def test_whiteout_survives_remount(self, fx):
        kernel, _, _ = fx
        kernel.close(kernel.open("/mnt/jffs2/f", O_CREAT))
        kernel.unlink("/mnt/jffs2/f")
        kernel.remount("/mnt/jffs2")
        with pytest.raises(FsError):
            kernel.stat("/mnt/jffs2/f")

    def test_mount_scan_charges_io_time(self, clock):
        kernel = Kernel(clock)
        fstype = Jffs2FileSystemType()
        device = MTDDevice(256 * 1024, clock=clock)
        fstype.mkfs(device)
        kernel.mount(fstype, device, "/mnt/jffs2")
        for i in range(20):
            fd = kernel.open(f"/mnt/jffs2/f{i}", O_CREAT | O_WRONLY)
            kernel.write(fd, b"x" * 500)
            kernel.close(fd)
        before = clock.now
        kernel.remount("/mnt/jffs2")
        assert clock.now - before > 0  # full-log scan costs time


class TestGarbageCollection:
    def test_gc_reclaims_dead_space(self, fx):
        kernel, device, _ = fx
        # churn one file so old node versions accumulate as dead bytes
        fd = kernel.open("/mnt/jffs2/f", O_CREAT | O_WRONLY)
        for round_number in range(120):
            kernel.pwrite(fd, bytes([round_number & 0xFF]) * 2048, 0)
        kernel.close(fd)
        assert device.stats.erases > 0  # GC ran
        fd = kernel.open("/mnt/jffs2/f")
        assert kernel.read(fd, 10) == bytes([119]) * 10
        kernel.close(fd)

    def test_gc_preserves_all_live_files(self, fx):
        kernel, _, _ = fx
        for i in range(8):
            fd = kernel.open(f"/mnt/jffs2/keep{i}", O_CREAT | O_WRONLY)
            kernel.write(fd, bytes([i]) * 1000)
            kernel.close(fd)
        fd = kernel.open("/mnt/jffs2/churn", O_CREAT | O_WRONLY)
        for round_number in range(100):
            kernel.pwrite(fd, b"c" * 2048, 0)
        kernel.close(fd)
        for i in range(8):
            fd = kernel.open(f"/mnt/jffs2/keep{i}")
            assert kernel.read(fd, 2000) == bytes([i]) * 1000
            kernel.close(fd)
        assert kernel.mount_at("/mnt/jffs2").fs.check_consistency() == []

    def test_truly_full_reports_enospc(self, clock):
        kernel = Kernel(clock)
        fstype = Jffs2FileSystemType()
        device = MTDDevice(64 * 1024, erase_block_size=16 * 1024, clock=clock)
        fstype.mkfs(device)
        kernel.mount(fstype, device, "/mnt/jffs2")
        with pytest.raises(FsError) as excinfo:
            for i in range(100):
                fd = kernel.open(f"/mnt/jffs2/f{i}", O_CREAT | O_WRONLY)
                kernel.write(fd, b"z" * 4096)
                kernel.close(fd)
        assert excinfo.value.code == ENOSPC

    def test_wear_spreads_over_erase_blocks(self, fx):
        kernel, device, _ = fx
        fd = kernel.open("/mnt/jffs2/churn", O_CREAT | O_WRONLY)
        for round_number in range(200):
            kernel.pwrite(fd, b"w" * 2048, 0)
        kernel.close(fd)
        worn_blocks = sum(1 for wear in device.wear if wear > 0)
        assert worn_blocks >= 2
