"""repro.workload.profile: versatile input exploration (Metis-style).

The load-bearing properties under test:

* **grammar** -- the profile spec strings parse (and reject) exactly as
  documented, parallel to the visited-store grammar;
* **determinism** -- identical (seed, profile) yields an identical
  operation sequence, across chooser instances and (via hypothesis)
  arbitrary seeds;
* **boundary superset** -- boundary augmentation only ever *adds*
  parameter values, keeps the default catalog untouched, and is
  idempotent;
* **separation** -- the seeded extent-boundary bug is unreachable under
  the uniform profile's default pool (provably: no default write crosses
  a 4 KiB extent edge) but is found, trailed, replayed CONFIRMED, and
  minimized to <= 4 operations under the boundary profile;
* **fleet determinism** -- with a profile rotation fixed by the spec,
  merged dist fingerprints stay identical across worker counts.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ops import Operation, OperationCatalog, ParameterPool
from repro.dist import CheckSpec, DistributedChecker
from repro.workload import SequenceGenerator
from repro.workload.profile import (
    BLOCK_EDGE,
    OP_CLASSES,
    CoverageSteering,
    WeightedChooser,
    boundary_parameters,
    parse_profile,
)

PROFILE_SPECS = st.sampled_from([
    "uniform", "write-heavy", "meta-churn", "boundary",
    "uniform+boundary", "write-heavy+steer", "meta-churn+boundary+steer",
    "custom:write_file=4,truncate=2", "custom:mkdir=0,write_file=1",
])


# ---------------------------------------------------------------- grammar --
class TestGrammar:
    def test_named_bases(self):
        assert parse_profile("uniform").name == "uniform"
        assert parse_profile("write-heavy").weight_of("write_file") == 8.0
        assert parse_profile("meta-churn").weight_of("mkdir") == 5.0

    def test_boundary_base_is_uniform_plus_boundary(self):
        profile = parse_profile("boundary")
        assert profile.name == "uniform"
        assert profile.boundary
        assert not profile.steer

    def test_flags(self):
        profile = parse_profile("write-heavy+boundary+steer")
        assert profile.boundary and profile.steer
        assert not profile.is_instance_uniform

    def test_uniform_is_instance_uniform(self):
        assert parse_profile("uniform").is_instance_uniform
        assert parse_profile("boundary").is_instance_uniform
        assert not parse_profile("uniform+steer").is_instance_uniform

    def test_custom_weights(self):
        profile = parse_profile("custom:write_file=4,mkdir=0")
        assert profile.name == "custom"
        assert profile.weight_of("write_file") == 4.0
        assert profile.weight_of("mkdir") == 0.0
        assert profile.weight_of("unlink") == 1.0  # unlisted default

    def test_errors_list_options(self):
        for bad in ("", "bogus", "custom:", "custom:nope=1",
                    "custom:write_file", "custom:write_file=x",
                    "custom:write_file=-1", "uniform+wat",
                    "custom:" + ",".join(f"{op}=0" for op in OP_CLASSES)):
            with pytest.raises(ValueError):
                parse_profile(bad)

    def test_op_classes_cover_the_catalog(self):
        pool = boundary_parameters(ParameterPool())
        catalog = OperationCatalog(pool=pool, include_extended=True)
        assert {op.name for op in catalog.operations()} <= set(OP_CLASSES)


# ------------------------------------------------------------ determinism --
class TestChooserDeterminism:
    def test_same_seed_same_sequence(self):
        catalog = OperationCatalog()
        profile = parse_profile("write-heavy")
        a = WeightedChooser(profile, catalog.operations())
        b = WeightedChooser(profile, catalog.operations())
        rng_a, rng_b = random.Random(3), random.Random(3)
        assert [a.choose(rng_a) for _ in range(50)] == [
            b.choose(rng_b) for _ in range(50)
        ]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           spec=PROFILE_SPECS)
    def test_seed_profile_pair_fixes_the_sequence(self, seed, spec):
        a = SequenceGenerator(seed=seed, profile=spec).take(20)
        b = SequenceGenerator(seed=seed, profile=spec).take(20)
        assert a == b

    def test_weights_shift_the_distribution(self):
        names = [op.name
                 for op in SequenceGenerator(seed=2,
                                             profile="write-heavy").take(400)]
        writes = sum(1 for n in names if n in ("write_file", "truncate"))
        assert writes > 150  # ~12/21 of class mass vs ~2/10 uniform

    def test_zero_weight_excludes_class(self):
        operations = SequenceGenerator(
            seed=4, profile="custom:write_file=0,truncate=0").take(300)
        assert all(op.name not in ("write_file", "truncate")
                   for op in operations)


# --------------------------------------------------------------- boundary --
class TestBoundaryParameters:
    def test_superset_of_the_base_pool(self):
        base = ParameterPool()
        augmented = boundary_parameters(base)
        assert set(base.write_sizes) <= set(augmented.write_sizes)
        assert set(base.write_offsets) <= set(augmented.write_offsets)
        assert set(base.file_paths) <= set(augmented.file_paths)
        assert set(base.dir_paths) <= set(augmented.dir_paths)

    def test_block_edge_family_present(self):
        augmented = boundary_parameters(ParameterPool())
        for value in (BLOCK_EDGE - 1, BLOCK_EDGE, BLOCK_EDGE + 1):
            assert value in augmented.write_sizes
            assert value in augmented.write_offsets
            assert value in augmented.truncate_sizes

    def test_deep_ladder_and_odd_flags(self):
        augmented = boundary_parameters(ParameterPool())
        assert "/deep/a/b/c" in augmented.dir_paths
        assert "/deep/a/b/c/f9" in augmented.file_paths
        assert augmented.open_flag_sets
        assert augmented.rename_extra

    def test_idempotent(self):
        once = boundary_parameters(ParameterPool())
        assert boundary_parameters(once) == once

    def test_default_pool_cannot_cross_the_extent_edge(self):
        """The separation argument: every default-pool write ends at or
        before byte 4000, strictly inside the first 4 KiB extent, so the
        uniform profile can never trigger the extent-boundary bug."""
        pool = ParameterPool()
        worst = max(pool.write_offsets) + max(pool.write_sizes)
        assert worst < BLOCK_EDGE
        for offset in pool.write_offsets:
            for size in pool.write_sizes:
                start_extent = offset // BLOCK_EDGE
                last_extent = (offset + size - 1) // BLOCK_EDGE
                assert start_extent == last_extent

    def test_default_catalog_unchanged_by_new_pool_fields(self):
        """The new pool fields default empty, so the legacy catalog
        enumeration (and thus every existing seed->sequence mapping) is
        untouched."""
        catalog = OperationCatalog()
        names = {op.name for op in catalog.operations()}
        assert "open_flags" not in names

    def test_boundary_catalog_executes_cleanly(self):
        """A clean fs pair under the boundary profile must not produce
        false discrepancies (huge sparse offsets, odd open flags, deep
        paths and all)."""
        spec = CheckSpec(filesystems=("verifs1", "verifs2"),
                         include_extended=False, input_profile="boundary")
        result = spec.build_mcfs().run_random(max_operations=400, seed=3)
        assert not result.found_discrepancy, str(result.report)[:300]


# --------------------------------------------------------------- steering --
class _StubTracker:
    def __init__(self, executions, pairs):
        self.executions, self.pairs = executions, pairs

    def per_class_counts(self):
        return self.executions, self.pairs


class TestCoverageSteering:
    def test_exhausted_classes_decay(self):
        tracker = _StubTracker(
            executions={"write_file": 100, "mkdir": 2},
            pairs={"write_file": 2, "mkdir": 2},
        )
        steering = CoverageSteering(tracker)
        write_mult, mkdir_mult = steering.multipliers(["write_file", "mkdir"])
        assert write_mult < mkdir_mult

    def test_pressure_rises_with_revisits(self):
        steering = CoverageSteering(_StubTracker({}, {}))
        assert steering.pressure == 1.0
        steering.note_state_visit(True)
        steering.note_state_visit(False)
        assert steering.pressure == 1.5

    def test_cache_refreshes_on_period(self):
        tracker = _StubTracker({"write_file": 1}, {"write_file": 1})
        steering = CoverageSteering(tracker, period=2)
        before = steering.multipliers(["write_file"])
        tracker.executions = {"write_file": 1000}
        # cache still warm: same answer
        assert steering.multipliers(["write_file"]) == before
        steering.note_operation()
        steering.note_operation()  # period boundary -> invalidate
        assert steering.multipliers(["write_file"]) != before

    def test_steered_run_is_deterministic(self):
        spec = CheckSpec(filesystems=("verifs1", "verifs2"),
                         include_extended=False,
                         input_profile="uniform+steer")
        a = spec.build_mcfs().run_random(max_operations=250, seed=9)
        b = spec.build_mcfs().run_random(max_operations=250, seed=9)
        assert a.operations == b.operations
        assert a.unique_states == b.unique_states

    def test_steered_reaches_strictly_more_outcome_pairs(self):
        """Controlled comparison on the boundary catalog (same
        operations, steering the only variable): steering must reach
        strictly more distinct (operation, outcome) pairs at an equal
        operation budget.  The unrun-operation preference does most of
        the work -- a never-executed argument variant cannot have
        contributed a pair yet."""
        def pairs(profile_spec):
            spec = CheckSpec(filesystems=("verifs1", "verifs2"),
                             include_extended=False,
                             input_profile=profile_spec)
            mcfs = spec.build_mcfs()
            mcfs.options.track_coverage = True
            result = mcfs.run_random(max_operations=300, seed=11)
            assert not result.found_discrepancy
            return len(mcfs.coverage_report().outcome_pairs)

        assert pairs("boundary+steer") > pairs("boundary")


# ------------------------------------------------------------- separation --
BUGGY = CheckSpec(filesystems=("verifs1", "verifs2"),
                  include_extended=False,
                  verifs_bugs=("extent-boundary-stale",))


class TestSeparation:
    def test_uniform_profile_misses_the_bug(self):
        result = BUGGY.build_mcfs().run_random(max_operations=2_000, seed=5)
        assert not result.found_discrepancy

    def test_boundary_profile_finds_trails_and_minimizes(self, tmp_path):
        import dataclasses

        from repro.trail import Trail, minimize_trail, replay_trail

        spec = dataclasses.replace(BUGGY, input_profile="boundary")
        mcfs = spec.build_mcfs()
        mcfs.options.trail_dir = str(tmp_path)
        result = mcfs.run_random(max_operations=2_000, seed=5)
        assert result.found_discrepancy
        assert result.trail_path is not None
        trail = Trail.load(result.trail_path)
        assert replay_trail(trail).confirmed
        minimized = minimize_trail(trail)
        assert minimized.minimized_operations <= 4

    def test_bug_requires_a_straddling_write(self):
        """Direct witness: the injected bug drops exactly the spill past
        the extent edge."""
        from repro.verifs import VeriFS2, VeriFSBug

        fs = VeriFS2(bugs=[VeriFSBug.EXTENT_BOUNDARY_STALE])
        ino = fs.create(fs.ROOT_INO, "f", 0o644, 0, 0)
        fs.write(ino, 0, b"x" * (BLOCK_EDGE + 1))
        data = fs.read(ino, 0, BLOCK_EDGE + 1)
        assert len(data) == BLOCK_EDGE + 1  # size advanced to the end
        assert data[:BLOCK_EDGE] == b"x" * BLOCK_EDGE
        assert data[BLOCK_EDGE:] == b"\x00"  # the dropped spill

    def test_clean_fs_unaffected_by_straddling_writes(self):
        from repro.verifs import VeriFS2

        fs = VeriFS2()
        ino = fs.create(fs.ROOT_INO, "f", 0o644, 0, 0)
        fs.write(ino, 0, b"x" * (BLOCK_EDGE + 1))
        assert fs.read(ino, 0, BLOCK_EDGE + 1) == b"x" * (BLOCK_EDGE + 1)


# ------------------------------------------------------ fleet determinism --
ROTATION_SPEC = CheckSpec(
    filesystems=("verifs1", "verifs2"),
    include_extended=False,
    units=4,
    base_seed=1,
    unit_operations=80,
    max_depth=8,
    profile_rotation=("uniform", "boundary", "write-heavy", "meta-churn"),
)


def _fingerprint(dist):
    return (
        dist.visited_states,
        dist.total_operations,
        dist.discrepancy_signature(),
        sorted((unit.index, unit.operations, unit.unique_states)
               for unit in dist.unit_results),
    )


class TestFleetDeterminism:
    def test_rotation_assigns_profiles_by_unit_index(self):
        units = ROTATION_SPEC.work_units()
        assert [u.input_profile for u in units] == [
            "uniform", "boundary", "write-heavy", "meta-churn"]
        assert ROTATION_SPEC.unit_profile(5) == "boundary"

    def test_fingerprint_invariant_across_worker_counts(self):
        single = DistributedChecker(ROTATION_SPEC, workers=1).run()
        fleet = DistributedChecker(ROTATION_SPEC, workers=2).run()
        assert _fingerprint(single) == _fingerprint(fleet)

    def test_rotation_explores_more_than_any_single_profile(self):
        """Diversified members cover states a single-profile fleet of
        the same size does not (the swarm argument, now for inputs)."""
        rotated = DistributedChecker(ROTATION_SPEC, workers=1).run()
        import dataclasses

        uniform_only = dataclasses.replace(ROTATION_SPEC,
                                           profile_rotation=())
        plain = DistributedChecker(uniform_only, workers=1).run()
        assert rotated.visited_states != plain.visited_states

    def test_spec_roundtrips_profiles(self):
        document = ROTATION_SPEC.to_dict()
        assert document["profile_rotation"] == [
            "uniform", "boundary", "write-heavy", "meta-churn"]
        rebuilt = CheckSpec.from_dict(document)
        assert rebuilt == ROTATION_SPEC

    def test_from_dict_ignores_missing_profile_fields(self):
        document = ROTATION_SPEC.to_dict()
        del document["profile_rotation"], document["input_profile"]
        rebuilt = CheckSpec.from_dict(document)
        assert rebuilt.input_profile == "uniform"
        assert rebuilt.profile_rotation == ()

    def test_bad_profile_rejected_at_spec_construction(self):
        with pytest.raises(ValueError):
            CheckSpec(filesystems=("verifs1", "verifs2"),
                      input_profile="bogus")
        with pytest.raises(ValueError):
            CheckSpec(filesystems=("verifs1", "verifs2"),
                      profile_rotation=("uniform", "bogus"))
