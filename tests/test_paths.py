"""Unit and property tests for VFS path handling."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EINVAL, ENAMETOOLONG, FsError
from repro.util.paths import (
    NAME_MAX,
    PATH_MAX,
    is_subpath,
    join_path,
    normalize_path,
    path_components,
    split_path,
)


class TestNormalize:
    def test_root(self):
        assert normalize_path("/") == "/"

    def test_collapses_slashes(self):
        assert normalize_path("//a///b/") == "/a/b"

    def test_drops_dot(self):
        assert normalize_path("/a/./b/.") == "/a/b"

    def test_dotdot_collapses(self):
        assert normalize_path("/a/b/../c") == "/a/c"

    def test_dotdot_at_root_stays_root(self):
        assert normalize_path("/../..") == "/"

    def test_relative_rejected(self):
        with pytest.raises(FsError) as excinfo:
            normalize_path("a/b")
        assert excinfo.value.code == EINVAL

    def test_empty_rejected(self):
        with pytest.raises(FsError) as excinfo:
            normalize_path("")
        assert excinfo.value.code == EINVAL

    def test_long_component_rejected(self):
        with pytest.raises(FsError) as excinfo:
            normalize_path("/" + "x" * (NAME_MAX + 1))
        assert excinfo.value.code == ENAMETOOLONG

    def test_long_path_rejected(self):
        path = "/" + "/".join(["ab"] * (PATH_MAX // 2))
        with pytest.raises(FsError) as excinfo:
            normalize_path(path)
        assert excinfo.value.code == ENAMETOOLONG


class TestSplitJoin:
    def test_split_simple(self):
        assert split_path("/a/b") == ("/a", "b")

    def test_split_top_level(self):
        assert split_path("/a") == ("/", "a")

    def test_split_root(self):
        assert split_path("/") == ("/", "")

    def test_join(self):
        assert join_path("/a", "b") == "/a/b"
        assert join_path("/", "b") == "/b"

    def test_components(self):
        assert path_components("/") == []
        assert path_components("/a/b") == ["a", "b"]


class TestSubpath:
    def test_self(self):
        assert is_subpath("/a/b", "/a/b")

    def test_child(self):
        assert is_subpath("/a/b/c", "/a/b")

    def test_sibling_prefix_not_subpath(self):
        assert not is_subpath("/a/bc", "/a/b")

    def test_root_is_ancestor_of_all(self):
        assert is_subpath("/anything", "/")


@st.composite
def safe_components(draw):
    return draw(st.lists(
        st.text(alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
                min_size=1, max_size=10),
        min_size=0, max_size=6,
    ))


@given(safe_components())
def test_property_normalize_idempotent(components):
    path = "/" + "/".join(components)
    normalized = normalize_path(path)
    assert normalize_path(normalized) == normalized


@given(safe_components())
def test_property_split_join_roundtrip(components):
    path = normalize_path("/" + "/".join(components))
    if path == "/":
        return
    parent, name = split_path(path)
    assert join_path(parent, name) == path


@given(safe_components())
def test_property_normalized_has_no_empty_components(components):
    path = normalize_path("/" + "//".join(components) + "/")
    assert "//" not in path
    assert path == "/" or not path.endswith("/")
