"""Lossless round-trip contracts for distributed & server documents.

The companion of ``tests/test_report_serialization.py`` one layer up the
stack: every document the campaign server ships over its wire or writes
to its spool -- unit results, worker summaries, merged
:class:`~repro.dist.DistResult` campaigns, swarm results, job
descriptors, and job events -- must survive ``to_dict`` -> JSON ->
``from_dict`` without losing anything a consumer can observe.

Where a type embeds non-comparable state (exception objects inside
:class:`~repro.mc.explorer.ExplorationStats`, visited tables inside
``DistResult``), the round trip is pinned on the canonical document:
``from_dict(doc).to_dict() == doc``.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.dist.coordinator import DistResult, WorkerSummary
from repro.dist.protocol import UnitResult
from repro.dist.spec import CheckSpec
from repro.mc.explorer import ExplorationStats
from repro.mc.hashtable import TableStats, VisitedStateTable
from repro.mc.swarm import SwarmMemberResult, SwarmResult
from repro.server.protocol import JobDescriptor, JobEvent, SubmitRequest


def through_json(document):
    """Force an actual JSON round trip, not just a dict copy."""
    return json.loads(json.dumps(document, allow_nan=False))


# ------------------------------------------------ hypothesis strategies --

names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_-0123456789",
                min_size=1, max_size=12)
hashes = st.text(alphabet="0123456789abcdef", min_size=8, max_size=32)
finite_floats = st.floats(min_value=0.0, max_value=1e9,
                          allow_nan=False, allow_infinity=False, width=32)
counts = st.integers(min_value=0, max_value=10**9)

#: a minimal-but-valid serialised DiscrepancyReport (from_dict tolerates
#: the legacy two-key form; anything richer is covered one layer down)
violations = st.one_of(
    st.none(),
    st.fixed_dictionaries({
        "kind": st.sampled_from(("outcome", "state", "corruption")),
        "summary": names,
    }),
)

unit_results = st.builds(
    UnitResult,
    index=st.integers(min_value=0, max_value=999),
    seed=st.integers(min_value=0, max_value=2**31),
    worker_id=names,
    operations=counts,
    transitions=counts,
    unique_states=counts,
    revisited_states=counts,
    sim_time=finite_floats,
    wall_time=finite_floats,
    stopped_reason=names,
    violation=violations,
    shipped_hashes=counts,
    suppressed_hashes=counts,
    probable_cross_duplicates=counts,
    bytes_snapshotted=counts,
    bytes_restored=counts,
    logical_snapshot_bytes=counts,
    omission_possible=st.booleans(),
    omission_probability=st.floats(min_value=0.0, max_value=1.0,
                                   allow_nan=False, width=32),
)

worker_summaries = st.builds(
    WorkerSummary,
    worker_id=names,
    units_completed=counts,
    operations=counts,
    sim_time=finite_floats,
    wall_time=finite_floats,
    alive_at_end=st.booleans(),
)

table_stats = st.builds(
    TableStats,
    inserts=counts,
    duplicate_hits=counts,
    resizes=st.integers(min_value=0, max_value=100),
    resize_time=finite_floats,
    stored_bytes=counts,
    omission_possible=st.booleans(),
    omission_probability=st.floats(min_value=0.0, max_value=1.0,
                                   allow_nan=False, width=32),
)

exploration_stats = st.builds(
    ExplorationStats,
    operations=counts,
    transitions=counts,
    unique_states=counts,
    revisited_states=counts,
    checkpoints=counts,
    restores=counts,
    por_pruned=counts,
    fsck_checks=counts,
    max_depth_reached=st.integers(min_value=0, max_value=100),
    start_time=finite_floats,
    end_time=finite_floats,
    stopped_reason=names,
    samples=st.lists(
        st.tuples(finite_floats, counts, counts), max_size=4),
)

swarm_members = st.builds(
    SwarmMemberResult,
    seed=st.integers(min_value=0, max_value=2**31),
    stats=exploration_stats,
    coverage=st.sets(hashes, max_size=6),
    sim_time=finite_floats,
    table_stats=st.one_of(st.none(), table_stats),
)

swarm_results = st.builds(
    SwarmResult, members=st.lists(swarm_members, max_size=3))


def _dist_result(unit_list, summaries, seen):
    table = VisitedStateTable()
    for index, state_hash in enumerate(seen):
        table.visit(state_hash, depth=index % 7)
    return DistResult(
        workers=max(1, len(summaries)),
        unit_results=sorted(unit_list, key=lambda unit: unit.index),
        table=table,
        worker_summaries=summaries,
        wall_time=0.25,
        recovered_units=1,
        stolen_units=2,
        inline_units=0,
        cross_worker_duplicates=3,
        trail_paths=["trails/a.trail.json"],
    )


dist_results = st.builds(
    _dist_result,
    unit_list=st.lists(unit_results, max_size=3,
                       unique_by=lambda unit: unit.index),
    summaries=st.lists(worker_summaries, max_size=3),
    seen=st.sets(hashes, max_size=8),
)

job_descriptors = st.builds(
    JobDescriptor,
    job_id=names,
    tenant=names,
    priority=st.integers(min_value=-10, max_value=10),
    state=st.sampled_from(("queued", "running", "paused", "done",
                           "failed", "cancelled")),
    workers=st.integers(min_value=1, max_value=8),
    spec=st.just(CheckSpec(filesystems=("verifs1", "verifs2")).to_dict()),
    requested_store=st.sampled_from(("exact", "hc:8", "bitstate:8192,3")),
    effective_store=st.sampled_from(("exact", "bitstate:8192,3")),
    store_forced=st.booleans(),
    submitted_vtime=finite_floats,
    started_vtime=st.one_of(st.none(), finite_floats),
    finished_vtime=st.one_of(st.none(), finite_floats),
    units_total=counts,
    units_done=counts,
    operations=counts,
    visited_states=counts,
    discrepancies=counts,
    trail_paths=st.lists(names, max_size=3),
    planned_store_bytes=counts,
    error=st.one_of(st.none(), names),
)

job_events = st.builds(
    JobEvent,
    kind=st.sampled_from(("submitted", "progress", "paused", "done")),
    job_id=names,
    seq=counts,
    vtime=finite_floats,
    payload=st.dictionaries(names, st.one_of(counts, names, st.booleans()),
                            max_size=4),
)

submit_requests = st.builds(
    SubmitRequest,
    spec=st.just(CheckSpec(filesystems=("verifs1", "verifs2")).to_dict()),
    tenant=names,
    priority=st.integers(min_value=-10, max_value=10),
    workers=st.integers(min_value=1, max_value=8),
)


# ------------------------------------------------------------- the tests --

class TestUnitResultRoundTrip:
    @settings(max_examples=50)
    @given(unit_results)
    def test_round_trip_is_lossless(self, unit):
        assert UnitResult.from_dict(through_json(unit.to_dict())) == unit

    def test_unknown_keys_are_ignored(self):
        document = UnitResult(index=1, seed=2, worker_id="w0").to_dict()
        document["from_the_future"] = 42
        assert UnitResult.from_dict(document).index == 1

    def test_missing_keys_fall_back_to_defaults(self):
        unit = UnitResult.from_dict(
            {"index": 3, "seed": 9, "worker_id": "w1"})
        assert unit.omission_probability == 0.0
        assert unit.violation is None


class TestWorkerSummaryRoundTrip:
    @settings(max_examples=50)
    @given(worker_summaries)
    def test_round_trip_is_lossless(self, summary):
        restored = WorkerSummary.from_dict(through_json(summary.to_dict()))
        assert restored == summary


class TestExplorationStatsRoundTrip:
    @settings(max_examples=50)
    @given(exploration_stats)
    def test_round_trip_is_lossless(self, stats):
        document = through_json(stats.to_dict())
        assert ExplorationStats.from_dict(document).to_dict() == \
            stats.to_dict()

    def test_violation_with_report_survives(self):
        from repro.core.integrity import DiscrepancyError
        from repro.core.report import DiscrepancyReport

        stats = ExplorationStats(violation=DiscrepancyError(
            DiscrepancyReport(kind="state", summary="states differ")))
        restored = ExplorationStats.from_dict(
            through_json(stats.to_dict()))
        assert isinstance(restored.violation, DiscrepancyError)
        assert restored.violation.report.summary == "states differ"


class TestSwarmRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(swarm_members)
    def test_member_round_trip(self, member):
        document = through_json(member.to_dict())
        restored = SwarmMemberResult.from_dict(document)
        assert restored.seed == member.seed
        assert restored.coverage == member.coverage
        assert restored.to_dict() == member.to_dict()

    @settings(max_examples=25, deadline=None)
    @given(swarm_results)
    def test_swarm_round_trip_preserves_derived_metrics(self, swarm):
        restored = SwarmResult.from_dict(through_json(swarm.to_dict()))
        assert restored.to_dict() == swarm.to_dict()
        assert restored.union_coverage == swarm.union_coverage
        assert restored.parallel_time == swarm.parallel_time
        assert restored.total_operations == swarm.total_operations
        assert restored.omission_possible == swarm.omission_possible


class TestDistResultRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(dist_results)
    def test_round_trip_is_lossless(self, dist):
        document = through_json(dist.to_dict())
        restored = DistResult.from_dict(document)
        assert restored.to_dict() == dist.to_dict()
        assert restored.visited_states == dist.visited_states
        assert restored.total_operations == dist.total_operations
        assert restored.discrepancy_signature() == \
            dist.discrepancy_signature()
        assert restored.trail_paths == dist.trail_paths

    def test_real_campaign_round_trips(self):
        from repro.dist.coordinator import DistributedChecker

        spec = CheckSpec(filesystems=("verifs1", "verifs2"), units=2,
                         unit_operations=40, max_depth=6)
        dist = DistributedChecker(spec, workers=1).run()
        document = through_json(dist.to_dict())
        restored = DistResult.from_dict(document)
        assert restored.visited_states == dist.visited_states
        assert restored.to_dict()["unit_results"] == \
            document["unit_results"]

    def test_lossy_store_table_round_trips(self):
        from repro.mc.statestore import make_store

        table = make_store("bitstate:8192,3", seed=7)
        for state_hash in ("aa" * 16, "bb" * 16, "cc" * 16):
            table.visit(state_hash, depth=1)
        dist = DistResult(workers=1, table=table)
        restored = DistResult.from_dict(through_json(dist.to_dict()))
        assert len(restored.table) == len(table)
        assert restored.table.stats.omission_possible


class TestServerDocumentRoundTrip:
    @settings(max_examples=50)
    @given(job_descriptors)
    def test_descriptor_round_trip_is_lossless(self, descriptor):
        restored = JobDescriptor.from_dict(
            through_json(descriptor.to_dict()))
        assert restored == descriptor

    @settings(max_examples=50)
    @given(job_events)
    def test_event_round_trip_is_lossless(self, event):
        assert JobEvent.from_dict(through_json(event.to_dict())) == event

    @settings(max_examples=50)
    @given(submit_requests)
    def test_submit_round_trip_is_lossless(self, request):
        restored = SubmitRequest.from_dict(
            through_json(request.to_dict()))
        assert restored == request
        # and the embedded spec still builds a real campaign
        assert CheckSpec.from_dict(restored.spec).filesystems == \
            ("verifs1", "verifs2")
