"""Shared fixtures: clocks, kernels, and a parametrized "any file system".

The ``mounted_fs`` fixture mounts each of the six file systems (ext2,
ext4, xfs, jffs2, verifs1, verifs2) behind one kernel so POSIX-surface
tests run against every implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.clock import SimClock
from repro.fs import (
    Ext2FileSystemType,
    Ext4FileSystemType,
    Jffs2FileSystemType,
    XfsFileSystemType,
)
from repro.kernel import Kernel
from repro.storage import RAMBlockDevice
from repro.storage.mtd import MTDDevice
from repro.verifs import VeriFS1, VeriFS2
from repro.verifs.mounting import mount_verifs

SMALL_DEV = 256 * 1024
XFS_DEV = 16 * 1024 * 1024


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def kernel(clock) -> Kernel:
    return Kernel(clock)


@dataclass
class MountedFixture:
    """Everything a POSIX-surface test needs about one mounted fs."""

    name: str
    kernel: Kernel
    clock: SimClock
    mountpoint: str
    fstype: object
    device: object = None
    filesystem: object = None  # the userspace fs object (VeriFS only)

    @property
    def is_block(self) -> bool:
        return self.device is not None

    @property
    def supports_links(self) -> bool:
        return self.name != "verifs1"

    @property
    def supports_xattrs(self) -> bool:
        return self.name != "verifs1"

    def path(self, rel: str) -> str:
        return self.mountpoint + rel

    def fs(self):
        return self.kernel.mount_at(self.mountpoint).fs


def _mount(name: str, clock: SimClock) -> MountedFixture:
    kernel = Kernel(clock)
    mountpoint = f"/mnt/{name}"
    if name == "ext2":
        fstype, device = Ext2FileSystemType(), RAMBlockDevice(SMALL_DEV, clock=clock, name="ram0")
    elif name == "ext4":
        fstype, device = Ext4FileSystemType(), RAMBlockDevice(SMALL_DEV, clock=clock, name="ram0")
    elif name == "xfs":
        fstype, device = XfsFileSystemType(), RAMBlockDevice(XFS_DEV, clock=clock, name="ram0")
    elif name == "jffs2":
        fstype, device = Jffs2FileSystemType(), MTDDevice(SMALL_DEV, clock=clock, name="mtd0")
    elif name in ("verifs1", "verifs2"):
        filesystem = VeriFS1(clock=clock) if name == "verifs1" else VeriFS2(clock=clock)
        mounted = mount_verifs(kernel, filesystem, mountpoint, name=name)
        return MountedFixture(
            name=name, kernel=kernel, clock=clock, mountpoint=mountpoint,
            fstype=mounted.fstype, filesystem=filesystem,
        )
    else:  # pragma: no cover - fixture misuse
        raise ValueError(name)
    fstype.mkfs(device)
    kernel.mount(fstype, device, mountpoint)
    return MountedFixture(
        name=name, kernel=kernel, clock=clock, mountpoint=mountpoint,
        fstype=fstype, device=device,
    )


ALL_FS = ["ext2", "ext4", "xfs", "jffs2", "verifs1", "verifs2"]
BLOCK_FS = ["ext2", "ext4", "xfs", "jffs2"]


@pytest.fixture(params=ALL_FS)
def mounted_fs(request, clock) -> MountedFixture:
    return _mount(request.param, clock)


@pytest.fixture(params=BLOCK_FS)
def mounted_block_fs(request, clock) -> MountedFixture:
    return _mount(request.param, clock)


@pytest.fixture
def mount_factory(clock):
    """Build arbitrary named mounts on demand: ``mount_factory("ext2")``."""

    def factory(name: str) -> MountedFixture:
        return _mount(name, clock)

    return factory
