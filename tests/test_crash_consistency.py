"""Tests for the power-cut device and the crash-consistency harness."""

import pytest

from repro.clock import SimClock
from repro.fs import Ext2FileSystemType, Ext4FileSystemType, Jffs2FileSystemType
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_WRONLY
from repro.mc.crash import CrashHarness
from repro.storage import RAMBlockDevice
from repro.storage.fault import PowerCutDevice, PowerCutMTD
from repro.storage.mtd import MTDDevice


class TestPowerCutDevice:
    def test_passthrough_while_powered(self, clock):
        device = PowerCutDevice(RAMBlockDevice(64 * 1024, clock=clock))
        device.write(0, b"alive")
        assert device.read(0, 5) == b"alive"
        assert device.writes_seen == 1
        assert device.writes_dropped == 0

    def test_cut_drops_writes_silently(self, clock):
        device = PowerCutDevice(RAMBlockDevice(64 * 1024, clock=clock))
        device.write(0, b"kept")
        device.cut()
        device.write(0, b"lost")
        assert device.read(0, 4) == b"kept"
        assert device.writes_dropped == 1

    def test_cut_after_n_writes(self, clock):
        device = PowerCutDevice(RAMBlockDevice(64 * 1024, clock=clock),
                                cut_after_writes=2)
        device.write(0, b"one")
        device.write(10, b"two")
        device.write(20, b"three")  # dropped
        assert device.read(0, 3) == b"one"
        assert device.read(10, 3) == b"two"
        assert device.read(20, 5) == b"\x00" * 5

    def test_block_writes_counted_too(self, clock):
        device = PowerCutDevice(RAMBlockDevice(64 * 1024, clock=clock),
                                cut_after_writes=1)
        device.write_block(0, 1024, b"a")
        device.write_block(1, 1024, b"b")  # dropped
        assert device.read_block(1, 1024) == b"\x00" * 1024

    def test_reads_survive_the_cut(self, clock):
        device = PowerCutDevice(RAMBlockDevice(64 * 1024, clock=clock))
        device.write(0, b"evidence")
        device.cut()
        assert device.read(0, 8) == b"evidence"

    def test_restore_power(self, clock):
        device = PowerCutDevice(RAMBlockDevice(64 * 1024, clock=clock))
        device.cut()
        device.write(0, b"lost")
        device.restore_power()
        device.write(0, b"back")
        assert device.read(0, 4) == b"back"

    def test_proxies_geometry(self, clock):
        inner = RAMBlockDevice(64 * 1024, clock=clock, name="inner")
        device = PowerCutDevice(inner)
        assert device.size_bytes == inner.size_bytes
        assert device.sector_size == inner.sector_size
        assert device.name == "inner"

    def test_filesystem_mounts_on_wrapped_device(self, clock):
        device = PowerCutDevice(RAMBlockDevice(256 * 1024, clock=clock))
        fstype = Ext2FileSystemType()
        fstype.mkfs(device)
        kernel = Kernel(clock)
        kernel.mount(fstype, device, "/mnt/fs")
        kernel.mkdir("/mnt/fs/d")
        assert kernel.stat("/mnt/fs/d").is_dir


def _workload(kernel, base):
    kernel.mkdir(base + "/d")
    fd = kernel.open(base + "/d/f", O_CREAT | O_WRONLY)
    kernel.write(fd, b"A" * 2000)
    kernel.close(fd)
    kernel.sync()
    fd = kernel.open(base + "/g", O_CREAT | O_WRONLY)
    kernel.write(fd, b"B" * 3000)
    kernel.close(fd)
    kernel.truncate(base + "/d/f", 100)
    kernel.sync()


def _device(clock):
    return RAMBlockDevice(256 * 1024, clock=clock)


class TestCrashHarness:
    def test_count_writes_is_deterministic(self):
        harness = CrashHarness(Ext4FileSystemType, _device, _workload)
        assert harness.count_writes() == harness.count_writes() > 0

    def test_cut_at_zero_recovers_empty_fs(self):
        harness = CrashHarness(Ext4FileSystemType, _device, _workload)
        outcome = harness.crash_at(0, harness.legal_states())
        assert outcome.consistent
        assert outcome.legal_state

    def test_uncut_run_recovers_final_state(self):
        harness = CrashHarness(Ext4FileSystemType, _device, _workload)
        legal = harness.legal_states()
        total = harness.count_writes()
        outcome = harness.crash_at(total + 10, legal)
        assert outcome.consistent
        assert outcome.recovered_state == legal[-1]

    def test_ext4_journal_survives_every_cut_point(self):
        """The journal's crash-consistency theorem, swept exhaustively."""
        harness = CrashHarness(Ext4FileSystemType, _device, _workload)
        result = harness.sweep(step=1)
        assert result.total_writes > 20
        assert result.inconsistent_points == []
        assert result.illegal_points == []

    def test_ext2_tears_at_some_cut_points(self):
        """In-place metadata updates are not atomic: ext2 must fail the
        same sweep somewhere (the reason journals exist)."""
        harness = CrashHarness(Ext2FileSystemType, _device, _workload)
        result = harness.sweep(step=1)
        assert result.inconsistent_points or result.illegal_points

    def test_jffs2_log_structure_is_always_consistent(self):
        """A log-structured fs never tears: every recovered state is
        fsck-clean (it may sit between sync points, since every append
        is immediately durable -- that is not corruption)."""
        harness = CrashHarness(
            Jffs2FileSystemType,
            lambda clock: MTDDevice(256 * 1024, clock=clock),
            _workload, fault_wrapper=PowerCutMTD)
        result = harness.sweep(step=1)
        assert result.inconsistent_points == []

    def test_sweep_step_and_limit(self):
        harness = CrashHarness(Ext4FileSystemType, _device, _workload)
        result = harness.sweep(step=5, limit=20)
        assert len(result.outcomes) == 5  # cuts at 0,5,10,15,20
