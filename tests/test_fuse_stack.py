"""Tests for the simulated FUSE stack: protocol, caching, invalidation."""

import pytest

from repro.clock import Cost, SimClock
from repro.errors import EEXIST, EIO, ENOENT, ENOSYS, FsError
from repro.fuse import FuseConnection, FuseOp, FuseServerProcess
from repro.fuse.kernel_driver import FuseKernelFileSystemType
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_RDWR
from repro.verifs import VeriFS1, VeriFS2
from repro.verifs.mounting import mount_verifs


@pytest.fixture
def stack(clock):
    kernel = Kernel(clock)
    mounted = mount_verifs(kernel, VeriFS2(clock=clock), "/mnt/fuse")
    return kernel, mounted


class TestTransport:
    def test_requests_counted(self, stack):
        kernel, mounted = stack
        before = mounted.connection.requests_sent
        kernel.mkdir("/mnt/fuse/d")
        assert mounted.connection.requests_sent > before

    def test_roundtrips_charge_time(self, clock):
        kernel = Kernel(clock)
        mounted = mount_verifs(kernel, VeriFS2(clock=clock), "/mnt/fuse")
        kernel.mkdir("/mnt/fuse/d")
        assert clock.by_category.get("fuse-transport", 0) >= Cost.FUSE_ROUNDTRIP

    def test_connection_without_server_fails_eio(self, clock):
        connection = FuseConnection(clock)
        with pytest.raises(FsError) as excinfo:
            connection.send(FuseOp.GETATTR, ino=1)
        assert excinfo.value.code == EIO

    def test_unique_ids_increase(self, stack):
        kernel, mounted = stack
        kernel.mkdir("/mnt/fuse/a")
        first = mounted.connection._next_unique
        kernel.mkdir("/mnt/fuse/b")
        assert mounted.connection._next_unique > first

    def test_connection_is_character_device(self, stack):
        _, mounted = stack
        assert mounted.connection.device_path == "/dev/fuse"
        assert mounted.connection.is_character_device
        assert "/dev/fuse" in mounted.server.open_devices


class TestDispatch:
    def test_missing_method_is_enosys(self, clock):
        kernel = Kernel(clock)
        mounted = mount_verifs(kernel, VeriFS1(clock=clock), "/mnt/v1")
        kernel.close(kernel.open("/mnt/v1/a", O_CREAT))
        with pytest.raises(FsError) as excinfo:
            kernel.rename("/mnt/v1/a", "/mnt/v1/b")  # VeriFS1 has no rename
        assert excinfo.value.code == ENOSYS

    def test_fs_errors_cross_the_boundary(self, stack):
        kernel, _ = stack
        with pytest.raises(FsError) as excinfo:
            kernel.stat("/mnt/fuse/missing")
        assert excinfo.value.code == ENOENT

    def test_requests_handled_counter(self, stack):
        kernel, mounted = stack
        before = mounted.server.requests_handled
        kernel.mkdir("/mnt/fuse/d")
        assert mounted.server.requests_handled > before


class TestKernelSideCaching:
    def test_lookup_cached_after_first_walk(self, stack):
        kernel, mounted = stack
        kernel.mkdir("/mnt/fuse/d")
        kernel.invalidate_mount_caches(mounted.mount.mount_id)
        start = mounted.connection.requests_sent
        kernel.stat("/mnt/fuse/d")
        first_stat = mounted.connection.requests_sent - start
        kernel.stat("/mnt/fuse/d")
        second_stat = mounted.connection.requests_sent - start - first_stat
        # the second stat skips the LOOKUP (dentry cached), only GETATTRs go
        assert second_stat < first_stat

    def test_notify_inval_entry(self, stack):
        kernel, mounted = stack
        kernel.mkdir("/mnt/fuse/d")
        kernel.stat("/mnt/fuse/d")
        mount_id = mounted.mount.mount_id
        root_ino = mounted.filesystem.ROOT_INO
        count_before = kernel.dcache.entry_count(mount_id)
        mounted.connection.notify_inval_entry(root_ino, "d")
        assert kernel.dcache.entry_count(mount_id) == count_before - 1
        assert mounted.connection.notifications_sent == 1

    def test_notify_inval_all(self, stack):
        kernel, mounted = stack
        kernel.mkdir("/mnt/fuse/a")
        kernel.mkdir("/mnt/fuse/b")
        mounted.connection.notify_inval_all()
        assert kernel.dcache.entry_count(mounted.mount.mount_id) == 0

    def test_stale_positive_dentry_masks_reality(self, stack):
        """The raw mechanism behind the ghost-EEXIST bug."""
        kernel, mounted = stack
        kernel.mkdir("/mnt/fuse/ghost")
        # the fs forgets the directory behind the kernel's back
        del mounted.filesystem.inodes[mounted.filesystem.ROOT_INO].entries["ghost"]
        with pytest.raises(FsError) as excinfo:
            kernel.mkdir("/mnt/fuse/ghost")  # stale dentry answers
        assert excinfo.value.code == EEXIST


class TestProcessImage:
    def test_memory_image_roundtrip(self, stack):
        kernel, mounted = stack
        kernel.mkdir("/mnt/fuse/keep")
        image = mounted.server.memory_image()
        kernel.mkdir("/mnt/fuse/extra")
        mounted.server.restore_memory_image(image)
        mounted.connection.notify_inval_all()
        assert kernel.stat("/mnt/fuse/keep").is_dir
        with pytest.raises(FsError):
            kernel.stat("/mnt/fuse/extra")

    def test_image_is_deep_copy(self, stack):
        kernel, mounted = stack
        image = mounted.server.memory_image()
        kernel.mkdir("/mnt/fuse/later")
        assert "later" not in image["filesystem"]["inodes"][1].entries

    def test_restore_keeps_live_connection(self, stack):
        kernel, mounted = stack
        image = mounted.server.memory_image()
        mounted.server.restore_memory_image(image)
        assert mounted.filesystem.connection is mounted.connection


class TestUnmount:
    def test_unmount_sends_destroy_and_detaches(self, stack):
        kernel, mounted = stack
        kernel.umount("/mnt/fuse")
        assert mounted.connection.kernel is None

    def test_fs_state_survives_kernel_unmount(self, clock):
        """The daemon keeps running across mounts, like a real FUSE server."""
        kernel = Kernel(clock)
        fs = VeriFS2(clock=clock)
        mounted = mount_verifs(kernel, fs, "/mnt/fuse")
        kernel.mkdir("/mnt/fuse/survives")
        kernel.umount("/mnt/fuse")
        mount = kernel.mount(mounted.fstype, None, "/mnt/fuse")
        mounted.connection.attach_kernel(kernel, mount.mount_id)
        assert kernel.stat("/mnt/fuse/survives").is_dir
