"""VeriFS internals not covered by the POSIX-surface or bug suites."""

import pytest

from repro.clock import SimClock
from repro.errors import EINVAL, ENOENT, ENOTDIR, FsError
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_RDWR, O_WRONLY
from repro.kernel.stat import DT_DIR, DT_LNK, DT_REG
from repro.verifs import (
    IOCTL_CHECKPOINT,
    IOCTL_RESTORE,
    VeriFS1,
    VeriFS2,
    mount_verifs,
)
from repro.verifs.verifs2 import CHUNK_SIZE


def mounted(clock, fs, mountpoint="/mnt/v"):
    kernel = Kernel(clock)
    handle = mount_verifs(kernel, fs, mountpoint)
    return kernel, handle


class TestVeriFS1Details:
    def test_readdir_reports_dtypes(self, clock):
        kernel, _ = mounted(clock, VeriFS1(clock=clock))
        kernel.mkdir("/mnt/v/d")
        kernel.close(kernel.open("/mnt/v/f", O_CREAT))
        dtypes = {e.name: e.dtype for e in kernel.getdents("/mnt/v")}
        assert dtypes == {"d": DT_DIR, "f": DT_REG}

    def test_dir_size_reported_zero(self, clock):
        kernel, _ = mounted(clock, VeriFS1(clock=clock))
        kernel.mkdir("/mnt/v/d")
        assert kernel.stat("/mnt/v/d").st_size == 0

    def test_statfs_reflects_inode_usage(self, clock):
        fs = VeriFS1(clock=clock, inode_table_size=64)
        kernel, _ = mounted(clock, fs)
        before = kernel.statfs("/mnt/v").files_free
        kernel.close(kernel.open("/mnt/v/f", O_CREAT))
        assert kernel.statfs("/mnt/v").files_free == before - 1

    def test_buffer_capacity_invisible_when_correct(self, clock):
        """Slack capacity beyond st_size must never be observable."""
        kernel, handle = mounted(clock, VeriFS1(clock=clock))
        fd = kernel.open("/mnt/v/f", O_CREAT | O_RDWR)
        kernel.write(fd, b"X" * 100)
        kernel.ftruncate(fd, 10)
        ino = kernel.fstat(fd).st_ino
        assert len(handle.filesystem.inodes[ino].buffer) >= 100  # slack kept
        assert kernel.pread(fd, 200, 0) == b"X" * 10  # but not visible
        kernel.close(fd)

    def test_snapshot_pools_are_per_instance(self, clock):
        fs_a = VeriFS1(clock=clock)
        fs_b = VeriFS1(clock=clock)
        kernel_a, _ = mounted(clock, fs_a, "/mnt/a")
        kernel_b, _ = mounted(clock, fs_b, "/mnt/b")
        fd = kernel_a.open("/mnt/a")
        kernel_a.ioctl(fd, IOCTL_CHECKPOINT, 1)
        kernel_a.close(fd)
        fd = kernel_b.open("/mnt/b")
        with pytest.raises(FsError) as excinfo:
            kernel_b.ioctl(fd, IOCTL_RESTORE, 1)  # key 1 is a's, not b's
        assert excinfo.value.code == ENOENT
        kernel_b.close(fd)


class TestVeriFS2Details:
    def test_readdir_includes_symlink_dtype(self, clock):
        kernel, _ = mounted(clock, VeriFS2(clock=clock))
        kernel.symlink("target", "/mnt/v/lnk")
        dtypes = {e.name: e.dtype for e in kernel.getdents("/mnt/v")}
        assert dtypes["lnk"] == DT_LNK

    def test_statfs_accounts_chunks(self, clock):
        fs = VeriFS2(clock=clock, capacity_bytes=10 * CHUNK_SIZE)
        kernel, _ = mounted(clock, fs)
        before = kernel.statfs("/mnt/v").blocks_free
        fd = kernel.open("/mnt/v/f", O_CREAT | O_WRONLY)
        kernel.write(fd, b"z" * (2 * CHUNK_SIZE))
        kernel.close(fd)
        after = kernel.statfs("/mnt/v").blocks_free
        assert before - after == 2

    def test_symlink_size_is_target_length(self, clock):
        kernel, _ = mounted(clock, VeriFS2(clock=clock))
        kernel.symlink("abcde", "/mnt/v/lnk")
        assert kernel.lstat("/mnt/v/lnk").st_size == 5

    def test_rename_into_own_subtree_einval(self, clock):
        kernel, _ = mounted(clock, VeriFS2(clock=clock))
        kernel.mkdir("/mnt/v/d")
        kernel.mkdir("/mnt/v/d/sub")
        with pytest.raises(FsError) as excinfo:
            kernel.rename("/mnt/v/d", "/mnt/v/d/sub/moved")
        assert excinfo.value.code == EINVAL

    def test_rename_directory_updates_parent_pointer(self, clock):
        fs = VeriFS2(clock=clock)
        kernel, _ = mounted(clock, fs)
        kernel.mkdir("/mnt/v/a")
        kernel.mkdir("/mnt/v/b")
        kernel.mkdir("/mnt/v/a/child")
        child_ino = kernel.stat("/mnt/v/a/child").st_ino
        b_ino = kernel.stat("/mnt/v/b").st_ino
        kernel.rename("/mnt/v/a/child", "/mnt/v/b/child")
        assert fs.inodes[child_ino].parent == b_ino
        assert kernel.stat("/mnt/v/a").st_nlink == 2
        assert kernel.stat("/mnt/v/b").st_nlink == 3

    def test_access_exists_for_verifs2(self, clock):
        """VeriFS2 added access() (the capability VeriFS1 lacked)."""
        fs = VeriFS2(clock=clock)
        fs.access(fs.ROOT_INO, 0)
        with pytest.raises(FsError):
            fs.access(9999, 0)

    def test_hardlinked_content_shared_through_both_names(self, clock):
        kernel, _ = mounted(clock, VeriFS2(clock=clock))
        fd = kernel.open("/mnt/v/a", O_CREAT | O_WRONLY)
        kernel.write(fd, b"first")
        kernel.close(fd)
        kernel.link("/mnt/v/a", "/mnt/v/b")
        fd = kernel.open("/mnt/v/b", O_WRONLY)
        kernel.pwrite(fd, b"SECOND", 0)
        kernel.close(fd)
        fd = kernel.open("/mnt/v/a")
        assert kernel.read(fd, 10) == b"SECOND"
        kernel.close(fd)

    def test_checkpoint_excludes_snapshot_pool_itself(self, clock):
        """Nested snapshots must not balloon: a checkpoint captures the
        file system, not the pool of other checkpoints."""
        fs = VeriFS2(clock=clock)
        kernel, _ = mounted(clock, fs)
        fd = kernel.open("/mnt/v")
        kernel.ioctl(fd, IOCTL_CHECKPOINT, 1)
        kernel.ioctl(fd, IOCTL_CHECKPOINT, 2)
        kernel.ioctl(fd, IOCTL_RESTORE, 1)
        # key 2 still present: restoring 1 did not clobber the pool
        assert 2 in fs.snapshots.keys()
        kernel.close(fd)

    def test_chunk_slack_never_visible(self, clock):
        kernel, _ = mounted(clock, VeriFS2(clock=clock))
        fd = kernel.open("/mnt/v/f", O_CREAT | O_RDWR)
        kernel.write(fd, b"Y" * 300)
        kernel.ftruncate(fd, 5)
        assert kernel.pread(fd, 100, 0) == b"Y" * 5
        kernel.close(fd)


class TestMountingHelper:
    def test_mount_handle_fields(self, clock):
        fs = VeriFS2(clock=clock)
        kernel = Kernel(clock)
        handle = mount_verifs(kernel, fs, "/mnt/x", name="xx")
        assert handle.filesystem is fs
        assert handle.mountpoint == "/mnt/x"
        assert handle.connection.kernel is kernel
        assert handle.server.filesystem is fs
        assert handle.fstype.name == "xx"

    def test_clock_alignment_when_fs_has_none(self, clock):
        fs = VeriFS2()  # no clock
        kernel = Kernel(clock)
        mount_verifs(kernel, fs, "/mnt/x")
        assert fs.clock is clock
