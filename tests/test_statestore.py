"""Memory-bounded visited-state stores (Spin -DBITSTATE / -DHC).

The contract every store must honour, lossy or not:

* **soundness** -- a store may *omit* states (report a fresh state as
  visited) but must never do so silently: any store whose hashing can
  collide reports ``omission_possible`` and a nonzero
  ``omission_probability`` the moment a collision is possible;
* **no invented hits without a collision** -- under an injective hash
  every first visit of a distinct state reports ``is_new=True``;
* **equal bug discovery** -- the four seeded VeriFS bugs are found in
  every store mode, at the same operation count as the exact table;
* **truthful accounting** -- each mode charges its real footprint to the
  memory model (bitstate reserves everything up front and never grows).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Ext4FileSystemType,
    MCFS,
    MCFSOptions,
    RAMBlockDevice,
    SimClock,
    VeriFS1,
    VeriFS2,
    VeriFSBug,
)
from repro.core.report import RunSummary
from repro.mc.explorer import Explorer
from repro.mc.hashtable import EXACT_ENTRY_BYTES, VisitedStateTable
from repro.mc.memory import MemoryModel
from repro.mc.persistence import (
    LOSSY_FORMAT_VERSION,
    save_checker_state,
    load_checker_state,
    snapshot_document,
    snapshot_from_document,
)
from repro.mc.statestore import (
    BitstateTable,
    HashCompactionTable,
    StoreSpec,
    TieredTable,
    make_store,
    merge_into,
    parse_store_spec,
    store_from_document,
)
from repro.mc.swarm import SwarmVerifier
from repro.util.hashing import md5_hex

ALL_STORE_SPECS = ["exact", "hc", "bitstate:65536,3", "tiered:64"]


def hashes(n, prefix="s"):
    """n distinct well-formed (hex MD5) state hashes."""
    return [md5_hex(f"{prefix}{i}") for i in range(n)]


# --------------------------------------------------------------- spec parsing
class TestParseStoreSpec:
    def test_defaults(self):
        assert parse_store_spec("exact").kind == "exact"
        spec = parse_store_spec("hc")
        assert (spec.kind, spec.fp_bytes) == ("hc", 4)
        spec = parse_store_spec("bitstate")
        assert spec.kind == "bitstate" and spec.bits > 0 and spec.k >= 1
        assert parse_store_spec("tiered").kind == "tiered"

    def test_parameters(self):
        assert parse_store_spec("hc:8").fp_bytes == 8
        spec = parse_store_spec("bitstate:65536,2")
        assert (spec.bits, spec.k) == (65536, 2)
        assert parse_store_spec("bitstate:1024").bits == 1024
        assert parse_store_spec("tiered:128").hot_capacity == 128

    def test_describe_round_trips(self):
        for text in ("exact", "hc:8", "bitstate:65536,2", "tiered:128"):
            spec = parse_store_spec(text)
            assert parse_store_spec(spec.describe()) == spec

    @pytest.mark.parametrize("bad", [
        "bogus", "exact:4", "hc:banana", "bitstate:x,y", "tiered:", "",
    ])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            parse_store_spec(bad)

    def test_build_types(self):
        assert isinstance(make_store("exact"), VisitedStateTable)
        assert isinstance(make_store("hc"), HashCompactionTable)
        assert isinstance(make_store("bitstate:65536,2"), BitstateTable)
        assert isinstance(make_store("tiered:16"), TieredTable)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            HashCompactionTable(fp_bytes=3)
        with pytest.raises(ValueError):
            BitstateTable(bits=8)
        with pytest.raises(ValueError):
            BitstateTable(k=0)
        with pytest.raises(ValueError):
            TieredTable(hot_capacity=0)


# ---------------------------------------------------------- soundness (PBT)
def injective_digest(state_hash: str) -> bytes:
    """A fake digest assigning every hash its own disjoint bit range.

    ``first = index * 64`` with ``second = 1`` makes state ``i`` use bit
    positions ``64i .. 64i+k-1`` -- no two distinct states can ever
    share a bit (or a fingerprint prefix), so a lossy store has no
    excuse to invent a visited hit.
    """
    index = int(state_hash[1:]) if state_hash[0] == "x" else int(state_hash, 16)
    return (index * 64).to_bytes(8, "little") + (1).to_bytes(8, "little")


def colliding_digest(state_hash: str) -> bytes:
    """Every state hashes to the same digest: a guaranteed collision."""
    return b"\x2a" * 16


LOSSY_BUILDERS = [
    pytest.param(lambda fn: HashCompactionTable(fp_bytes=8, digest_fn=fn),
                 id="hc"),
    pytest.param(lambda fn: BitstateTable(bits=1 << 20, k=3, digest_fn=fn),
                 id="bitstate"),
    pytest.param(lambda fn: TieredTable(hot_capacity=1, fp_bytes=8,
                                        digest_fn=fn),
                 id="tiered"),
]


class TestSoundness:
    @pytest.mark.parametrize("build", LOSSY_BUILDERS)
    @given(count=st.integers(min_value=1, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_never_invents_hits_without_collisions(self, build, count):
        """Under an injective hash, every distinct state is new."""
        table = build(injective_digest)
        for i in range(count):
            is_new, should_expand = table.visit(f"x{i}", depth=i % 5)
            assert is_new and should_expand
        assert table.stats.inserts == count

    @pytest.mark.parametrize("build", LOSSY_BUILDERS)
    @given(count=st.integers(min_value=3, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_collisions_are_never_silent(self, build, count):
        """A forced collision omits states -- and the stats must say so."""
        table = build(colliding_digest)
        new_states = sum(1 for i in range(count)
                         if table.visit(f"x{i}")[0])
        assert new_states < count  # states were omitted...
        assert table.stats.omission_possible  # ...and the store admits it
        assert table.stats.omission_probability > 0.0

    def test_exact_table_reports_no_omission(self):
        table = VisitedStateTable()
        for state_hash in hashes(50):
            table.visit(state_hash)
        assert not table.stats.omission_possible
        assert table.stats.omission_probability == 0.0


# -------------------------------------------------------------- bitstate
class TestBitstate:
    def test_zero_growth_after_init(self):
        """The whole footprint is reserved up front -- Figure 3's swap
        collapse cannot creep up on a bitstate run."""
        memory = MemoryModel(clock=SimClock(), ram_bytes=1 << 30,
                             swap_bytes=1 << 30, state_bytes=1 << 20)
        table = BitstateTable(bits=1 << 16, memory=memory)
        initial = memory.stored_bytes
        assert initial == table.stats.stored_bytes > 0
        for state_hash in hashes(500):
            table.visit(state_hash)
        assert memory.stored_bytes == initial  # not one byte more
        assert table.stats.resizes == 0

    def test_depth_reexpansion(self):
        """A state re-reached shallower must be re-expanded (else the
        bounded search silently truncates frontier subtrees)."""
        table = BitstateTable(bits=1 << 16)
        state = md5_hex("deep-then-shallow")
        assert table.visit(state, depth=3) == (True, True)
        assert table.visit(state, depth=3) == (False, False)
        assert table.visit(state, depth=1) == (False, True)
        assert table.visit(state, depth=2) == (False, False)

    def test_wire_key_is_int(self):
        table = BitstateTable(bits=1 << 16)
        state = md5_hex("wire")
        key = table.wire_key(state)
        assert isinstance(key, int)
        # a pre-compacted wire key lands on the same bits
        table.visit(state)
        assert table.visit(key)[0] is False

    def test_merge_requires_same_parameters(self):
        a = BitstateTable(bits=1 << 16, k=3)
        with pytest.raises(ValueError):
            a.merge_from(BitstateTable(bits=1 << 16, k=2))
        with pytest.raises(ValueError):
            a.merge_from(BitstateTable(bits=1 << 16, k=3, seed=9))

    def test_merge_unions_bits_and_depths(self):
        a, b = BitstateTable(bits=1 << 16), BitstateTable(bits=1 << 16)
        left, right = hashes(20, "left"), hashes(20, "right")
        for state_hash in left:
            a.visit(state_hash, depth=2)
        for state_hash in right:
            b.visit(state_hash, depth=1)
        a.merge_from(b)
        for state_hash in left + right:
            assert state_hash in a


# ------------------------------------------------------- hash compaction
class TestHashCompaction:
    def test_entry_is_5x_smaller_than_exact(self):
        table = HashCompactionTable(fp_bytes=4)
        assert EXACT_ENTRY_BYTES / table.entry_bytes == 5.0
        for state_hash in hashes(100):
            table.visit(state_hash)
        assert table.stats.stored_bytes == 100 * table.entry_bytes
        assert table.stats.bits_per_state == table.entry_bytes * 8

    def test_memory_charged_in_entry_bytes(self):
        memory = MemoryModel(clock=SimClock(), ram_bytes=1 << 30,
                             swap_bytes=1 << 30, state_bytes=1 << 20)
        table = HashCompactionTable(fp_bytes=4, memory=memory)
        for state_hash in hashes(100):
            table.visit(state_hash)
        assert memory.stored_bytes == 100 * table.entry_bytes

    def test_wire_key_round_trip(self):
        """The service matches on fingerprints a worker pre-compacted."""
        table = HashCompactionTable(fp_bytes=8, seed=42)
        state = md5_hex("shipped")
        fingerprint = table.wire_key(state)
        assert isinstance(fingerprint, int)
        assert table.visit(fingerprint)[0] is True
        assert table.visit(state)[0] is False  # same state, either form

    def test_depth_reexpansion(self):
        table = HashCompactionTable()
        state = md5_hex("hc-depth")
        assert table.visit(state, depth=4) == (True, True)
        assert table.visit(state, depth=2) == (False, True)
        assert table.visit(state, depth=3) == (False, False)

    def test_resizes_are_counted(self):
        table = HashCompactionTable(initial_buckets=8)
        for state_hash in hashes(100):
            table.visit(state_hash)
        assert table.stats.resizes > 0


# ---------------------------------------------------------------- tiered
class TestTiered:
    def test_exact_until_hot_tier_overflows(self):
        table = TieredTable(hot_capacity=32)
        for state_hash in hashes(32):
            table.visit(state_hash)
        assert table.demotions == 0
        assert not table.stats.omission_possible
        assert table.stats.omission_probability == 0.0

    def test_demotion_shrinks_footprint(self):
        memory = MemoryModel(clock=SimClock(), ram_bytes=1 << 30,
                             swap_bytes=1 << 30, state_bytes=1 << 20)
        table = TieredTable(hot_capacity=8, memory=memory)
        for state_hash in hashes(8):
            table.visit(state_hash)
        full = memory.stored_bytes
        table.visit(md5_hex("overflow"))  # LRU entry demotes to cold
        assert table.demotions == 1
        assert memory.stored_bytes < full + memory.state_bytes
        assert table.stats.omission_possible  # cold tier now non-empty

    def test_lru_keeps_recent_states_exact(self):
        table = TieredTable(hot_capacity=2)
        first, second, third = hashes(3, "lru")
        table.visit(first)
        table.visit(second)
        table.visit(first)  # refresh first: second is now LRU
        table.visit(third)
        assert second not in table._hot  # noqa: SLF001 -- tier inspection
        assert first in table._hot and third in table._hot
        assert len(table) == 3

    def test_len_counts_both_tiers(self):
        table = TieredTable(hot_capacity=4)
        for state_hash in hashes(10):
            table.visit(state_hash)
        assert len(table) == 10


# ------------------------------------------------------------- merge_into
class TestMergeInto:
    @pytest.mark.parametrize("spec", ["hc", "bitstate:65536,3", "tiered:16"])
    def test_exact_source_merges_into_any_store(self, spec):
        source = VisitedStateTable()
        for state_hash in hashes(25):
            source.visit(state_hash)
        destination = make_store(spec)
        assert merge_into(destination, source) == 25
        for state_hash in hashes(25):
            assert destination.visit(state_hash)[0] is False

    def test_lossy_kind_mismatch_is_an_error(self):
        with pytest.raises(ValueError):
            merge_into(HashCompactionTable(), BitstateTable(bits=1 << 16))

    def test_same_kind_merges(self):
        a, b = HashCompactionTable(seed=5), HashCompactionTable(seed=5)
        for state_hash in hashes(10, "a"):
            a.visit(state_hash)
        for state_hash in hashes(10, "b"):
            b.visit(state_hash)
        assert merge_into(a, b) == 10
        assert len(a) == 20


# ------------------------------------------------------- persistence (v3)
class TestPersistenceV3:
    @pytest.mark.parametrize("spec", ["hc:8", "bitstate:65536,3", "tiered:16"])
    def test_round_trip(self, tmp_path, spec):
        path = str(tmp_path / "state.json")
        table = make_store(spec, seed=7)
        for i, state_hash in enumerate(hashes(40)):
            table.visit(state_hash, depth=i % 4)
        save_checker_state(path, table, operations_completed=123, runs=2,
                           seed=7, worker_id="w1")
        snapshot = load_checker_state(path)
        assert snapshot.operations_completed == 123
        assert snapshot.runs == 2
        assert snapshot.worker_id == "w1"
        assert type(snapshot.visited) is type(table)
        assert snapshot.table_stats.omission_possible
        # resumed store still knows every state
        for state_hash in hashes(40):
            assert snapshot.visited.visit(state_hash, depth=10)[0] is False

    def test_lossy_documents_are_version_3(self):
        table = make_store("hc")
        table.visit(md5_hex("one"))
        document = snapshot_document(table)
        assert document["version"] == LOSSY_FORMAT_VERSION
        assert document["store"]["kind"] == "hc"
        assert "seen" not in document

    def test_exact_documents_stay_version_2(self):
        table = VisitedStateTable()
        table.visit(md5_hex("one"))
        assert snapshot_document(table)["version"] == 2

    def test_v1_documents_still_load(self):
        document = {"version": 1, "buckets": 1024,
                    "seen": {md5_hex("old"): 2}, "operations_completed": 5,
                    "runs": 1}
        snapshot = snapshot_from_document(document)
        assert isinstance(snapshot.visited, VisitedStateTable)
        assert md5_hex("old") in snapshot.visited

    def test_bitstate_depth_slots_survive(self):
        table = BitstateTable(bits=1 << 16)
        state = md5_hex("frontier")
        table.visit(state, depth=3)
        restored = store_from_document(table.store_document())
        # the restored store remembers depth 3: shallower re-reach still
        # triggers re-expansion after a resume
        assert restored.visit(state, depth=1) == (False, True)

    def test_unknown_store_kind_rejected(self):
        with pytest.raises(ValueError):
            store_from_document({"kind": "martian"})


# ------------------------------------------------- satellite: clear() stats
class TestClearResetsEverything:
    def test_clear_zeroes_stats_and_buckets(self):
        """A cleared table reporting stale inserts/resizes poisons every
        rate derived from its stats (the bug this release fixes)."""
        memory = MemoryModel(clock=SimClock(), ram_bytes=1 << 30,
                             swap_bytes=1 << 30, state_bytes=1 << 20)
        table = VisitedStateTable(memory=memory, initial_buckets=8)
        events = []
        table.resize_hooks.append(events.append)
        for state_hash in hashes(50):
            table.visit(state_hash)
            table.visit(state_hash)  # a duplicate hit each
        assert table.stats.resizes > 0
        table.clear()
        assert len(table) == 0
        assert table.buckets == 8
        assert table.stats.inserts == 0
        assert table.stats.duplicate_hits == 0
        assert table.stats.resizes == 0
        assert table.stats.stored_bytes == 0
        assert memory.stored_bytes == 0
        assert events[-1] == 8  # hooks saw the shrink

    def test_sticky_omission_mode_survives_reset(self):
        table = BitstateTable(bits=1 << 16)
        table.stats.reset()
        assert table.stats.omission_possible  # mode, not traffic


# ------------------------------------------------------------ swarm wiring
def counting_factory(limit=6):
    from tests.test_mc_engine import CounterTarget

    def factory(seed):
        clock = SimClock()
        return CounterTarget(limit=limit, clock=clock), clock

    return factory


class TestSwarmStores:
    def test_cooperative_rejects_lossy_stores(self):
        with pytest.raises(ValueError):
            SwarmVerifier(counting_factory(), members=2, cooperative=True,
                          state_store="bitstate")

    def test_lossy_members_report_omission(self):
        swarm = SwarmVerifier(counting_factory(), members=3, mode="dfs",
                              max_depth=3, state_store="hc")
        result = swarm.run()
        assert result.omission_possible
        assert all(m.table_stats is not None and m.table_stats.omission_possible
                   for m in result.members)

    def test_exact_swarm_reports_no_omission(self):
        swarm = SwarmVerifier(counting_factory(), members=2, mode="dfs",
                              max_depth=3)
        result = swarm.run()
        assert not result.omission_possible
        assert result.omission_probability == 0.0

    def test_members_get_diversified_store_seeds(self):
        """Classic swarm + lossy store: every member hashes with its own
        seed, so members collide on different state pairs (Holzmann's
        swarm+bitstate union-coverage argument)."""
        swarm = SwarmVerifier(counting_factory(), members=3, mode="dfs",
                              max_depth=2, state_store="bitstate:65536,2")
        result = swarm.run()
        assert len({m.seed for m in result.members}) == 3
        assert result.union_coverage  # recorder captured full hashes


# ------------------------------------------------ end-to-end bug discovery
def build_mcfs(bug, store):
    clock = SimClock()
    mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False,
                                   state_store=store))
    if bug in (VeriFSBug.TRUNCATE_STALE_DATA,
               VeriFSBug.MISSING_CACHE_INVALIDATION):
        mcfs.add_block_filesystem("ext4", Ext4FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock))
        mcfs.add_verifs("verifs1", VeriFS1(bugs=[bug]))
    else:
        mcfs.add_verifs("verifs1", VeriFS1())
        mcfs.add_verifs("verifs2", VeriFS2(bugs=[bug]))
    return mcfs


BUG_DEPTHS = [
    (VeriFSBug.TRUNCATE_STALE_DATA, 4),
    (VeriFSBug.MISSING_CACHE_INVALIDATION, 3),
    (VeriFSBug.WRITE_HOLE_STALE, 3),
    (VeriFSBug.SIZE_UPDATE_ON_CAPACITY_ONLY, 3),
]


class TestBugDiscoveryAcrossStores:
    @pytest.mark.parametrize("bug,depth", BUG_DEPTHS,
                             ids=[b.value for b, _ in BUG_DEPTHS])
    def test_every_store_finds_every_bug(self, bug, depth):
        """The acceptance bar: identical bug discovery in every mode --
        same bug, same operation count as the exact table."""
        exact = build_mcfs(bug, "exact").run_dfs(max_depth=depth,
                                                 max_operations=400_000)
        assert exact.found_discrepancy
        for store in ALL_STORE_SPECS[1:]:
            result = build_mcfs(bug, store).run_dfs(max_depth=depth,
                                                    max_operations=400_000)
            assert result.found_discrepancy, f"{bug.value} lost under {store}"
            assert result.operations == exact.operations

    def test_lossy_result_carries_omission(self):
        mcfs = build_mcfs(VeriFSBug.MISSING_CACHE_INVALIDATION, "hc")
        result = mcfs.run_dfs(max_depth=3, max_operations=10_000)
        assert result.omission_possible
        assert result.table_stats.bits_per_state < EXACT_ENTRY_BYTES * 8
        summary = RunSummary.from_result(result)
        assert summary.omission_possible
        assert "LOSSY" in summary.render()

    def test_exact_result_renders_without_store_line(self):
        mcfs = build_mcfs(VeriFSBug.MISSING_CACHE_INVALIDATION, "exact")
        result = mcfs.run_dfs(max_depth=2, max_operations=5_000)
        assert not result.omission_possible
        assert "LOSSY" not in RunSummary.from_result(result).render()


# ------------------------------------------------- satellite: explorer fix
class TestExplorerBudgetAccounting:
    def test_budget_checked_once_per_action(self):
        """_dfs used to evaluate the budget twice per loop iteration;
        the check must stay de-duplicated (once per node entry plus once
        per action)."""
        from tests.test_mc_engine import CounterTarget

        calls = []
        clock = SimClock()
        explorer = Explorer(CounterTarget(limit=4, clock=clock), clock,
                            max_depth=3, max_operations=50)
        original = explorer._budget_exceeded

        def counting():
            calls.append(1)
            return original()

        explorer._budget_exceeded = counting
        stats = explorer.run_dfs()
        # one check per node entry plus one per attempted action; the
        # old double-call per action would exceed this bound
        assert len(calls) <= 2 * stats.transitions + 2
        assert stats.stopped_reason
