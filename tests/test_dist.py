"""repro.dist: distributed exploration across a real multiprocessing fleet.

The load-bearing properties under test:

* **determinism** -- the merged result (visited-state count, operation
  total, discrepancy signature) is identical for any worker count;
* **fault tolerance** -- SIGKILLing a worker mid-run re-issues its
  leased unit and the final result is still identical;
* **exactness of the caches** -- the LRU/Bloom fast paths never lose a
  hash, so the union at the service is exact.
"""

import dataclasses
import json

import pytest

from repro.clock import SimClock
from repro.core.report import RunSummary
from repro.dist import (
    BloomFilter,
    CheckSpec,
    DistributedChecker,
    LRUSet,
    ShippingVisitedTable,
    VisitedStateService,
    WorkerConfig,
    unique_labels,
)
from repro.dist.spec import SEED_STRIDE
from repro.mc.explorer import ExplorationTarget
from repro.mc.hashtable import VisitedStateTable
from repro.mc.persistence import (
    load_checker_state,
    save_checker_state,
    snapshot_document,
    snapshot_from_document,
)
from repro.mc.swarm import SwarmVerifier

SPEC = CheckSpec(
    filesystems=("verifs1", "verifs2"),
    units=4,
    base_seed=1,
    unit_operations=100,
    max_depth=8,
)

#: a chunkier spec with a known bug injected into the last file system
BUG_SPEC = dataclasses.replace(
    SPEC, units=6, unit_operations=150, verifs_bugs=("write-hole-stale",))

#: chaos tests need ticks to fire well inside a 100-op unit
CHAOS_CONFIG = WorkerConfig(heartbeat_operations=20, checkpoint_operations=40)


def fingerprint(dist):
    """Everything that must be invariant across fleets and crashes."""
    return (
        dist.visited_states,
        dist.total_operations,
        dist.discrepancy_signature(),
        sorted((unit.index, unit.operations, unit.unique_states)
               for unit in dist.unit_results),
    )


@pytest.fixture(scope="module")
def baseline():
    """The workers=1 reference run every other fleet must reproduce."""
    return DistributedChecker(SPEC, workers=1).run()


# ---------------------------------------------------------------- caches --
class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(bits=1 << 12)
        hashes = [f"hash-{i}" for i in range(200)]
        for value in hashes:
            bloom.add(value)
        assert all(value in bloom for value in hashes)

    def test_fill_ratio_grows(self):
        bloom = BloomFilter(bits=1 << 10)
        assert bloom.fill_ratio == 0.0
        for i in range(50):
            bloom.add(f"h{i}")
        assert 0.0 < bloom.fill_ratio <= 1.0

    def test_mostly_rejects_unseen(self):
        bloom = BloomFilter(bits=1 << 14)
        for i in range(100):
            bloom.add(f"present-{i}")
        misses = sum(f"absent-{i}" in bloom for i in range(1000))
        assert misses < 50  # comfortably under the design false-positive rate


class TestLRUSet:
    def test_evicts_oldest(self):
        lru = LRUSet(capacity=2)
        lru.add("a")
        lru.add("b")
        lru.add("c")  # evicts a
        assert "a" not in lru
        assert "b" in lru and "c" in lru
        assert lru.evictions == 1

    def test_lookup_refreshes_recency(self):
        lru = LRUSet(capacity=2)
        lru.add("a")
        lru.add("b")
        assert "a" in lru  # refresh: a is now the most recent
        lru.add("c")  # evicts b, not a
        assert "a" in lru
        assert "b" not in lru


# ------------------------------------------------------------------ spec --
class TestCheckSpec:
    def test_work_units_are_deterministic(self):
        assert SPEC.work_units() == SPEC.work_units()

    def test_units_diversified_like_swarm(self):
        units = SPEC.work_units()
        assert [unit.seed for unit in units] == [
            1 + index * SEED_STRIDE for index in range(4)]
        assert len({unit.max_depth for unit in units}) > 1

    def test_unit_count_fixed_by_spec_not_fleet(self):
        # the partition is a property of the spec alone
        assert len(SPEC.work_units()) == SPEC.units

    def test_rejects_single_filesystem(self):
        with pytest.raises(ValueError):
            CheckSpec(filesystems=("verifs1",))

    def test_rejects_unknown_filesystem(self):
        with pytest.raises(ValueError):
            CheckSpec(filesystems=("verifs1", "nope"))

    def test_rejects_zero_units(self):
        with pytest.raises(ValueError):
            CheckSpec(filesystems=("verifs1", "verifs2"), units=0)

    def test_unique_labels(self):
        assert unique_labels(["ext4", "ext4", "ext4"]) == [
            "ext4", "ext42", "ext43"]

    def test_build_mcfs_attaches_spec(self):
        mcfs = SPEC.build_mcfs()
        assert mcfs.spec is SPEC
        assert len(mcfs.futs) == 2


# ------------------------------------------------------- shipping table --
class TestShippingVisitedTable:
    def test_batches_until_threshold(self):
        shipped = []
        table = ShippingVisitedTable(ship=shipped.append, batch_size=3)
        table.visit("a", 1)
        table.visit("b", 2)
        assert shipped == []  # buffered
        table.visit("c", 3)
        assert shipped == [[("a", 1), ("b", 2), ("c", 3)]]  # eager flush

    def test_flush_drains_partial_batch(self):
        shipped = []
        table = ShippingVisitedTable(ship=shipped.append, batch_size=64)
        table.visit("a", 1)
        table.flush()
        assert shipped == [[("a", 1)]]
        assert table.shipped_hashes == 1

    def test_duplicates_never_ship(self):
        shipped = []
        table = ShippingVisitedTable(ship=shipped.append, batch_size=1)
        table.visit("a", 1)
        is_new, _ = table.visit("a", 2)
        assert not is_new
        assert shipped == [[("a", 1)]]  # shipped exactly once

    def test_lru_suppresses_cross_unit_resends(self):
        lru = LRUSet()
        lru.add("a")  # an earlier unit of this worker shipped it
        shipped = []
        table = ShippingVisitedTable(ship=shipped.append, shipped_lru=lru,
                                     batch_size=1)
        table.visit("a", 1)
        assert shipped == []
        assert table.suppressed_hashes == 1

    def test_bloom_hit_counts_but_still_ships(self):
        bloom = BloomFilter()
        bloom.add("a")  # another worker's confirmed territory
        shipped = []
        table = ShippingVisitedTable(ship=shipped.append, global_bloom=bloom,
                                     batch_size=1)
        table.visit("a", 1)
        assert shipped == [[("a", 1)]]  # exactness beats the probable hit
        assert table.probable_cross_duplicates == 1

    def test_local_semantics_delegate(self):
        table = ShippingVisitedTable(ship=lambda batch: None)
        table.visit("a", 1)
        assert len(table) == 1
        assert "a" in table
        assert table.stats.inserts == 1

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            ShippingVisitedTable(ship=lambda batch: None, batch_size=0)


# --------------------------------------------------------------- service --
class TestVisitedStateService:
    def test_insert_batch_reports_new_flags(self):
        service = VisitedStateService()
        assert service.insert_batch([("a", 1), ("b", 2)]) == [True, True]
        assert service.insert_batch([("a", 1), ("c", 3)]) == [False, True]
        assert len(service) == 3
        assert service.cross_worker_duplicates == 1

    def test_lookup_batch_never_inserts(self):
        service = VisitedStateService()
        service.insert_batch([("a", 1)])
        assert service.lookup_batch(["a", "b"]) == [True, False]
        assert len(service) == 1

    def test_import_snapshot_is_idempotent(self):
        table = VisitedStateTable()
        table.visit("a", 1)
        table.visit("b", 2)
        document = snapshot_document(table)
        service = VisitedStateService()
        assert service.import_snapshot(document) == 2
        assert service.import_snapshot(document) == 0  # re-merge is a no-op
        assert len(service) == 2


# ----------------------------------------------------------- persistence --
class TestPersistenceV2:
    def test_roundtrip_carries_provenance(self, tmp_path):
        path = str(tmp_path / "state.json")
        table = VisitedStateTable()
        table.visit("aaa", 2)
        table.visit("aaa", 5)  # duplicate hit
        save_checker_state(path, table, operations_completed=7, runs=3,
                           seed=42, worker_id="w1")
        snapshot = load_checker_state(path)
        assert snapshot.seed == 42
        assert snapshot.worker_id == "w1"
        assert snapshot.operations_completed == 7
        assert snapshot.runs == 3
        assert snapshot.visited.export_seen() == {"aaa": 2}
        assert snapshot.table_stats.duplicate_hits == 1

    def test_v1_documents_still_load(self):
        snapshot = snapshot_from_document({
            "version": 1,
            "buckets": 64,
            "seen": {"aaa": 2},
            "operations_completed": 5,
            "runs": 2,
        })
        assert snapshot.seed is None
        assert snapshot.worker_id is None
        assert snapshot.visited.export_seen() == {"aaa": 2}
        assert snapshot.table_stats.inserts == 1

    def test_unsupported_version_names_path(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(json.dumps({"version": 99, "buckets": 64, "seen": {}}))
        with pytest.raises(ValueError, match="state.json"):
            load_checker_state(str(path))

    def test_export_seen_returns_a_copy(self):
        table = VisitedStateTable()
        table.visit("a", 1)
        seen = table.export_seen()
        seen["b"] = 2
        assert len(table) == 1

    def test_import_seen_keeps_shallowest_depth(self):
        table = VisitedStateTable()
        table.visit("a", 5)
        assert table.import_seen({"a": 2, "b": 3}) == 1  # only b is new
        assert table.export_seen() == {"a": 2, "b": 3}


# ----------------------------------------------------------- determinism --
class TestDistributedDeterminism:
    def test_single_worker_completes_all_units(self, baseline):
        assert len(baseline.unit_results) == SPEC.units
        assert baseline.visited_states == len(baseline.table)
        assert baseline.total_operations == SPEC.units * SPEC.unit_operations

    def test_worker_count_does_not_change_the_result(self, baseline):
        fleet = DistributedChecker(SPEC, workers=3).run()
        assert fingerprint(fleet) == fingerprint(baseline)

    def test_modeled_speedup_uses_static_lanes(self, baseline):
        fleet = DistributedChecker(SPEC, workers=4).run()
        assert fleet.modeled_parallel_time < fleet.sequential_sim_time
        assert fleet.speedup > 1.0
        # sequential compute is fleet-invariant
        assert fleet.sequential_sim_time == pytest.approx(
            baseline.sequential_sim_time)

    def test_bug_found_identically_at_any_fleet_size(self):
        solo = DistributedChecker(BUG_SPEC, workers=1).run()
        fleet = DistributedChecker(BUG_SPEC, workers=3).run()
        assert solo.found_discrepancy
        assert solo.discrepancy_signature() == fleet.discrepancy_signature()
        # units after the first violation still ran: no global early stop
        assert len(solo.unit_results) == BUG_SPEC.units
        assert len(fleet.unit_results) == BUG_SPEC.units

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            DistributedChecker(SPEC, workers=0)


# ------------------------------------------------------- fault tolerance --
class TestFaultTolerance:
    def test_sigkilled_worker_costs_nothing_but_time(self, baseline):
        fleet = DistributedChecker(
            SPEC, workers=2, config=CHAOS_CONFIG,
            chaos_kill_after={"w1": 50},  # SIGKILL mid-unit
        ).run()
        assert fingerprint(fleet) == fingerprint(baseline)
        assert fleet.recovered_units >= 1
        dead = {s.worker_id: s for s in fleet.worker_summaries}["w1"]
        assert not dead.alive_at_end

    def test_whole_fleet_dead_finishes_inline(self, baseline):
        fleet = DistributedChecker(
            SPEC, workers=1, config=CHAOS_CONFIG,
            chaos_kill_after={"w0": 50},
        ).run()
        assert fingerprint(fleet) == fingerprint(baseline)
        assert fleet.inline_units >= 1

    def test_state_file_resumes_across_campaigns(self, tmp_path, baseline):
        path = str(tmp_path / "dist-state.json")
        first = DistributedChecker(SPEC, workers=2, state_file=path).run()
        assert fingerprint(first) == fingerprint(baseline)
        snapshot = load_checker_state(path)
        assert snapshot.runs == 1
        assert snapshot.worker_id == "coordinator"
        assert len(snapshot.visited) == first.visited_states
        second = DistributedChecker(SPEC, workers=2, state_file=path).run()
        # the union is already known: the second campaign adds nothing
        assert second.visited_states == first.visited_states
        assert load_checker_state(path).runs == 2

    def test_server_pause_restart_resume_matches_one_shot(self, tmp_path,
                                                          baseline):
        """The campaign server's pause/resume rides the same unit
        determinism the crash tests above pin: pausing mid-campaign,
        losing the engine entirely, and resuming from its spool explores
        the identical state set as an uninterrupted run."""
        from repro.server import CampaignEngine, EngineConfig, SubmitRequest

        spool = str(tmp_path / "spool")
        engine = CampaignEngine(EngineConfig(slots=1, spool_dir=spool))
        job = engine.submit(SubmitRequest(spec=SPEC.to_dict()))
        engine.step()  # one unit lands
        engine.pause(job.job_id)
        engine.step()  # the pause snapshot (store + frontier) is spooled
        assert engine.job(job.job_id).state == "paused"

        reborn = CampaignEngine(EngineConfig(slots=1, spool_dir=spool))
        reborn.resume(job.job_id)
        reborn.run_until_idle()
        assert fingerprint(reborn.result(job.job_id)) == \
            fingerprint(baseline)


# ----------------------------------------------------- cooperative swarm --
class _Grid(ExplorationTarget):
    def __init__(self, limit=6):
        self.x = 0
        self.y = 0
        self.limit = limit
        self.clock = SimClock()

    def actions(self):
        return ["right", "up"]

    def apply(self, action):
        self.clock.charge(0.001, "op")
        if action == "right":
            self.x = min(self.limit, self.x + 1)
        else:
            self.y = min(self.limit, self.y + 1)

    def checkpoint(self):
        return (self.x, self.y)

    def restore(self, token):
        self.x, self.y = token

    def abstract_state(self):
        return f"{self.x},{self.y}"


class TestCooperativeSwarm:
    @staticmethod
    def _factory(seed):
        target = _Grid()
        return target, target.clock

    def test_members_share_one_table(self):
        shared = VisitedStateTable()
        swarm = SwarmVerifier(self._factory, members=3, max_depth=6,
                              max_operations=60, shared_table=shared)
        assert swarm.cooperative  # shared_table implies cooperative
        result = swarm.run()
        assert result.union_coverage == set(shared.export_seen())

    def test_member_coverages_are_disjoint(self):
        swarm = SwarmVerifier(self._factory, members=3, max_depth=6,
                              max_operations=60, cooperative=True)
        result = swarm.run()
        for i, first in enumerate(result.members):
            for second in result.members[i + 1:]:
                assert not (first.coverage & second.coverage)

    def test_classic_members_may_overlap(self):
        swarm = SwarmVerifier(self._factory, members=3, max_depth=6,
                              max_operations=60)
        result = swarm.run()
        total = sum(len(member.coverage) for member in result.members)
        assert total > len(result.union_coverage)  # re-explored territory


# ------------------------------------------------------------ reporting --
class TestRunSummary:
    def test_render_includes_duplicate_hit_ratio(self):
        summary = RunSummary(operations=10, unique_states=7, sim_time=0.5,
                             ops_per_second=20.0, stopped_reason="budget",
                             duplicate_hits=3, duplicate_hit_ratio=0.3)
        text = summary.render()
        assert "operations : 10" in text
        assert "dup hits   : 3 (30.0% of visits)" in text
        assert "fsck" not in text

    def test_from_result_reads_table_stats(self):
        mcfs = SPEC.build_mcfs()
        result = mcfs.run_random(max_operations=50, seed=1)
        summary = RunSummary.from_result(result)
        assert summary.operations == 50
        assert summary.duplicate_hits == result.table_stats.duplicate_hits
        assert 0.0 <= summary.duplicate_hit_ratio <= 1.0


class TestMCFSWorkersOption:
    def test_run_random_workers_matches_inline(self):
        distributed = SPEC.build_mcfs().run_random(
            max_operations=400, seed=1, max_depth=8, workers=2, units=4)
        inline = DistributedChecker(SPEC, workers=1).run()
        assert distributed.unique_states == inline.visited_states
        assert distributed.operations == inline.total_operations
        assert distributed.dist.discrepancy_signature() == \
            inline.discrepancy_signature()

    def test_workers_require_a_spec(self):
        from repro.core.mcfs import MCFS

        mcfs = MCFS(SimClock())
        with pytest.raises(ValueError):
            mcfs.run_random(max_operations=10, workers=2)


# ------------------------------------------------------------------- cli --
class TestDistCLI:
    def test_check_workers_flag(self, capsys):
        from repro.cli import main

        code = main(["check", "--fs", "verifs1", "--fs", "verifs2",
                     "--mode", "random", "--max-ops", "400", "--seed", "1",
                     "--workers", "2", "--units", "4", "--unit-depth", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workers    : 2" in out
        assert "speedup" in out

    def test_check_workers_rejects_dfs(self, capsys):
        from repro.cli import main

        code = main(["check", "--fs", "verifs1", "--fs", "verifs2",
                     "--mode", "dfs", "--workers", "2"])
        assert code == 2

    def test_swarm_subcommand(self, capsys):
        from repro.cli import main

        code = main(["swarm", "--fs", "verifs1", "--fs", "verifs2",
                     "--workers", "2", "--units", "4", "--max-ops", "400",
                     "--unit-depth", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "w0" in out and "w1" in out
        assert "merged states" in out
        assert "speedup" in out
