"""Tests for Algorithm 1 and the section 3.4 false-positive workarounds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import SimClock
from repro.core.abstraction import (
    DEFAULT_EXCEPTIONS,
    AbstractionOptions,
    abstract_state,
    collect_entries,
)
from repro.fs import Ext2FileSystemType, XfsFileSystemType
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_RDWR, O_WRONLY
from repro.storage import RAMBlockDevice
from repro.verifs import VeriFS2
from repro.verifs.mounting import mount_verifs


def build_ext2(clock, mountpoint="/mnt/ext2"):
    kernel = Kernel(clock)
    fstype = Ext2FileSystemType()
    device = RAMBlockDevice(256 * 1024, clock=clock)
    fstype.mkfs(device)
    kernel.mount(fstype, device, mountpoint)
    return kernel


def build_xfs(clock, mountpoint="/mnt/xfs"):
    kernel = Kernel(clock)
    fstype = XfsFileSystemType()
    device = RAMBlockDevice(16 * 1024 * 1024, clock=clock)
    fstype.mkfs(device)
    kernel.mount(fstype, device, mountpoint)
    return kernel


def build_verifs2(clock, mountpoint="/mnt/v2"):
    kernel = Kernel(clock)
    mount_verifs(kernel, VeriFS2(clock=clock), mountpoint)
    return kernel


def create(kernel, path, data=b""):
    fd = kernel.open(path, O_CREAT | O_RDWR)
    if data:
        kernel.write(fd, data)
    kernel.close(fd)


class TestHashProperties:
    def test_same_state_same_hash(self, clock):
        kernel = build_ext2(clock)
        create(kernel, "/mnt/ext2/f", b"data")
        assert (abstract_state(kernel, "/mnt/ext2")
                == abstract_state(kernel, "/mnt/ext2"))

    def test_content_change_changes_hash(self, clock):
        kernel = build_ext2(clock)
        create(kernel, "/mnt/ext2/f", b"data")
        before = abstract_state(kernel, "/mnt/ext2")
        fd = kernel.open("/mnt/ext2/f", O_WRONLY)
        kernel.pwrite(fd, b"DATA", 0)
        kernel.close(fd)
        assert abstract_state(kernel, "/mnt/ext2") != before

    def test_mode_change_changes_hash(self, clock):
        kernel = build_ext2(clock)
        create(kernel, "/mnt/ext2/f")
        before = abstract_state(kernel, "/mnt/ext2")
        kernel.chmod("/mnt/ext2/f", 0o600)
        assert abstract_state(kernel, "/mnt/ext2") != before

    def test_atime_is_noise(self, clock):
        """Reads update atime; the abstraction must not see that."""
        kernel = build_ext2(clock)
        create(kernel, "/mnt/ext2/f", b"data")
        before = abstract_state(kernel, "/mnt/ext2")
        clock.charge(100.0, "test")
        fd = kernel.open("/mnt/ext2/f")
        kernel.read(fd, 4)
        kernel.close(fd)
        assert abstract_state(kernel, "/mnt/ext2") == before

    def test_mtime_is_noise(self, clock):
        kernel = build_ext2(clock)
        create(kernel, "/mnt/ext2/f", b"data")
        before = abstract_state(kernel, "/mnt/ext2")
        kernel.utimens("/mnt/ext2/f", 1.0, 99999.0)
        assert abstract_state(kernel, "/mnt/ext2") == before

    def test_rename_changes_hash(self, clock):
        kernel = build_ext2(clock)
        create(kernel, "/mnt/ext2/a", b"data")
        before = abstract_state(kernel, "/mnt/ext2")
        kernel.rename("/mnt/ext2/a", "/mnt/ext2/b")
        assert abstract_state(kernel, "/mnt/ext2") != before

    def test_path_not_just_leaf_name_hashed(self, clock):
        kernel = build_ext2(clock)
        kernel.mkdir("/mnt/ext2/d1")
        kernel.mkdir("/mnt/ext2/d2")
        create(kernel, "/mnt/ext2/d1/f", b"x")
        h1 = abstract_state(kernel, "/mnt/ext2")
        kernel.rename("/mnt/ext2/d1/f", "/mnt/ext2/d2/f")
        assert abstract_state(kernel, "/mnt/ext2") != h1


class TestWorkarounds:
    def test_dir_sizes_ignored_by_default(self, clock):
        """ext2 reports block-multiple dir sizes, xfs entry sums; the
        workaround hides that difference."""
        ext2 = build_ext2(clock)
        xfs = build_xfs(clock)
        for kernel, base in ((ext2, "/mnt/ext2"), (xfs, "/mnt/xfs")):
            kernel.mkdir(base + "/d")
            create(kernel, base + "/d/f", b"same")
        assert (abstract_state(ext2, "/mnt/ext2")
                == abstract_state(xfs, "/mnt/xfs"))

    def test_without_workarounds_dir_sizes_differ(self, clock):
        ext2 = build_ext2(clock)
        xfs = build_xfs(clock)
        for kernel, base in ((ext2, "/mnt/ext2"), (xfs, "/mnt/xfs")):
            kernel.mkdir(base + "/d")
        naive = AbstractionOptions(ignore_dir_sizes=False,
                                   exception_list=frozenset({"lost+found"}))
        assert (abstract_state(ext2, "/mnt/ext2", naive)
                != abstract_state(xfs, "/mnt/xfs", naive))

    def test_exception_list_hides_lost_and_found(self, clock):
        ext2 = build_ext2(clock)
        xfs = build_xfs(clock)
        assert (abstract_state(ext2, "/mnt/ext2")
                == abstract_state(xfs, "/mnt/xfs"))

    def test_without_exception_list_lost_and_found_shows(self, clock):
        ext2 = build_ext2(clock)
        xfs = build_xfs(clock)
        naive = AbstractionOptions(exception_list=frozenset())
        assert (abstract_state(ext2, "/mnt/ext2", naive)
                != abstract_state(xfs, "/mnt/xfs", naive))

    def test_entry_order_normalized(self, clock):
        """ext2 lists in insertion order, xfs in hash order; sorting makes
        the same logical directory hash identically."""
        ext2 = build_ext2(clock)
        xfs = build_xfs(clock)
        names = ["zebra", "alpha", "m1", "m2", "q7"]
        for kernel, base in ((ext2, "/mnt/ext2"), (xfs, "/mnt/xfs")):
            for name in names:
                create(kernel, f"{base}/{name}", b"c")
        listed_ext2 = [e.name for e in ext2.getdents("/mnt/ext2") if e.name != "lost+found"]
        listed_xfs = [e.name for e in xfs.getdents("/mnt/xfs")]
        assert listed_ext2 != listed_xfs  # raw orders genuinely differ
        assert (abstract_state(ext2, "/mnt/ext2")
                == abstract_state(xfs, "/mnt/xfs"))

    def test_default_exceptions_include_equalize_file(self):
        assert ".mcfs_equalize" in DEFAULT_EXCEPTIONS
        assert "lost+found" in DEFAULT_EXCEPTIONS

    def test_without_workarounds_helper(self):
        options = AbstractionOptions().without_workarounds()
        assert not options.ignore_dir_sizes
        assert not options.sort_entries
        assert options.exception_list == frozenset()


class TestEntryRecords:
    def test_collect_entries_sorted_by_path(self, clock):
        kernel = build_ext2(clock)
        kernel.mkdir("/mnt/ext2/z")
        kernel.mkdir("/mnt/ext2/a")
        create(kernel, "/mnt/ext2/z/f")
        records = collect_entries(kernel, "/mnt/ext2")
        paths = [record.path for record in records]
        assert paths == sorted(paths)
        assert "/a" in paths and "/z/f" in paths

    def test_symlink_target_in_content(self, clock):
        kernel = build_ext2(clock)
        kernel.symlink("target-a", "/mnt/ext2/lnk")
        first = collect_entries(kernel, "/mnt/ext2")[0].content_md5
        kernel.unlink("/mnt/ext2/lnk")
        kernel.symlink("target-b", "/mnt/ext2/lnk")
        second = collect_entries(kernel, "/mnt/ext2")[0].content_md5
        assert first != second

    def test_hardlink_nlink_visible(self, clock):
        kernel = build_ext2(clock)
        create(kernel, "/mnt/ext2/a", b"x")
        before = abstract_state(kernel, "/mnt/ext2")
        kernel.link("/mnt/ext2/a", "/mnt/ext2/b")
        after = abstract_state(kernel, "/mnt/ext2")
        assert before != after  # new path + nlink change


@settings(max_examples=15, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["create", "write", "mkdir", "truncate", "unlink"]),
              st.sampled_from(["/f0", "/f1", "/d0"]),
              st.integers(0, 3000)),
    max_size=10,
))
def test_property_equivalent_histories_hash_equal(script):
    """Applying the same operation sequence to ext2 and VeriFS2 always
    yields equal abstract states (or both fail identically) -- this is
    the invariant MCFS's integrity checking is built on."""
    clock = SimClock()
    ext2 = build_ext2(clock)
    verifs = build_verifs2(clock)
    for op, path, size in script:
        for kernel, base in ((ext2, "/mnt/ext2"), (verifs, "/mnt/v2")):
            try:
                if op == "create":
                    kernel.close(kernel.open(base + path, O_CREAT))
                elif op == "write":
                    fd = kernel.open(base + path, O_CREAT | O_WRONLY)
                    kernel.pwrite(fd, b"P" * (size % 600), 0)
                    kernel.close(fd)
                elif op == "mkdir":
                    kernel.mkdir(base + path)
                elif op == "truncate":
                    kernel.truncate(base + path, size)
                else:
                    kernel.unlink(base + path)
            except Exception:
                pass
    assert (abstract_state(ext2, "/mnt/ext2")
            == abstract_state(verifs, "/mnt/v2"))
