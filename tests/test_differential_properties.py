"""The grand differential property: all six file systems are observably
equivalent on the POSIX surface MCFS compares.

Hypothesis generates random operation sequences (valid and invalid alike)
and applies them through the kernel to every file system; the outcomes
must match pairwise at every step and the final abstract states must be
identical.  This is the invariant that makes MCFS's integrity checking
meaningful -- any counterexample here would be either a bug in one
implementation or a missing §3.4 workaround.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import SimClock
from repro.core.abstraction import AbstractionOptions, abstract_state
from repro.errors import FsError
from repro.fs import (
    Ext2FileSystemType,
    Ext4FileSystemType,
    Jffs2FileSystemType,
    XfsFileSystemType,
)
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_WRONLY
from repro.storage import RAMBlockDevice
from repro.storage.mtd import MTDDevice
from repro.verifs import VeriFS1, VeriFS2
from repro.verifs.mounting import mount_verifs

PATHS = ["/f0", "/f1", "/d0", "/d0/x", "/d1"]
OPTIONS = AbstractionOptions()


def build_all(clock):
    """Mount all six file systems, each behind its own kernel."""
    targets = []
    for name in ("ext2", "ext4", "xfs", "jffs2", "verifs1", "verifs2"):
        kernel = Kernel(clock)
        mountpoint = f"/mnt/{name}"
        if name == "ext2":
            fstype, dev = Ext2FileSystemType(), RAMBlockDevice(256 * 1024, clock=clock)
        elif name == "ext4":
            fstype, dev = Ext4FileSystemType(), RAMBlockDevice(256 * 1024, clock=clock)
        elif name == "xfs":
            fstype, dev = XfsFileSystemType(), RAMBlockDevice(16 * 1024 * 1024, clock=clock)
        elif name == "jffs2":
            fstype, dev = Jffs2FileSystemType(), MTDDevice(256 * 1024, clock=clock)
        else:
            fs = VeriFS1(clock=clock) if name == "verifs1" else VeriFS2(clock=clock)
            mount_verifs(kernel, fs, mountpoint, name=name)
            targets.append((name, kernel, mountpoint))
            continue
        fstype.mkfs(dev)
        kernel.mount(fstype, dev, mountpoint)
        targets.append((name, kernel, mountpoint))
    return targets


def apply_operation(kernel, base, op, path, size, fill):
    """Run one operation; return an outcome key (comparable across fs)."""
    try:
        if op == "create":
            kernel.close(kernel.open(base + path, O_CREAT, 0o644))
            return ("ok", None)
        if op == "write":
            fd = kernel.open(base + path, O_CREAT | O_WRONLY)
            try:
                written = kernel.pwrite(fd, bytes([fill]) * size, size // 3)
            finally:
                kernel.close(fd)
            return ("ok", written)
        if op == "truncate":
            kernel.truncate(base + path, size)
            return ("ok", None)
        if op == "mkdir":
            kernel.mkdir(base + path)
            return ("ok", None)
        if op == "rmdir":
            kernel.rmdir(base + path)
            return ("ok", None)
        if op == "unlink":
            kernel.unlink(base + path)
            return ("ok", None)
        if op == "chmod":
            kernel.chmod(base + path, 0o640)
            return ("ok", None)
        raise AssertionError(op)
    except FsError as error:
        return ("err", error.code)


operation_strategy = st.tuples(
    st.sampled_from(["create", "write", "truncate", "mkdir", "rmdir",
                     "unlink", "chmod"]),
    st.sampled_from(PATHS),
    st.integers(min_value=0, max_value=4000),
    st.integers(min_value=0, max_value=255),
)


@settings(max_examples=20, deadline=None)
@given(st.lists(operation_strategy, max_size=14))
def test_all_filesystems_observably_equivalent(script):
    clock = SimClock()
    targets = build_all(clock)
    for step, (op, path, size, fill) in enumerate(script):
        outcomes = {
            name: apply_operation(kernel, base, op, path, size, fill)
            for name, kernel, base in targets
        }
        distinct = set(outcomes.values())
        assert len(distinct) == 1, (
            f"step {step} {op}({path}, {size}): outcomes diverge: {outcomes}"
        )
    hashes = {
        name: abstract_state(kernel, base, OPTIONS)
        for name, kernel, base in targets
    }
    assert len(set(hashes.values())) == 1, f"final states diverge: {hashes}"


@settings(max_examples=10, deadline=None)
@given(st.lists(operation_strategy, max_size=12), st.integers(0, 11))
def test_block_filesystems_consistent_after_crash_free_remount(script, cut):
    """Remounting at any point must preserve state and pass fsck."""
    clock = SimClock()
    kernel = Kernel(clock)
    fstype = Ext4FileSystemType()
    device = RAMBlockDevice(256 * 1024, clock=clock)
    fstype.mkfs(device)
    kernel.mount(fstype, device, "/mnt/fs")
    for step, (op, path, size, fill) in enumerate(script):
        apply_operation(kernel, "/mnt/fs", op, path, size, fill)
        if step == cut:
            before = abstract_state(kernel, "/mnt/fs", OPTIONS)
            kernel.remount("/mnt/fs")
            assert abstract_state(kernel, "/mnt/fs", OPTIONS) == before
            assert kernel.mount_at("/mnt/fs").fs.check_consistency() == []


@settings(max_examples=10, deadline=None)
@given(st.lists(operation_strategy, max_size=10))
def test_verifs_checkpoint_restore_roundtrip_any_history(script):
    """For any history, VeriFS2 restore reproduces the abstract state."""
    from repro.verifs import IOCTL_CHECKPOINT, IOCTL_RESTORE

    clock = SimClock()
    kernel = Kernel(clock)
    fs = VeriFS2(clock=clock)
    mount_verifs(kernel, fs, "/mnt/v")
    fd = kernel.open("/mnt/v")
    kernel.ioctl(fd, IOCTL_CHECKPOINT, 1)
    kernel.close(fd)
    reference = abstract_state(kernel, "/mnt/v", OPTIONS)
    for op, path, size, fill in script:
        apply_operation(kernel, "/mnt/v", op, path, size, fill)
    fd = kernel.open("/mnt/v")
    kernel.ioctl(fd, IOCTL_RESTORE, 1)
    kernel.close(fd)
    assert abstract_state(kernel, "/mnt/v", OPTIONS) == reference
