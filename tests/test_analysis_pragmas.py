"""Pragma machinery edge cases (repro.analysis.pragmas).

The machinery is shared between the determinism linter and the
whole-program passes, so the edge cases are tested once here: pragmas
on multi-line statements, stacked pragmas in one comment, pragma-shaped
text in strings, and the ``active_rules`` scoping that keeps partial
runs from flagging each other's allowlists.
"""

from __future__ import annotations

import textwrap

from repro.analysis.findings import Finding
from repro.analysis.lint import lint_source
from repro.analysis.pragmas import apply_pragmas, collect_pragmas


def lint(snippet: str):
    return lint_source(textwrap.dedent(snippet), "snippet.py")


def invariants(snippet: str):
    return [f.invariant for f in lint(snippet)]


def finding(invariant: str, line: int, end_line=None, severity="error"):
    detail = {"line": line}
    if end_line is not None:
        detail["end_line"] = end_line
    return Finding(checker="test", invariant=invariant, message="x",
                   severity=severity, location=f"snippet.py:{line}",
                   detail=detail)


# -------------------------------------------------------- collect_pragmas --
def test_collect_maps_line_to_rule_and_justification():
    pragmas = collect_pragmas(
        "x = 1  # det-lint: allow[wall-clock] frozen fixture\n")
    assert pragmas == {1: {"wall-clock": "frozen fixture"}}


def test_stacked_pragmas_in_one_comment():
    pragmas = collect_pragmas(
        "x = f()  # det-lint: allow[set-pop] empty ok"
        "  # det-lint: allow[unordered-iteration] one elem\n")
    assert pragmas[1] == {"set-pop": "empty ok",
                          "unordered-iteration": "one elem"}


def test_pragma_in_string_is_not_collected():
    pragmas = collect_pragmas(
        's = "# det-lint: allow[wall-clock] not a comment"\n'
        'f = f"# det-lint: allow[set-pop] {s}"\n')
    assert pragmas == {}


# ------------------------------------------------- multi-line statements --
def test_pragma_on_closing_line_of_multiline_statement():
    assert invariants("""
        import time
        t = time.time(
        )  # det-lint: allow[wall-clock] span reaches the closing paren
    """) == []


def test_pragma_on_opening_line_of_multiline_statement():
    assert invariants("""
        import time
        t = time.time(  # det-lint: allow[wall-clock] opening line works too
        )
    """) == []


def test_span_matching_uses_end_line():
    source = "x = (\n    1\n)\n"
    pragmas_line = 3
    suppressed = apply_pragmas(
        [finding("wall-clock", 1, end_line=3)],
        "x = (\n    1\n)  # det-lint: allow[wall-clock] spans lines 1-3\n",
        "snippet.py")
    assert suppressed == []
    # without the end_line the span is one line and the pragma misses
    missed = apply_pragmas(
        [finding("wall-clock", 1)],
        source + "# det-lint: allow[wall-clock] wrong line\n",
        "snippet.py")
    assert [f.invariant for f in missed] == ["wall-clock", "unused-pragma"]


# --------------------------------------------------- strings vs comments --
def test_fstring_pragma_neither_suppresses_nor_bare_flags():
    assert invariants('''
        def f(x):
            return f"# det-lint: allow[wall-clock] {x}"
    ''') == []


def test_bare_pragma_in_comment_after_fstring_line():
    assert invariants("""
        import time
        t = time.time()  # det-lint: allow[wall-clock]
    """) == ["bare-pragma"]


def test_stacked_pragma_one_bare_one_justified():
    findings = lint("""
        def f(items):
            seen = set(items)
            for i in seen:  # det-lint: allow[unordered-iteration] ok justified  # det-lint: allow[set-pop]
                pass
    """)
    # the justified pragma suppresses; the stacked bare one matches no
    # set-pop finding, so it is unused (not bare: bare needs a match)
    assert [f.invariant for f in findings] == ["unused-pragma"]


# -------------------------------------------------------- active_rules ----
def test_inactive_rule_pragma_is_left_alone():
    suppressed = apply_pragmas(
        [], "x = 1  # det-lint: allow[restore-blind] handled elsewhere\n",
        "snippet.py", active_rules={"wall-clock"})
    assert suppressed == []


def test_active_rule_pragma_unused_is_flagged():
    flagged = apply_pragmas(
        [], "x = 1  # det-lint: allow[restore-blind] stale reason\n",
        "snippet.py", active_rules={"restore-blind"})
    assert [f.invariant for f in flagged] == ["unused-pragma"]


def test_determinism_lint_ignores_static_pass_pragmas():
    # a restore-blind pragma must not be "unused" during a
    # determinism-only lint: that pass never checks the rule
    assert invariants("""
        class C:
            def f(self):
                self.cache = {}  # det-lint: allow[restore-blind] paired surface
    """) == []
