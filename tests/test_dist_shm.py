"""The sharded shared-memory data plane: determinism matrix + crash safety.

The shm plane reroutes visited-state traffic from coordinator RPC into
single-writer shared-memory shard segments.  That must never change
*what a campaign finds* -- so the load-bearing properties are:

* **plane equivalence** -- byte-identical visited-set fingerprints and
  merged results between the shm and RPC planes, for every worker
  count, shard count, and store kind;
* **crash safety** -- a SIGKILLed worker's segment survives in the
  coordinator's address space, recovery reproduces the baseline result,
  and no ``/dev/shm`` segment outlives the run;
* **wire hygiene** -- raw segment handles never cross the pipe (workers
  reattach by name), and a stray data-plane reply in the work-grant
  handshake must not desynchronise the lease protocol.
"""

import dataclasses
import multiprocessing
import os
import threading

import pytest

from repro.dist import CheckSpec, DistributedChecker, WorkerConfig
from repro.dist.protocol import (
    Hello,
    NoMoreWork,
    PackedVisitedReply,
    UnitDone,
    WorkGrant,
    WorkRequest,
)
from repro.dist.worker import worker_main
from repro.mc.hashtable import VisitedStateTable
from repro.mc.shardmem import (
    ShardFull,
    ShardLayout,
    ShardSegment,
    ShardedStore,
    shared_memory_available,
)

SHM_SUPPORTED = (shared_memory_available()
                 and "fork" in multiprocessing.get_all_start_methods())

needs_shm = pytest.mark.skipif(
    not SHM_SUPPORTED,
    reason="needs multiprocessing.shared_memory and the fork start method")

SPEC = CheckSpec(
    filesystems=("verifs1", "verifs2"),
    units=4,
    base_seed=7,
    unit_operations=60,
    max_depth=6,
)

STORES = ("exact", "hc", "bitstate")

#: chaos ticks must fire well inside a 60-op unit
CHAOS_CONFIG = WorkerConfig(heartbeat_operations=20, batch_size=8)


def run_fleet(plane, workers, shards=4, store="exact", **kwargs):
    spec = dataclasses.replace(SPEC, data_plane=plane, shards=shards,
                               state_store=store)
    return DistributedChecker(spec, workers=workers, **kwargs).run()


def outcome(dist):
    """Everything that must be invariant across planes and fleets."""
    return (
        dist.visited_states,
        dist.total_operations,
        dist.discrepancy_signature(),
        dist.table.visited_fingerprint(),
        sorted((unit.index, unit.operations, unit.unique_states)
               for unit in dist.unit_results),
    )


@pytest.fixture(scope="module")
def rpc_baselines():
    """The workers=1 RPC reference run, one per store kind."""
    return {store: run_fleet("rpc", workers=1, store=store)
            for store in STORES}


# ------------------------------------------------------ determinism matrix --
@needs_shm
class TestPlaneEquivalence:
    @pytest.mark.parametrize("store", STORES)
    @pytest.mark.parametrize("workers", (1, 2, 4))
    @pytest.mark.parametrize("shards", (1, 2, 4))
    def test_shm_matches_rpc_baseline(self, rpc_baselines, store, workers,
                                      shards):
        fleet = run_fleet("shm", workers=workers, shards=shards, store=store)
        assert fleet.data_plane == "shm"
        assert outcome(fleet) == outcome(rpc_baselines[store])

    def test_auto_resolves_to_shm_here(self):
        fleet = run_fleet("auto", workers=2)
        assert fleet.data_plane == "shm"


class TestPlaneGating:
    def test_tiered_store_cannot_force_shm(self):
        # the tiered store demotes entries between tiers; its table is
        # not representable as fixed-slot shard segments
        with pytest.raises(ValueError):
            run_fleet("shm", workers=2, store="tiered")

    def test_tiered_store_degrades_auto_to_rpc(self, rpc_baselines):
        fleet = run_fleet("auto", workers=2, store="tiered")
        assert fleet.data_plane == "rpc"

    def test_rpc_can_always_be_forced(self, rpc_baselines):
        fleet = run_fleet("rpc", workers=2)
        assert fleet.data_plane == "rpc"
        assert outcome(fleet) == outcome(rpc_baselines["exact"])


# ----------------------------------------------------------- crash safety --
@needs_shm
class TestCrashSafety:
    def _shm_entries(self):
        try:
            return set(os.listdir("/dev/shm"))
        except OSError:
            return set()

    def test_sigkill_recovery_matches_baseline_and_leaks_nothing(
            self, rpc_baselines):
        before = self._shm_entries()
        fleet = run_fleet(
            "shm", workers=2, config=CHAOS_CONFIG,
            chaos_kill_after={"w1": 50},  # SIGKILL mid-unit
            lease_timeout=3.0,
        )
        assert outcome(fleet) == outcome(rpc_baselines["exact"])
        assert fleet.recovered_units >= 1
        leaked = self._shm_entries() - before
        assert not leaked, f"segments outlived the run: {sorted(leaked)}"

    def test_clean_run_leaks_nothing(self):
        before = self._shm_entries()
        run_fleet("shm", workers=2)
        leaked = self._shm_entries() - before
        assert not leaked, f"segments outlived the run: {sorted(leaked)}"


# ------------------------------------------------------ handshake protocol --
class TestGrantHandshake:
    def test_stray_packed_reply_does_not_duplicate_work_request(self):
        """Regression: a data-plane reply arriving between WorkRequest
        and WorkGrant must be consumed in place.  Falling through the
        skip loop re-sent WorkRequest, the coordinator granted a second
        unit over the first one's lease, and the orphaned unit livelocked
        the campaign (never queued, leased, or resulted again)."""
        parent, child = multiprocessing.Pipe(duplex=True)
        unit = SPEC.work_units()[0]
        worker = threading.Thread(
            target=worker_main, args=(child, SPEC, "w0", WorkerConfig()),
            daemon=True)
        worker.start()
        try:
            assert isinstance(parent.recv(), Hello)
            assert isinstance(parent.recv(), WorkRequest)
            # a reply to an (imaginary) earlier batch lands first ...
            parent.send(PackedVisitedReply(sequence=99, count=0,
                                           flag_bits=b""))
            # ... and only then the grant the worker is waiting for
            parent.send(WorkGrant(unit))
            requests = 0
            while True:
                message = parent.recv()
                if isinstance(message, WorkRequest):
                    requests += 1
                elif isinstance(message, UnitDone):
                    assert message.result.index == unit.index
                    break
            assert requests == 0, "stray reply triggered duplicate requests"
            assert isinstance(parent.recv(), WorkRequest)
            parent.send(NoMoreWork())
            worker.join(timeout=30)
            assert not worker.is_alive()
        finally:
            parent.close()


# ------------------------------------------------- shard primitives (no shm) --
class TestShardSegment:
    def layout(self, **kwargs):
        defaults = dict(kind="exact", shards=4, slots_per_shard=8)
        defaults.update(kwargs)
        return ShardLayout(**defaults)

    def segment(self, layout):
        return ShardSegment(layout, buffer=bytearray(layout.segment_bytes))

    def test_insert_then_contains(self):
        layout = self.layout()
        segment = self.segment(layout)
        is_new, expand = segment.insert(layout.key_of("af" * 16), depth=2)
        assert (is_new, expand) == (True, True)
        assert segment.contains(layout.key_of("af" * 16))
        assert not segment.contains(layout.key_of("be" * 16))

    def test_shallower_revisit_reexpands(self):
        layout = self.layout()
        segment = self.segment(layout)
        key = layout.key_of("af" * 16)
        segment.insert(key, depth=5)
        is_new, expand = segment.insert(key, depth=2)
        assert (is_new, expand) == (False, True)
        assert segment.depth_of(key) == 2

    def test_full_shard_raises(self):
        layout = self.layout(shards=1, slots_per_shard=8)
        segment = self.segment(layout)
        with pytest.raises(ShardFull):
            for value in range(64):
                segment.insert(layout.key_of(f"{value:032x}"), depth=0)

    def test_entries_survive_reattach_via_buffer(self):
        layout = self.layout()
        backing = bytearray(layout.segment_bytes)
        writer = ShardSegment(layout, buffer=backing)
        keys = [layout.key_of(f"{value:032x}") for value in range(1, 6)]
        for depth, key in enumerate(keys):
            writer.insert(key, depth)
        reader = ShardSegment(layout, buffer=backing)
        assert sorted(key for key, _ in reader.entries()) == sorted(keys)


class TestShardedStore:
    def test_visit_semantics_match_exact_table(self):
        import random

        rng = random.Random(11)
        hashes = [f"{rng.getrandbits(128):032x}" for _ in range(96)]
        sharded = ShardedStore(store="exact", shards=4)
        exact = VisitedStateTable()
        for index, state_hash in enumerate(hashes * 2):
            depth = index % 5
            assert (sharded.visit(state_hash, depth)
                    == exact.visit(state_hash, depth))
        assert len(sharded) == len(exact)
