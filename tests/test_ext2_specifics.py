"""SimExt2-specific behaviour: layout, dir sizes, lost+found, fsck."""

import pytest

from repro.clock import SimClock
from repro.errors import EINVAL, ENOSPC, FsError
from repro.fs.ext2 import Ext2FileSystemType, Ext2Geometry, Ext2Inode, INODE_SIZE, MountedExt2
from repro.kernel import Kernel
from repro.kernel.fdtable import O_CREAT, O_RDWR, O_WRONLY
from repro.storage import RAMBlockDevice


@pytest.fixture
def fx(clock):
    kernel = Kernel(clock)
    fstype = Ext2FileSystemType()
    device = RAMBlockDevice(256 * 1024, clock=clock, name="ram0")
    fstype.mkfs(device)
    kernel.mount(fstype, device, "/mnt/ext2")
    return kernel, device, fstype


class TestLayout:
    def test_geometry_regions_do_not_overlap(self):
        geo = Ext2Geometry(256 * 1024, 1024)
        assert geo.block_bitmap_start == 1
        assert geo.inode_bitmap_start > geo.block_bitmap_start
        assert geo.inode_table_start > geo.inode_bitmap_start
        assert geo.first_data_block > geo.inode_table_start
        assert geo.first_data_block < geo.block_count

    def test_tiny_device_rejected(self):
        with pytest.raises(FsError):
            Ext2Geometry(4096, 1024)

    def test_inode_record_roundtrip(self):
        inode = Ext2Inode(7)
        inode.mode = 0o100644
        inode.size = 12345
        inode.nlink = 2
        inode.direct[3] = 99
        inode.indirect = 120
        restored = Ext2Inode.unpack(7, inode.pack())
        assert restored.mode == inode.mode
        assert restored.size == inode.size
        assert restored.direct == inode.direct
        assert restored.indirect == 120
        assert len(inode.pack()) == INODE_SIZE

    def test_mkfs_rejects_undersized_device(self, clock):
        fstype = Ext2FileSystemType()
        with pytest.raises(FsError):
            fstype.mkfs(RAMBlockDevice(32 * 1024, clock=clock))

    def test_mount_rejects_wrong_magic(self, clock):
        device = RAMBlockDevice(256 * 1024, clock=clock)
        with pytest.raises(FsError) as excinfo:
            MountedExt2(device, 1024)
        assert excinfo.value.code == EINVAL


class TestObservableQuirks:
    def test_dir_size_is_block_multiple(self, fx):
        kernel, _, _ = fx
        kernel.mkdir("/mnt/ext2/d")
        for i in range(5):
            kernel.close(kernel.open(f"/mnt/ext2/d/file{i}", O_CREAT))
        size = kernel.stat("/mnt/ext2/d").st_size
        assert size % 1024 == 0
        assert size >= 1024

    def test_lost_and_found_exists(self, fx):
        kernel, _, _ = fx
        attrs = kernel.stat("/mnt/ext2/lost+found")
        assert attrs.is_dir
        assert "lost+found" in [e.name for e in kernel.getdents("/mnt/ext2")]

    def test_special_paths_declared(self):
        assert "/lost+found" in Ext2FileSystemType().special_paths

    def test_getdents_insertion_order(self, fx):
        kernel, _, _ = fx
        for name in ("zebra", "alpha", "middle"):
            kernel.close(kernel.open(f"/mnt/ext2/{name}", O_CREAT))
        names = [e.name for e in kernel.getdents("/mnt/ext2")]
        # lost+found was inserted first by mkfs, then our three in order
        assert names.index("zebra") < names.index("alpha") < names.index("middle")


class TestIndirectBlocks:
    def test_file_larger_than_direct_pointers(self, fx):
        kernel, _, _ = fx
        payload = bytes(range(256)) * 64  # 16 KB > 12 direct 1K blocks
        fd = kernel.open("/mnt/ext2/big", O_CREAT | O_RDWR)
        kernel.write(fd, payload)
        kernel.lseek(fd, 0)
        assert kernel.read(fd, len(payload)) == payload
        kernel.close(fd)
        kernel.remount("/mnt/ext2")
        fd = kernel.open("/mnt/ext2/big")
        assert kernel.read(fd, len(payload)) == payload
        kernel.close(fd)

    def test_truncate_releases_indirect_block(self, fx):
        kernel, _, _ = fx
        fd = kernel.open("/mnt/ext2/big", O_CREAT | O_WRONLY)
        kernel.write(fd, b"x" * 16384)
        kernel.close(fd)
        free_before = kernel.statfs("/mnt/ext2").blocks_free
        kernel.truncate("/mnt/ext2/big", 0)
        free_after = kernel.statfs("/mnt/ext2").blocks_free
        assert free_after - free_before >= 16  # data + indirect released

    def test_file_size_limit_efbig(self, fx):
        kernel, _, _ = fx
        fs = kernel.mount_at("/mnt/ext2").fs
        max_bytes = fs.max_file_blocks * 1024
        fd = kernel.open("/mnt/ext2/f", O_CREAT | O_WRONLY)
        with pytest.raises(FsError):
            kernel.pwrite(fd, b"x", max_bytes + 10)
        kernel.close(fd)


class TestENOSPC:
    def test_filling_device_raises_enospc(self, fx):
        kernel, _, _ = fx
        with pytest.raises(FsError) as excinfo:
            for i in range(1000):
                fd = kernel.open(f"/mnt/ext2/fill{i}", O_CREAT | O_WRONLY)
                kernel.write(fd, b"z" * 4096)
                kernel.close(fd)
        assert excinfo.value.code == ENOSPC

    def test_fs_usable_after_enospc(self, fx):
        kernel, _, _ = fx
        try:
            for i in range(1000):
                fd = kernel.open(f"/mnt/ext2/fill{i}", O_CREAT | O_WRONLY)
                kernel.write(fd, b"z" * 4096)
                kernel.close(fd)
        except FsError:
            pass
        # deleting makes room again
        kernel.unlink("/mnt/ext2/fill0")
        fd = kernel.open("/mnt/ext2/after", O_CREAT | O_WRONLY)
        kernel.write(fd, b"ok")
        kernel.close(fd)
        assert kernel.stat("/mnt/ext2/after").st_size == 2


class TestFsck:
    def test_clean_fs_passes(self, fx):
        kernel, _, _ = fx
        kernel.mkdir("/mnt/ext2/d")
        kernel.close(kernel.open("/mnt/ext2/d/f", O_CREAT))
        assert kernel.mount_at("/mnt/ext2").fs.check_consistency() == []

    def test_detects_zeroed_inode(self, fx):
        kernel, device, fstype = fx
        kernel.close(kernel.open("/mnt/ext2/f", O_CREAT))
        fs = kernel.mount_at("/mnt/ext2").fs
        ino = kernel.stat("/mnt/ext2/f").st_ino
        # corrupt: zero the inode record on disk behind the fs's back
        fs.sync()
        block, offset = fs._inode_location(ino)
        raw = bytearray(device.read_block(block, 1024))
        raw[offset : offset + INODE_SIZE] = b"\x00" * INODE_SIZE
        device.write_block(block, 1024, bytes(raw))
        kernel.remount("/mnt/ext2")
        problems = kernel.mount_at("/mnt/ext2").fs.check_consistency()
        assert any("zeroed" in p for p in problems)

    def test_detects_bitmap_inconsistency(self, fx):
        kernel, _, _ = fx
        kernel.close(kernel.open("/mnt/ext2/f", O_CREAT))
        fd = kernel.open("/mnt/ext2/f", O_WRONLY)
        kernel.write(fd, b"x" * 1024)
        kernel.close(fd)
        fs = kernel.mount_at("/mnt/ext2").fs
        ino = kernel.stat("/mnt/ext2/f").st_ino
        data_block = fs._load_inode(ino).direct[0]
        fs.block_bitmap.clear(data_block)  # lie: mark in-use block free
        problems = fs.check_consistency()
        assert any("free in bitmap" in p for p in problems)
