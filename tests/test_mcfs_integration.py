"""End-to-end MCFS tests: the paper's headline behaviours.

Covers: clean cross-file-system comparisons (no false positives), the
discovery of all four historical VeriFS bugs, the section 3.2 corruption
with the naive strategy, report precision and replayability, and swarm
verification.
"""

import pytest

from repro import (
    Ext2FileSystemType,
    Ext4FileSystemType,
    Jffs2FileSystemType,
    MCFS,
    MCFSOptions,
    MTDDevice,
    NaiveDiskStrategy,
    ParameterPool,
    RAMBlockDevice,
    SimClock,
    VeriFS1,
    VeriFS2,
    VeriFSBug,
    XfsFileSystemType,
)
from repro.core.engine import MCFSTarget
from repro.core.report import replay
from repro.mc.swarm import SwarmVerifier


def make_mcfs(clock=None, **options_kw):
    clock = clock or SimClock()
    options_kw.setdefault("include_extended_operations", False)
    return MCFS(clock, MCFSOptions(**options_kw)), clock


class TestCleanComparisons:
    """No false positives: every clean pair must exhaust without report."""

    def test_ext2_vs_ext4(self):
        mcfs, clock = make_mcfs()
        mcfs.add_block_filesystem("ext2", Ext2FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock))
        mcfs.add_block_filesystem("ext4", Ext4FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock))
        result = mcfs.run_dfs(max_depth=2, max_operations=2000)
        assert not result.found_discrepancy, str(result.report)
        assert result.stats.stopped_reason == "state space exhausted"

    def test_ext4_vs_xfs(self):
        mcfs, clock = make_mcfs()
        mcfs.add_block_filesystem("ext4", Ext4FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock))
        mcfs.add_block_filesystem("xfs", XfsFileSystemType(),
                                  RAMBlockDevice(16 * 1024 * 1024, clock=clock))
        result = mcfs.run_dfs(max_depth=2, max_operations=2000)
        assert not result.found_discrepancy, str(result.report)

    def test_ext4_vs_jffs2(self):
        mcfs, clock = make_mcfs()
        mcfs.add_block_filesystem("ext4", Ext4FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock))
        mcfs.add_block_filesystem("jffs2", Jffs2FileSystemType(),
                                  MTDDevice(256 * 1024, clock=clock))
        result = mcfs.run_dfs(max_depth=2, max_operations=2000)
        assert not result.found_discrepancy, str(result.report)

    def test_verifs1_vs_verifs2(self):
        mcfs, clock = make_mcfs()
        mcfs.add_verifs("verifs1", VeriFS1())
        mcfs.add_verifs("verifs2", VeriFS2())
        result = mcfs.run_dfs(max_depth=3, max_operations=5000)
        assert not result.found_discrepancy, str(result.report)
        assert result.stats.stopped_reason == "state space exhausted"

    def test_three_way_comparison(self):
        """More than two file systems at once (the paper's future work)."""
        mcfs, clock = make_mcfs()
        mcfs.add_block_filesystem("ext2", Ext2FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock))
        mcfs.add_block_filesystem("ext4", Ext4FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock))
        mcfs.add_verifs("verifs2", VeriFS2())
        result = mcfs.run_dfs(max_depth=2, max_operations=1500)
        assert not result.found_discrepancy, str(result.report)

    def test_random_walk_clean(self):
        mcfs, clock = make_mcfs()
        mcfs.add_verifs("verifs1", VeriFS1())
        mcfs.add_verifs("verifs2", VeriFS2())
        result = mcfs.run_random(max_operations=400, seed=11)
        assert not result.found_discrepancy, str(result.report)
        assert result.operations == 400


class TestBugDiscovery:
    """MCFS finds each historical bug and reports it precisely."""

    def test_truncate_stale_data_found(self):
        mcfs, clock = make_mcfs()
        mcfs.add_block_filesystem("ext4", Ext4FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock))
        mcfs.add_verifs("verifs1", VeriFS1(bugs=[VeriFSBug.TRUNCATE_STALE_DATA]))
        result = mcfs.run_dfs(max_depth=4, max_operations=300_000)
        assert result.found_discrepancy
        assert result.report.kind == "state"
        assert result.report.failing_operation.operation.name == "truncate"

    def test_missing_invalidation_found(self):
        mcfs, clock = make_mcfs()
        mcfs.add_block_filesystem("ext4", Ext4FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock))
        mcfs.add_verifs("verifs1", VeriFS1(bugs=[VeriFSBug.MISSING_CACHE_INVALIDATION]))
        result = mcfs.run_dfs(max_depth=3, max_operations=300_000)
        assert result.found_discrepancy

    def test_write_hole_found(self):
        mcfs, clock = make_mcfs()
        mcfs.add_verifs("verifs1", VeriFS1())
        mcfs.add_verifs("verifs2", VeriFS2(bugs=[VeriFSBug.WRITE_HOLE_STALE]))
        result = mcfs.run_dfs(max_depth=3, max_operations=300_000)
        assert result.found_discrepancy
        assert result.report.kind == "state"
        assert result.report.failing_operation.operation.name == "write_file"

    def test_size_update_bug_found(self):
        mcfs, clock = make_mcfs()
        mcfs.add_verifs("verifs1", VeriFS1())
        mcfs.add_verifs("verifs2", VeriFS2(bugs=[VeriFSBug.SIZE_UPDATE_ON_CAPACITY_ONLY]))
        result = mcfs.run_dfs(max_depth=3, max_operations=300_000)
        assert result.found_discrepancy

    def test_fixed_versions_pass_the_same_search(self):
        """After 'fixing' the bugs (no flags), the same searches are clean."""
        mcfs, clock = make_mcfs()
        mcfs.add_verifs("verifs1", VeriFS1())
        mcfs.add_verifs("verifs2", VeriFS2())
        result = mcfs.run_dfs(max_depth=3, max_operations=300_000)
        assert not result.found_discrepancy


class TestReports:
    def _buggy_run(self):
        mcfs, clock = make_mcfs()
        mcfs.add_verifs("verifs1", VeriFS1())
        mcfs.add_verifs("verifs2", VeriFS2(bugs=[VeriFSBug.SIZE_UPDATE_ON_CAPACITY_ONLY]))
        return mcfs, mcfs.run_dfs(max_depth=3, max_operations=100_000)

    def test_report_carries_operation_log(self):
        _, result = self._buggy_run()
        report = result.report
        assert report.operation_log
        assert all(set(l.outcomes) == {"verifs1", "verifs2"}
                   for l in report.operation_log)

    def test_report_renders_human_readable(self):
        _, result = self._buggy_run()
        text = str(result.report)
        assert "MCFS discrepancy" in text
        assert "operation sequence" in text
        assert "verifs1" in text and "verifs2" in text

    def test_report_has_state_diff(self):
        _, result = self._buggy_run()
        assert result.report.state_diff is not None
        assert not result.report.state_diff.empty

    def test_replay_reproduces_on_fresh_filesystems(self):
        mcfs, result = self._buggy_run()
        operations = result.report.operations()
        # replay on FRESH instances with the same bug: discrepancy reappears
        clock = SimClock()
        fresh = MCFS(clock, MCFSOptions(include_extended_operations=False))
        fresh.add_verifs("verifs1", VeriFS1())
        fresh.add_verifs("verifs2", VeriFS2(bugs=[VeriFSBug.SIZE_UPDATE_ON_CAPACITY_ONLY]))
        engine = fresh.engine()
        replay(operations, engine.futs, engine.catalog)
        options = fresh.options.abstraction
        states = [fut.abstract_state(options) for fut in engine.futs]
        assert states[0] != states[1]

    def test_replay_on_fixed_filesystems_is_clean(self):
        mcfs, result = self._buggy_run()
        operations = result.report.operations()
        clock = SimClock()
        fixed = MCFS(clock, MCFSOptions(include_extended_operations=False))
        fixed.add_verifs("verifs1", VeriFS1())
        fixed.add_verifs("verifs2", VeriFS2())
        engine = fixed.engine()
        replay(operations, engine.futs, engine.catalog)
        options = fixed.options.abstraction
        states = [fut.abstract_state(options) for fut in engine.futs]
        assert states[0] == states[1]


class TestCacheIncoherency:
    """Section 3.2 reproduced end to end."""

    PRESSURE_POOL = ParameterPool(
        file_paths=("/f0", "/f1", "/f2", "/f3", "/d0/f4", "/d1/f5"),
        dir_paths=("/d0", "/d1", "/d2"),
        write_offsets=(0,),
        write_sizes=(512, 3000),
        truncate_sizes=(0, 100),
    )

    def _fstypes(self):
        return (
            Ext2FileSystemType(cache_blocks=6, inode_cache_capacity=6),
            Ext4FileSystemType(cache_blocks=6, inode_cache_capacity=6),
        )

    def test_naive_disk_restore_corrupts(self):
        mcfs, clock = make_mcfs(pool=self.PRESSURE_POOL, consistency_check_every=1)
        ext2, ext4 = self._fstypes()
        mcfs.add_block_filesystem("ext2", ext2, RAMBlockDevice(256 * 1024, clock=clock),
                                  strategy=NaiveDiskStrategy())
        mcfs.add_block_filesystem("ext4", ext4, RAMBlockDevice(256 * 1024, clock=clock),
                                  strategy=NaiveDiskStrategy())
        result = mcfs.run_dfs(max_depth=4, max_operations=50_000)
        assert result.found_discrepancy
        assert result.report.kind in ("corruption", "state")

    def test_remount_strategy_is_immune(self):
        mcfs, clock = make_mcfs(pool=self.PRESSURE_POOL, consistency_check_every=10)
        ext2, ext4 = self._fstypes()
        mcfs.add_block_filesystem("ext2", ext2, RAMBlockDevice(256 * 1024, clock=clock))
        mcfs.add_block_filesystem("ext4", ext4, RAMBlockDevice(256 * 1024, clock=clock))
        result = mcfs.run_dfs(max_depth=2, max_operations=2000)
        assert not result.found_discrepancy, str(result.report)


class TestEqualizationIntegration:
    def test_enabled_by_option(self):
        mcfs, clock = make_mcfs(equalize_free_space=True)
        mcfs.add_block_filesystem("ext2", Ext2FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock))
        mcfs.add_block_filesystem("ext4", Ext4FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock))
        result = mcfs.run_dfs(max_depth=1, max_operations=200)
        assert not result.found_discrepancy
        free = [fut.statfs().bytes_free for fut in mcfs.futs]
        assert abs(free[0] - free[1]) <= 8192


class TestSwarm:
    def _factory(self, bug):
        def factory(seed):
            clock = SimClock()
            mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False))
            mcfs.add_verifs("verifs1", VeriFS1())
            mcfs.add_verifs("verifs2", VeriFS2(bugs=[bug] if bug else []))
            return MCFSTarget(mcfs.engine()), clock
        return factory

    def test_swarm_union_coverage_beats_single_member(self):
        swarm = SwarmVerifier(self._factory(None), members=4,
                              max_depth=8, max_operations=250)
        result = swarm.run()
        best_single = max(len(member.coverage) for member in result.members)
        assert len(result.union_coverage) >= best_single

    def test_swarm_parallel_time_less_than_sequential(self):
        swarm = SwarmVerifier(self._factory(None), members=3,
                              max_depth=6, max_operations=150)
        result = swarm.run()
        assert result.parallel_time < result.sequential_time

    def test_swarm_finds_bug_and_stops(self):
        swarm = SwarmVerifier(self._factory(VeriFSBug.WRITE_HOLE_STALE),
                              members=6, max_depth=10, max_operations=5000)
        result = swarm.run()
        assert result.first_violation() is not None
        assert len(result.members) <= 6

    def test_dfs_mode(self):
        swarm = SwarmVerifier(self._factory(None), members=2,
                              max_depth=2, max_operations=300, mode="dfs")
        result = swarm.run()
        assert result.total_operations > 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            SwarmVerifier(self._factory(None), members=0)
        with pytest.raises(ValueError):
            SwarmVerifier(self._factory(None), mode="bogus")


class TestMCFSConfiguration:
    def test_needs_two_filesystems(self):
        mcfs, clock = make_mcfs()
        mcfs.add_verifs("only", VeriFS1())
        with pytest.raises(ValueError):
            mcfs.run_dfs(max_depth=1)

    def test_duplicate_labels_rejected(self):
        mcfs, clock = make_mcfs()
        mcfs.add_verifs("same", VeriFS1())
        with pytest.raises(ValueError):
            mcfs.add_verifs("same", VeriFS2())

    def test_ops_per_second_computed(self):
        mcfs, clock = make_mcfs()
        mcfs.add_verifs("verifs1", VeriFS1())
        mcfs.add_verifs("verifs2", VeriFS2())
        result = mcfs.run_dfs(max_depth=2, max_operations=200)
        assert result.ops_per_second > 0
        assert result.sim_time > 0
