"""Unit and property tests for the allocation bitmap."""

import pytest
from hypothesis import given, strategies as st

from repro.util.bitmap import Bitmap


class TestBasicOperations:
    def test_new_bitmap_is_empty(self):
        bitmap = Bitmap(100)
        assert bitmap.set_count == 0
        assert bitmap.free_count == 100
        assert not any(bitmap.get(i) for i in range(100))

    def test_set_and_get(self):
        bitmap = Bitmap(16)
        bitmap.set(3)
        assert bitmap.get(3)
        assert not bitmap.get(2)
        assert bitmap.set_count == 1

    def test_set_is_idempotent(self):
        bitmap = Bitmap(8)
        bitmap.set(5)
        bitmap.set(5)
        assert bitmap.set_count == 1

    def test_clear(self):
        bitmap = Bitmap(8)
        bitmap.set(5)
        bitmap.clear(5)
        assert not bitmap.get(5)
        assert bitmap.set_count == 0

    def test_clear_is_idempotent(self):
        bitmap = Bitmap(8)
        bitmap.clear(5)
        bitmap.clear(5)
        assert bitmap.set_count == 0

    def test_out_of_range_raises(self):
        bitmap = Bitmap(8)
        with pytest.raises(IndexError):
            bitmap.get(8)
        with pytest.raises(IndexError):
            bitmap.set(-1)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Bitmap(0)


class TestAllocation:
    def test_allocate_returns_first_free(self):
        bitmap = Bitmap(8)
        assert bitmap.allocate() == 0
        assert bitmap.allocate() == 1

    def test_allocate_with_goal_wraps(self):
        bitmap = Bitmap(4)
        bitmap.set(2)
        bitmap.set(3)
        assert bitmap.allocate(start=2) == 0  # wraps past the set tail

    def test_allocate_full_returns_none(self):
        bitmap = Bitmap(3)
        for _ in range(3):
            assert bitmap.allocate() is not None
        assert bitmap.allocate() is None

    def test_find_free_does_not_mutate(self):
        bitmap = Bitmap(4)
        assert bitmap.find_free() == 0
        assert bitmap.set_count == 0

    def test_allocate_run_contiguous(self):
        bitmap = Bitmap(10)
        bitmap.set(1)
        start = bitmap.allocate_run(3)
        assert start == 2
        assert all(bitmap.get(i) for i in range(2, 5))

    def test_allocate_run_no_space(self):
        bitmap = Bitmap(4)
        bitmap.set(1)
        bitmap.set(3)
        assert bitmap.allocate_run(2) is None

    def test_allocate_run_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Bitmap(4).allocate_run(0)


class TestSerialization:
    def test_roundtrip(self):
        bitmap = Bitmap(20)
        for index in (0, 7, 8, 19):
            bitmap.set(index)
        restored = Bitmap.from_bytes(bitmap.to_bytes(), 20)
        assert restored == bitmap
        assert restored.set_count == 4

    def test_from_bytes_masks_tail(self):
        # trailing garbage bits past nbits must not leak into the count
        restored = Bitmap.from_bytes(b"\xff", 3)
        assert restored.set_count == 3
        assert restored.free_count == 0

    def test_from_bytes_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            Bitmap.from_bytes(b"", 8)

    def test_byte_length(self):
        assert len(Bitmap(1).to_bytes()) == 1
        assert len(Bitmap(8).to_bytes()) == 1
        assert len(Bitmap(9).to_bytes()) == 2

    def test_copy_is_independent(self):
        bitmap = Bitmap(8)
        bitmap.set(1)
        clone = bitmap.copy()
        clone.set(2)
        assert not bitmap.get(2)
        assert clone.get(1)


@given(st.sets(st.integers(min_value=0, max_value=199), max_size=60))
def test_property_roundtrip_preserves_bits(indices):
    bitmap = Bitmap(200)
    for index in indices:
        bitmap.set(index)
    restored = Bitmap.from_bytes(bitmap.to_bytes(), 200)
    assert set(restored.iter_set()) == indices
    assert restored.set_count == len(indices)


@given(st.lists(st.tuples(st.booleans(),
                          st.integers(min_value=0, max_value=63)), max_size=80))
def test_property_count_matches_state(operations):
    bitmap = Bitmap(64)
    shadow = set()
    for is_set, index in operations:
        if is_set:
            bitmap.set(index)
            shadow.add(index)
        else:
            bitmap.clear(index)
            shadow.discard(index)
    assert bitmap.set_count == len(shadow)
    assert set(bitmap.iter_set()) == shadow


@given(st.integers(min_value=1, max_value=100))
def test_property_allocate_exhausts_exactly(nbits):
    bitmap = Bitmap(nbits)
    allocated = set()
    while True:
        index = bitmap.allocate()
        if index is None:
            break
        assert index not in allocated
        allocated.add(index)
    assert len(allocated) == nbits
