"""Tests for the checkpoint/restore strategies against real FUTs."""

import pytest

from repro.clock import Cost, SimClock
from repro.core.abstraction import AbstractionOptions
from repro.core.futs import make_block_fut, make_verifs_fut
from repro.errors import CheckpointUnsupported, FsError
from repro.fs import Ext2FileSystemType
from repro.kernel.fdtable import O_CREAT, O_WRONLY
from repro.mc.strategies import (
    IoctlStrategy,
    NaiveDiskStrategy,
    NoRemountStrategy,
    ProcessSnapshotStrategy,
    RemountStrategy,
    VMSnapshotStrategy,
)
from repro.storage import RAMBlockDevice
from repro.verifs import VeriFS1, VeriFS2

OPTIONS = AbstractionOptions()


@pytest.fixture
def ext2_fut(clock):
    return make_block_fut("ext2", Ext2FileSystemType(),
                          RAMBlockDevice(256 * 1024, clock=clock), clock)


@pytest.fixture
def verifs_fut(clock):
    return make_verifs_fut("verifs2", VeriFS2(), clock)


def mutate(fut, name="mutation"):
    fd = fut.kernel.open(fut.mountpoint + "/" + name, O_CREAT | O_WRONLY)
    fut.kernel.write(fd, b"data")
    fut.kernel.close(fd)


def roundtrip(strategy, fut):
    """checkpoint -> mutate -> restore; return (before, after) hashes."""
    before = fut.abstract_state(OPTIONS)
    token = strategy.checkpoint(fut)
    mutate(fut)
    assert fut.abstract_state(OPTIONS) != before
    strategy.restore(fut, token)
    return before, fut.abstract_state(OPTIONS)


class TestRemountStrategy:
    def test_restore_is_exact(self, ext2_fut):
        before, after = roundtrip(RemountStrategy(), ext2_fut)
        assert before == after

    def test_after_operation_remounts(self, ext2_fut):
        strategy = RemountStrategy()
        count = ext2_fut.remount_count
        strategy.after_operation(ext2_fut)
        assert ext2_fut.remount_count == count + 1

    def test_remount_flag(self):
        assert RemountStrategy().remounts_between_operations
        assert not NoRemountStrategy().remounts_between_operations

    def test_no_remount_variant_skips_per_op_remount(self, ext2_fut):
        strategy = NoRemountStrategy()
        count = ext2_fut.remount_count
        strategy.after_operation(ext2_fut)
        assert ext2_fut.remount_count == count

    def test_no_remount_restore_still_exact(self, ext2_fut):
        before, after = roundtrip(NoRemountStrategy(), ext2_fut)
        assert before == after

    def test_restore_charges_mount_time(self, ext2_fut, clock):
        strategy = RemountStrategy()
        token = strategy.checkpoint(ext2_fut)
        mount_time_before = clock.by_category.get("mount", 0)
        strategy.restore(ext2_fut, token)
        assert clock.by_category.get("mount", 0) > mount_time_before


class TestNaiveDiskStrategy:
    def test_restore_leaves_stale_caches(self, ext2_fut):
        """The broken §3.2 mode: the mutation survives the 'restore'."""
        strategy = NaiveDiskStrategy()
        token = strategy.checkpoint(ext2_fut)
        mutate(ext2_fut, "ghost")
        strategy.restore(ext2_fut, token)
        # the stale caches keep the file visible although the disk was rolled back
        assert ext2_fut.kernel.stat(ext2_fut.mountpoint + "/ghost").is_file

    def test_remount_after_naive_restore_diverges_from_cache(self, ext2_fut):
        strategy = NaiveDiskStrategy()
        token = strategy.checkpoint(ext2_fut)
        mutate(ext2_fut, "ghost")
        strategy.restore(ext2_fut, token)
        seen_through_cache = ext2_fut.abstract_state(OPTIONS)
        # force coherency (and discard the pollution flushed meanwhile):
        # restore the image *with* a remount
        ext2_fut.restore_disk(token, remount=True)
        assert ext2_fut.abstract_state(OPTIONS) != seen_through_cache


class TestIoctlStrategy:
    def test_restore_is_exact(self, verifs_fut):
        before, after = roundtrip(IoctlStrategy(), verifs_fut)
        assert before == after

    def test_keys_are_single_use(self, verifs_fut):
        strategy = IoctlStrategy()
        token = strategy.checkpoint(verifs_fut)
        strategy.restore(verifs_fut, token)
        with pytest.raises(FsError):
            strategy.restore(verifs_fut, token)

    def test_cheaper_than_remount(self, clock):
        """The paper's headline: self-checkpointing beats remounting."""
        verifs = make_verifs_fut("v", VeriFS2(), clock)
        ioctl = IoctlStrategy()
        start = clock.now
        for _ in range(20):
            token = ioctl.checkpoint(verifs)
            ioctl.restore(verifs, token)
        ioctl_time = clock.now - start
        ext2 = make_block_fut("e", Ext2FileSystemType(),
                              RAMBlockDevice(256 * 1024, clock=clock), clock)
        remount = RemountStrategy()
        start = clock.now
        for _ in range(20):
            token = remount.checkpoint(ext2)
            remount.restore(ext2, token)
        remount_time = clock.now - start
        assert ioctl_time < remount_time

    def test_nested_checkpoints_restore_in_any_order(self, verifs_fut):
        strategy = IoctlStrategy()
        t0 = strategy.checkpoint(verifs_fut)
        mutate(verifs_fut, "a")
        t1 = strategy.checkpoint(verifs_fut)
        mutate(verifs_fut, "b")
        strategy.restore(verifs_fut, t0)
        names = [e.name for e in verifs_fut.kernel.getdents(verifs_fut.mountpoint)]
        assert names == []
        # t1 was captured independently and is still usable
        strategy.restore(verifs_fut, t1)
        names = [e.name for e in verifs_fut.kernel.getdents(verifs_fut.mountpoint)]
        assert names == ["a"]


class TestVMSnapshotStrategy:
    def test_restore_is_exact(self, ext2_fut):
        before, after = roundtrip(VMSnapshotStrategy(), ext2_fut)
        assert before == after

    def test_works_for_verifs_too(self, verifs_fut):
        before, after = roundtrip(VMSnapshotStrategy(), verifs_fut)
        assert before == after

    def test_charges_lightvm_latencies(self, ext2_fut, clock):
        strategy = VMSnapshotStrategy()
        start = clock.now
        token = strategy.checkpoint(ext2_fut)
        strategy.restore(ext2_fut, token)
        elapsed = clock.now - start
        assert elapsed == pytest.approx(Cost.VM_CHECKPOINT + Cost.VM_RESTORE, rel=0.05)

    def test_snapshot_isolated_from_future_mutations(self, ext2_fut):
        strategy = VMSnapshotStrategy()
        token = strategy.checkpoint(ext2_fut)
        mutate(ext2_fut, "x")
        mutate(ext2_fut, "y")
        strategy.restore(ext2_fut, token)
        assert ext2_fut.kernel.getdents(ext2_fut.mountpoint) != []


class TestProcessSnapshotStrategy:
    def test_refuses_fuse_server(self, verifs_fut):
        with pytest.raises(CheckpointUnsupported) as excinfo:
            ProcessSnapshotStrategy().checkpoint(verifs_fut)
        assert "/dev/fuse" in str(excinfo.value)

    def test_refuses_kernel_fs_without_server(self, ext2_fut):
        with pytest.raises(CheckpointUnsupported):
            ProcessSnapshotStrategy().checkpoint(ext2_fut)

    def test_accepts_ganesha(self, clock):
        from repro.core.futs import FilesystemUnderTest
        from repro.kernel import Kernel
        from repro.nfs import mount_nfs

        kernel = Kernel(clock)
        server, connection, mount = mount_nfs(kernel, VeriFS2(clock=clock), "/mnt/nfs")

        class NfsFut(FilesystemUnderTest):
            def userspace_server(self):
                return server

        fut = NfsFut("ganesha", kernel, "/mnt/nfs")
        strategy = ProcessSnapshotStrategy()
        kernel.mkdir("/mnt/nfs/d")
        token = strategy.checkpoint(fut)
        kernel.rmdir("/mnt/nfs/d")
        strategy.restore(fut, token)
        assert kernel.stat("/mnt/nfs/d").is_dir
