"""The no-false-positive matrix: every pair of shipped file systems.

MCFS's usefulness hinges on a quiet baseline: any two *healthy*
implementations, however different their on-disk formats and quirks,
must check clean. This suite runs a bounded exhaustive search over all
15 pairings of the six shipped file systems (extended operations
included whenever both sides support them).
"""

import itertools

import pytest

from repro import (
    Ext2FileSystemType,
    Ext4FileSystemType,
    Jffs2FileSystemType,
    MCFS,
    MCFSOptions,
    MTDDevice,
    RAMBlockDevice,
    SimClock,
    VeriFS1,
    VeriFS2,
    XfsFileSystemType,
)

ALL_FS = ("ext2", "ext4", "xfs", "jffs2", "verifs1", "verifs2")
PAIRS = list(itertools.combinations(ALL_FS, 2))


def add(mcfs, clock, name):
    if name == "ext2":
        mcfs.add_block_filesystem(name, Ext2FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock, name=name))
    elif name == "ext4":
        mcfs.add_block_filesystem(name, Ext4FileSystemType(),
                                  RAMBlockDevice(256 * 1024, clock=clock, name=name))
    elif name == "xfs":
        mcfs.add_block_filesystem(name, XfsFileSystemType(),
                                  RAMBlockDevice(16 * 1024 * 1024, clock=clock, name=name))
    elif name == "jffs2":
        mcfs.add_block_filesystem(name, Jffs2FileSystemType(),
                                  MTDDevice(256 * 1024, clock=clock, name=name))
    elif name == "verifs1":
        mcfs.add_verifs(name, VeriFS1())
    else:
        mcfs.add_verifs(name, VeriFS2())


@pytest.mark.parametrize("first,second", PAIRS,
                         ids=[f"{a}-vs-{b}" for a, b in PAIRS])
def test_healthy_pair_checks_clean(first, second):
    clock = SimClock()
    extended = "verifs1" not in (first, second)
    mcfs = MCFS(clock, MCFSOptions(include_extended_operations=extended))
    add(mcfs, clock, first)
    add(mcfs, clock, second)
    result = mcfs.run_dfs(max_depth=2, max_operations=2_500, por=True)
    assert not result.found_discrepancy, (
        f"{first} vs {second} false positive:\n{result.report}")
    assert result.unique_states > 1


def test_all_six_at_once():
    """The paper's future-work N-way mode, at full width."""
    clock = SimClock()
    mcfs = MCFS(clock, MCFSOptions(include_extended_operations=False,
                                   majority_voting=True))
    for name in ALL_FS:
        add(mcfs, clock, name)
    result = mcfs.run_dfs(max_depth=2, max_operations=1_200, por=True)
    assert not result.found_discrepancy, str(result.report)
