"""Tests for the kernel: mounts, path walking, fd table, dentry cache."""

import pytest

from repro.clock import SimClock
from repro.errors import (
    EACCES,
    EBADF,
    EBUSY,
    EEXIST,
    EINVAL,
    EISDIR,
    ELOOP,
    ENOENT,
    ENOTDIR,
    EXDEV,
    FsError,
)
from repro.fs import Ext2FileSystemType
from repro.kernel import Kernel
from repro.kernel.fdtable import (
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
)
from repro.kernel.kernel import R_OK, W_OK, X_OK
from repro.storage import RAMBlockDevice


@pytest.fixture
def kernel_with_fs(clock):
    kernel = Kernel(clock)
    fstype = Ext2FileSystemType()
    device = RAMBlockDevice(256 * 1024, clock=clock, name="ram0")
    fstype.mkfs(device)
    kernel.mount(fstype, device, "/mnt/fs")
    return kernel


def err(excinfo):
    return excinfo.value.code


class TestMounting:
    def test_mount_and_stat_root(self, kernel_with_fs):
        assert kernel_with_fs.stat("/mnt/fs").is_dir

    def test_double_mount_rejected(self, kernel_with_fs, clock):
        fstype = Ext2FileSystemType()
        device = RAMBlockDevice(256 * 1024, clock=clock)
        fstype.mkfs(device)
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.mount(fstype, device, "/mnt/fs")
        assert err(excinfo) == EBUSY

    def test_nested_mount_rejected(self, kernel_with_fs, clock):
        fstype = Ext2FileSystemType()
        device = RAMBlockDevice(256 * 1024, clock=clock)
        fstype.mkfs(device)
        with pytest.raises(FsError):
            kernel_with_fs.mount(fstype, device, "/mnt/fs/inner")

    def test_umount_with_open_fd_is_busy(self, kernel_with_fs):
        fd = kernel_with_fs.open("/mnt/fs/f", O_CREAT | O_WRONLY)
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.umount("/mnt/fs")
        assert err(excinfo) == EBUSY
        kernel_with_fs.close(fd)
        kernel_with_fs.umount("/mnt/fs")

    def test_umount_unknown_mountpoint(self, kernel_with_fs):
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.umount("/mnt/nope")
        assert err(excinfo) == EINVAL

    def test_path_outside_any_mount(self, kernel_with_fs):
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.stat("/elsewhere/f")
        assert err(excinfo) == ENOENT

    def test_remount_bumps_generation(self, kernel_with_fs):
        mount = kernel_with_fs.remount("/mnt/fs")
        assert mount.generation == 1
        mount = kernel_with_fs.remount("/mnt/fs")
        assert mount.generation == 2

    def test_remount_purges_dcache(self, kernel_with_fs):
        kernel_with_fs.mkdir("/mnt/fs/d")
        old_id = kernel_with_fs.mount_at("/mnt/fs").mount_id
        kernel_with_fs.remount("/mnt/fs")
        assert kernel_with_fs.dcache.entry_count(old_id) == 0


class TestOpenFlags:
    def test_open_missing_enoent(self, kernel_with_fs):
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.open("/mnt/fs/nope")
        assert err(excinfo) == ENOENT

    def test_creat_then_open(self, kernel_with_fs):
        fd = kernel_with_fs.open("/mnt/fs/f", O_CREAT | O_WRONLY)
        kernel_with_fs.close(fd)
        fd = kernel_with_fs.open("/mnt/fs/f")
        kernel_with_fs.close(fd)

    def test_creat_excl_on_existing_eexist(self, kernel_with_fs):
        kernel_with_fs.close(kernel_with_fs.open("/mnt/fs/f", O_CREAT))
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.open("/mnt/fs/f", O_CREAT | O_EXCL)
        assert err(excinfo) == EEXIST

    def test_trunc_clears_content(self, kernel_with_fs):
        fd = kernel_with_fs.open("/mnt/fs/f", O_CREAT | O_WRONLY)
        kernel_with_fs.write(fd, b"payload")
        kernel_with_fs.close(fd)
        fd = kernel_with_fs.open("/mnt/fs/f", O_WRONLY | O_TRUNC)
        kernel_with_fs.close(fd)
        assert kernel_with_fs.stat("/mnt/fs/f").st_size == 0

    def test_open_dir_for_write_eisdir(self, kernel_with_fs):
        kernel_with_fs.mkdir("/mnt/fs/d")
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.open("/mnt/fs/d", O_WRONLY)
        assert err(excinfo) == EISDIR

    def test_append_positions_at_eof(self, kernel_with_fs):
        fd = kernel_with_fs.open("/mnt/fs/f", O_CREAT | O_WRONLY)
        kernel_with_fs.write(fd, b"abc")
        kernel_with_fs.close(fd)
        fd = kernel_with_fs.open("/mnt/fs/f", O_WRONLY | O_APPEND)
        kernel_with_fs.write(fd, b"def")
        kernel_with_fs.close(fd)
        fd = kernel_with_fs.open("/mnt/fs/f")
        assert kernel_with_fs.read(fd, 10) == b"abcdef"
        kernel_with_fs.close(fd)


class TestFileDescriptors:
    def test_read_on_writeonly_fd(self, kernel_with_fs):
        fd = kernel_with_fs.open("/mnt/fs/f", O_CREAT | O_WRONLY)
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.read(fd, 4)
        assert err(excinfo) == EACCES

    def test_write_on_readonly_fd(self, kernel_with_fs):
        kernel_with_fs.close(kernel_with_fs.open("/mnt/fs/f", O_CREAT))
        fd = kernel_with_fs.open("/mnt/fs/f", O_RDONLY)
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.write(fd, b"x")
        assert err(excinfo) == EACCES

    def test_bad_fd(self, kernel_with_fs):
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.read(999, 4)
        assert err(excinfo) == EBADF

    def test_double_close(self, kernel_with_fs):
        fd = kernel_with_fs.open("/mnt/fs/f", O_CREAT)
        kernel_with_fs.close(fd)
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.close(fd)
        assert err(excinfo) == EBADF

    def test_fd_reuse_lowest_free(self, kernel_with_fs):
        fd1 = kernel_with_fs.open("/mnt/fs/a", O_CREAT)
        fd2 = kernel_with_fs.open("/mnt/fs/b", O_CREAT)
        kernel_with_fs.close(fd1)
        fd3 = kernel_with_fs.open("/mnt/fs/c", O_CREAT)
        assert fd3 == fd1
        kernel_with_fs.close(fd2)
        kernel_with_fs.close(fd3)

    def test_lseek_set_cur_end(self, kernel_with_fs):
        fd = kernel_with_fs.open("/mnt/fs/f", O_CREAT | O_RDWR)
        kernel_with_fs.write(fd, b"0123456789")
        assert kernel_with_fs.lseek(fd, 2, 0) == 2
        assert kernel_with_fs.lseek(fd, 3, 1) == 5
        assert kernel_with_fs.lseek(fd, -4, 2) == 6
        assert kernel_with_fs.read(fd, 10) == b"6789"
        kernel_with_fs.close(fd)

    def test_lseek_negative_rejected(self, kernel_with_fs):
        fd = kernel_with_fs.open("/mnt/fs/f", O_CREAT | O_RDWR)
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.lseek(fd, -1, 0)
        assert err(excinfo) == EINVAL
        kernel_with_fs.close(fd)


class TestPathWalking:
    def test_component_through_file_enotdir(self, kernel_with_fs):
        kernel_with_fs.close(kernel_with_fs.open("/mnt/fs/f", O_CREAT))
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.stat("/mnt/fs/f/child")
        assert err(excinfo) == ENOTDIR

    def test_symlink_followed(self, kernel_with_fs):
        kernel_with_fs.mkdir("/mnt/fs/d")
        kernel_with_fs.close(kernel_with_fs.open("/mnt/fs/d/target", O_CREAT))
        kernel_with_fs.symlink("d/target", "/mnt/fs/lnk")
        assert kernel_with_fs.stat("/mnt/fs/lnk").is_file

    def test_lstat_does_not_follow(self, kernel_with_fs):
        kernel_with_fs.close(kernel_with_fs.open("/mnt/fs/t", O_CREAT))
        kernel_with_fs.symlink("t", "/mnt/fs/lnk")
        assert kernel_with_fs.lstat("/mnt/fs/lnk").is_symlink

    def test_absolute_symlink_target(self, kernel_with_fs):
        kernel_with_fs.close(kernel_with_fs.open("/mnt/fs/t", O_CREAT))
        kernel_with_fs.symlink("/mnt/fs/t", "/mnt/fs/lnk")
        assert kernel_with_fs.stat("/mnt/fs/lnk").is_file

    def test_symlink_loop_eloop(self, kernel_with_fs):
        kernel_with_fs.symlink("b", "/mnt/fs/a")
        kernel_with_fs.symlink("a", "/mnt/fs/b")
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.stat("/mnt/fs/a")
        assert err(excinfo) == ELOOP

    def test_symlink_mid_path(self, kernel_with_fs):
        kernel_with_fs.mkdir("/mnt/fs/real")
        kernel_with_fs.close(kernel_with_fs.open("/mnt/fs/real/f", O_CREAT))
        kernel_with_fs.symlink("real", "/mnt/fs/alias")
        assert kernel_with_fs.stat("/mnt/fs/alias/f").is_file


class TestDentryCache:
    def test_positive_entry_hit(self, kernel_with_fs):
        kernel_with_fs.mkdir("/mnt/fs/d")
        kernel_with_fs.stat("/mnt/fs/d")
        hits_before = kernel_with_fs.dcache.stats.hits
        kernel_with_fs.stat("/mnt/fs/d")
        assert kernel_with_fs.dcache.stats.hits > hits_before

    def test_negative_entry_hit(self, kernel_with_fs):
        for _ in range(2):
            with pytest.raises(FsError):
                kernel_with_fs.stat("/mnt/fs/missing")
        assert kernel_with_fs.dcache.stats.negative_hits >= 1

    def test_create_clears_negative_entry(self, kernel_with_fs):
        with pytest.raises(FsError):
            kernel_with_fs.stat("/mnt/fs/f")
        kernel_with_fs.close(kernel_with_fs.open("/mnt/fs/f", O_CREAT))
        assert kernel_with_fs.stat("/mnt/fs/f").is_file

    def test_unlink_inserts_negative_entry(self, kernel_with_fs):
        kernel_with_fs.close(kernel_with_fs.open("/mnt/fs/f", O_CREAT))
        kernel_with_fs.unlink("/mnt/fs/f")
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.stat("/mnt/fs/f")
        assert err(excinfo) == ENOENT

    def test_invalidate_inode_drops_entries(self, kernel_with_fs):
        kernel_with_fs.mkdir("/mnt/fs/d")
        kernel_with_fs.stat("/mnt/fs/d")
        mount = kernel_with_fs.mount_at("/mnt/fs")
        ino = kernel_with_fs.stat("/mnt/fs/d").st_ino
        count_before = kernel_with_fs.dcache.entry_count(mount.mount_id)
        kernel_with_fs.invalidate_inode(mount.mount_id, ino)
        assert kernel_with_fs.dcache.entry_count(mount.mount_id) < count_before


class TestRenameAndLinks:
    def test_rename_across_mounts_exdev(self, kernel_with_fs, clock):
        fstype = Ext2FileSystemType()
        device = RAMBlockDevice(256 * 1024, clock=clock)
        fstype.mkfs(device)
        kernel_with_fs.mount(fstype, device, "/mnt/other")
        kernel_with_fs.close(kernel_with_fs.open("/mnt/fs/f", O_CREAT))
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.rename("/mnt/fs/f", "/mnt/other/f")
        assert err(excinfo) == EXDEV

    def test_link_across_mounts_exdev(self, kernel_with_fs, clock):
        fstype = Ext2FileSystemType()
        device = RAMBlockDevice(256 * 1024, clock=clock)
        fstype.mkfs(device)
        kernel_with_fs.mount(fstype, device, "/mnt/other")
        kernel_with_fs.close(kernel_with_fs.open("/mnt/fs/f", O_CREAT))
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.link("/mnt/fs/f", "/mnt/other/f")
        assert err(excinfo) == EXDEV


class TestAccessAndAttrs:
    def test_access_missing_file(self, kernel_with_fs):
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.access("/mnt/fs/missing")
        assert err(excinfo) == ENOENT

    def test_root_x_on_nonexec_file(self, kernel_with_fs):
        kernel_with_fs.close(kernel_with_fs.open("/mnt/fs/f", O_CREAT, 0o644))
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.access("/mnt/fs/f", X_OK)
        assert err(excinfo) == EACCES

    def test_nonroot_mode_checks(self, clock):
        kernel = Kernel(clock, uid=1000, gid=1000)
        fstype = Ext2FileSystemType()
        device = RAMBlockDevice(256 * 1024, clock=clock)
        fstype.mkfs(device)
        kernel.mount(fstype, device, "/mnt/fs")
        kernel.close(kernel.open("/mnt/fs/f", O_CREAT, 0o600))
        kernel.access("/mnt/fs/f", R_OK | W_OK)  # owner bits
        kernel.chown("/mnt/fs/f", 0, 0)
        with pytest.raises(FsError):
            kernel.access("/mnt/fs/f", R_OK)  # now other bits apply

    def test_chmod_changes_permission_bits_only(self, kernel_with_fs):
        kernel_with_fs.mkdir("/mnt/fs/d")
        kernel_with_fs.chmod("/mnt/fs/d", 0o700)
        attrs = kernel_with_fs.stat("/mnt/fs/d")
        assert attrs.st_mode & 0o7777 == 0o700
        assert attrs.is_dir

    def test_utimens(self, kernel_with_fs):
        kernel_with_fs.close(kernel_with_fs.open("/mnt/fs/f", O_CREAT))
        kernel_with_fs.utimens("/mnt/fs/f", 123.0, 456.0)
        attrs = kernel_with_fs.stat("/mnt/fs/f")
        assert attrs.st_atime == 123.0
        assert attrs.st_mtime == 456.0

    def test_truncate_negative_einval(self, kernel_with_fs):
        kernel_with_fs.close(kernel_with_fs.open("/mnt/fs/f", O_CREAT))
        with pytest.raises(FsError) as excinfo:
            kernel_with_fs.truncate("/mnt/fs/f", -1)
        assert err(excinfo) == EINVAL

    def test_syscall_count_and_time_advance(self, kernel_with_fs, clock):
        before_count = kernel_with_fs.syscall_count
        before_time = clock.now
        kernel_with_fs.stat("/mnt/fs")
        assert kernel_with_fs.syscall_count == before_count + 1
        assert clock.now > before_time
